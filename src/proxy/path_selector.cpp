#include "proxy/path_selector.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pan::proxy {

namespace {
// Instrument names. Per-path counters are labeled with the fingerprint (and
// the identity, for identity-scoped accounting) so the /skip/metrics dump
// carries the per-path breakdown.
std::string path_counter_name(std::string_view fingerprint, std::string_view what,
                              std::string_view identity) {
  std::string name = "selector.path." + std::string(what) + "{";
  if (!identity.empty()) name += "identity=" + std::string(identity) + ",";
  name += "path=" + std::string(fingerprint) + "}";
  return name;
}
}  // namespace

PathSelector::PathSelector(scion::Daemon& daemon, obs::MetricsRegistry* metrics)
    : daemon_(daemon), metrics_(metrics) {
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
}

void PathSelector::set_geofence(std::optional<ppl::Geofence> geofence) {
  geofence_ = std::move(geofence);
}

bool PathSelector::permits(const scion::Path& path) const {
  if (geofence_.has_value() && !geofence_->permits(path)) return false;
  return policies_.permits(path);
}

void PathSelector::prune_expired_revocations(TimePoint now) {
  std::erase_if(revocations_, [now](const Revocation& rev) { return rev.expires <= now; });
  metrics_->gauge("selector.revocations_active")
      .set(static_cast<double>(revocations_.size()));
}

void PathSelector::revoke(scion::IsdAsn ia, scion::IfaceId iface, Duration ttl) {
  const TimePoint now = daemon_.simulator().now();
  prune_expired_revocations(now);
  metrics_->counter("selector.revocations").inc();
  const TimePoint expires = now + ttl;
  // Refresh an existing revocation of the same interface if present.
  for (Revocation& rev : revocations_) {
    if (rev.ia == ia && rev.iface == iface) {
      if (expires > rev.expires) rev.expires = expires;
      return;
    }
  }
  revocations_.push_back(Revocation{ia, iface, expires});
  metrics_->gauge("selector.revocations_active")
      .set(static_cast<double>(revocations_.size()));
}

bool PathSelector::is_revoked(const scion::Path& path) {
  const TimePoint now = daemon_.simulator().now();
  prune_expired_revocations(now);
  for (const Revocation& rev : revocations_) {
    if (path.uses_interface(rev.ia, rev.iface)) return true;
  }
  return false;
}

void PathSelector::prune_expired_quarantines(TimePoint now) {
  std::erase_if(quarantined_,
                [now](const auto& entry) { return entry.second <= now; });
  metrics_->gauge("selector.quarantines_active")
      .set(static_cast<double>(quarantined_.size()));
}

void PathSelector::quarantine(const scion::Path& path, Duration ttl) {
  if (ttl <= Duration::zero()) return;
  const TimePoint now = daemon_.simulator().now();
  prune_expired_quarantines(now);
  metrics_->counter("selector.quarantines").inc();
  metrics_->events().record(now, "selector", "quarantine",
                            strings::format("%s ttl=%.0fms", path.fingerprint().c_str(),
                                            ttl.millis()));
  TimePoint& expires = quarantined_[path.fingerprint()];
  expires = std::max(expires, now + ttl);
  metrics_->gauge("selector.quarantines_active")
      .set(static_cast<double>(quarantined_.size()));
}

bool PathSelector::is_quarantined(const std::string& fingerprint) {
  prune_expired_quarantines(daemon_.simulator().now());
  return quarantined_.contains(fingerprint);
}

std::size_t PathSelector::active_quarantines() const {
  const TimePoint now = daemon_.simulator().now();
  std::size_t count = 0;
  for (const auto& [fingerprint, expires] : quarantined_) {
    if (expires > now) ++count;
  }
  return count;
}

std::vector<std::pair<std::string, TimePoint>> PathSelector::quarantine_snapshot() const {
  const TimePoint now = daemon_.simulator().now();
  std::vector<std::pair<std::string, TimePoint>> out;
  for (const auto& [fingerprint, expires] : quarantined_) {
    if (expires > now) out.emplace_back(fingerprint, expires);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PathSelector::restore_quarantine(const std::string& fingerprint, TimePoint expires) {
  const TimePoint now = daemon_.simulator().now();
  if (expires <= now) return;
  TimePoint& slot = quarantined_[fingerprint];
  if (slot < expires) slot = expires;
  metrics_->gauge("selector.quarantines_active")
      .set(static_cast<double>(quarantined_.size()));
}

std::size_t PathSelector::active_revocations() const {
  const TimePoint now = daemon_.simulator().now();
  std::size_t count = 0;
  for (const Revocation& rev : revocations_) {
    if (rev.expires > now) ++count;
  }
  return count;
}

void PathSelector::add_access_daemon(const std::string& access, scion::Daemon& daemon) {
  access_daemons_[access] = &daemon;
}

void PathSelector::choose(scion::IsdAsn dst, std::function<void(PathChoice)> callback) {
  choose(dst, {}, std::move(callback), std::nullopt, nullptr, {});
}

void PathSelector::choose(scion::IsdAsn dst, std::vector<ppl::OrderKey> server_preference,
                          std::function<void(PathChoice)> callback,
                          std::optional<ppl::PolicySet> override_policies,
                          ExcludeFn exclude, const std::string& access) {
  metrics_->counter("selector.choices").inc();
  scion::Daemon* daemon = &daemon_;
  if (!access.empty()) {
    if (const auto it = access_daemons_.find(access); it != access_daemons_.end()) {
      daemon = it->second;
      metrics_->counter("selector.access_choices").inc();
    }
  }
  daemon->query(dst, [this, pref = std::move(server_preference),
                      override = std::move(override_policies),
                      exclude = std::move(exclude),
                      cb = std::move(callback)](std::vector<scion::Path> paths) {
    const ppl::PolicySet& policies = override.has_value() ? *override : policies_;
    PathChoice choice;
    choice.candidates = paths.size();
    // Known-broken paths (SCMP revocations) are unusable at any compliance
    // level.
    std::erase_if(paths, [&](const scion::Path& p) { return is_revoked(p); });
    // Quarantined paths (recent fetch failures reported by the resilience
    // layer) are demoted to last resort: selection runs over the fresh set
    // and only falls back to quarantined candidates when it comes up empty.
    // The caller's exclusion set (identity disjointness) demotes further
    // still: an excluded path is used only when every admissible candidate —
    // fresh or quarantined — is gone, and the choice flags the fallback.
    std::vector<scion::Path> fresh;
    std::vector<scion::Path> suspect;
    std::vector<scion::Path> excluded_fresh;
    std::vector<scion::Path> excluded_suspect;
    fresh.reserve(paths.size());
    for (scion::Path& p : paths) {
      const bool is_excluded = exclude != nullptr && exclude(p);
      const bool is_suspect = is_quarantined(p.fingerprint());
      auto& pool = is_excluded ? (is_suspect ? excluded_suspect : excluded_fresh)
                               : (is_suspect ? suspect : fresh);
      pool.push_back(std::move(p));
    }
    if (!suspect.empty() && !fresh.empty()) {
      metrics_->counter("selector.quarantine_avoided").inc();
    }
    const bool had_excluded = !excluded_fresh.empty() || !excluded_suspect.empty();
    const auto pick = [&](std::vector<scion::Path> pool, PathChoice& out,
                          bool from_excluded) {
      if (pool.empty()) return;
      // `any` falls back to the daemon's latency-first order.
      if (!out.any.has_value()) {
        out.any = pool.front();
        out.any_excluded = from_excluded;
      }
      std::vector<scion::Path> filtered;
      filtered.reserve(pool.size());
      for (scion::Path& p : pool) {
        if (geofence_.has_value() && !geofence_->permits(p)) continue;
        if (!policies.permits(p)) continue;
        filtered.push_back(std::move(p));
      }
      // Ordering precedence: user policies first, then the negotiated
      // server preference as a tie-breaker.
      std::vector<ppl::OrderKey> ordering = policies.combined_ordering();
      ordering.insert(ordering.end(), pref.begin(), pref.end());
      ppl::order_paths(filtered, ordering);
      if (!out.compliant.has_value() && !filtered.empty()) {
        out.compliant = filtered.front();
        out.compliant_excluded = from_excluded;
      }
    };
    pick(std::move(fresh), choice, false);
    if (!choice.any.has_value() || !choice.compliant.has_value()) {
      pick(std::move(suspect), choice, false);
    }
    if (!choice.any.has_value() || !choice.compliant.has_value()) {
      pick(std::move(excluded_fresh), choice, true);
    }
    if (!choice.any.has_value() || !choice.compliant.has_value()) {
      pick(std::move(excluded_suspect), choice, true);
    }
    if (had_excluded && !choice.any_excluded && !choice.compliant_excluded) {
      metrics_->counter("selector.exclusion_avoided").inc();
    }
    if (choice.any_excluded || choice.compliant_excluded) {
      metrics_->counter("selector.exclusion_fallbacks").inc();
    }
    if (!choice.reachable()) metrics_->counter("selector.no_path").inc();
    if (!choice.compliant.has_value()) metrics_->counter("selector.no_compliant_path").inc();
    cb(std::move(choice));
  });
}

PathSelector::PathInstruments& PathSelector::instruments_for(const scion::Path& path,
                                                             std::string_view identity) {
  const std::string fingerprint = path.fingerprint();
  const std::string key =
      identity.empty() ? fingerprint : std::string(identity) + "|" + fingerprint;
  PathInstruments& inst = paths_[key];
  if (inst.requests == nullptr) {
    inst.description = path.to_string();
    inst.requests = &metrics_->counter(path_counter_name(fingerprint, "requests", identity));
    inst.bytes = &metrics_->counter(path_counter_name(fingerprint, "bytes", identity));
  }
  return inst;
}

void PathSelector::record_rtt(const scion::Path& path, Duration rtt) {
  if (rtt <= Duration::zero()) return;
  PathInstruments& inst = instruments_for(path);
  if (inst.observed_rtt == Duration::zero()) {
    inst.observed_rtt = rtt;
  } else {
    inst.observed_rtt = Duration{(7 * inst.observed_rtt.nanos() + rtt.nanos()) / 8};
  }
  metrics_->histogram("selector.observed_rtt").record(rtt);
}

void PathSelector::record_use(const scion::Path& path, std::uint64_t bytes, TimePoint now,
                              std::string_view identity) {
  PathInstruments& inst = instruments_for(path, identity);
  inst.requests->inc();
  inst.bytes->inc(bytes);
  inst.total_latency_estimate += path.meta().latency;
  if (now > inst.last_used) inst.last_used = now;
  metrics_->counter("selector.requests").inc();
  metrics_->counter("selector.bytes").inc(bytes);
}

std::unordered_map<std::string, PathUsage> PathSelector::usage() const {
  std::unordered_map<std::string, PathUsage> out;
  out.reserve(paths_.size());
  for (const auto& [fingerprint, inst] : paths_) {
    PathUsage u;
    u.description = inst.description;
    u.requests = inst.requests->value();
    u.bytes = inst.bytes->value();
    u.total_latency_estimate = inst.total_latency_estimate;
    u.observed_rtt = inst.observed_rtt;
    u.last_used = inst.last_used;
    out.emplace(fingerprint, std::move(u));
  }
  return out;
}

}  // namespace pan::proxy
