#include "proxy/path_selector.hpp"

#include <algorithm>

namespace pan::proxy {

namespace {
// Instrument names. Per-path counters are labeled with the fingerprint so
// the /skip/metrics dump carries the per-path breakdown.
std::string path_counter_name(std::string_view fingerprint, std::string_view what) {
  return "selector.path." + std::string(what) + "{path=" + std::string(fingerprint) + "}";
}
}  // namespace

PathSelector::PathSelector(scion::Daemon& daemon, obs::MetricsRegistry* metrics)
    : daemon_(daemon), metrics_(metrics) {
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
}

void PathSelector::set_geofence(std::optional<ppl::Geofence> geofence) {
  geofence_ = std::move(geofence);
}

bool PathSelector::permits(const scion::Path& path) const {
  if (geofence_.has_value() && !geofence_->permits(path)) return false;
  return policies_.permits(path);
}

void PathSelector::prune_expired_revocations(TimePoint now) {
  std::erase_if(revocations_, [now](const Revocation& rev) { return rev.expires <= now; });
  metrics_->gauge("selector.revocations_active")
      .set(static_cast<double>(revocations_.size()));
}

void PathSelector::revoke(scion::IsdAsn ia, scion::IfaceId iface, Duration ttl) {
  const TimePoint now = daemon_.simulator().now();
  prune_expired_revocations(now);
  metrics_->counter("selector.revocations").inc();
  const TimePoint expires = now + ttl;
  // Refresh an existing revocation of the same interface if present.
  for (Revocation& rev : revocations_) {
    if (rev.ia == ia && rev.iface == iface) {
      if (expires > rev.expires) rev.expires = expires;
      return;
    }
  }
  revocations_.push_back(Revocation{ia, iface, expires});
  metrics_->gauge("selector.revocations_active")
      .set(static_cast<double>(revocations_.size()));
}

bool PathSelector::is_revoked(const scion::Path& path) {
  const TimePoint now = daemon_.simulator().now();
  prune_expired_revocations(now);
  for (const Revocation& rev : revocations_) {
    if (path.uses_interface(rev.ia, rev.iface)) return true;
  }
  return false;
}

std::size_t PathSelector::active_revocations() const {
  const TimePoint now = daemon_.simulator().now();
  std::size_t count = 0;
  for (const Revocation& rev : revocations_) {
    if (rev.expires > now) ++count;
  }
  return count;
}

void PathSelector::choose(scion::IsdAsn dst, std::function<void(PathChoice)> callback) {
  choose(dst, {}, std::move(callback), std::nullopt);
}

void PathSelector::choose(scion::IsdAsn dst, std::vector<ppl::OrderKey> server_preference,
                          std::function<void(PathChoice)> callback,
                          std::optional<ppl::PolicySet> override_policies) {
  metrics_->counter("selector.choices").inc();
  daemon_.query(dst, [this, pref = std::move(server_preference),
                      override = std::move(override_policies),
                      cb = std::move(callback)](std::vector<scion::Path> paths) {
    const ppl::PolicySet& policies = override.has_value() ? *override : policies_;
    PathChoice choice;
    choice.candidates = paths.size();
    // Known-broken paths (SCMP revocations) are unusable at any compliance
    // level.
    std::erase_if(paths, [&](const scion::Path& p) { return is_revoked(p); });
    if (!paths.empty()) {
      // `any` falls back to the daemon's latency-first order.
      choice.any = paths.front();
      std::vector<scion::Path> filtered;
      filtered.reserve(paths.size());
      for (const scion::Path& p : paths) {
        if (geofence_.has_value() && !geofence_->permits(p)) continue;
        if (!policies.permits(p)) continue;
        filtered.push_back(p);
      }
      // Ordering precedence: user policies first, then the negotiated
      // server preference as a tie-breaker.
      std::vector<ppl::OrderKey> ordering = policies.combined_ordering();
      ordering.insert(ordering.end(), pref.begin(), pref.end());
      ppl::order_paths(filtered, ordering);
      if (!filtered.empty()) choice.compliant = filtered.front();
    }
    if (!choice.reachable()) metrics_->counter("selector.no_path").inc();
    if (!choice.compliant.has_value()) metrics_->counter("selector.no_compliant_path").inc();
    cb(std::move(choice));
  });
}

PathSelector::PathInstruments& PathSelector::instruments_for(const scion::Path& path) {
  const std::string fingerprint = path.fingerprint();
  PathInstruments& inst = paths_[fingerprint];
  if (inst.requests == nullptr) {
    inst.description = path.to_string();
    inst.requests = &metrics_->counter(path_counter_name(fingerprint, "requests"));
    inst.bytes = &metrics_->counter(path_counter_name(fingerprint, "bytes"));
  }
  return inst;
}

void PathSelector::record_rtt(const scion::Path& path, Duration rtt) {
  if (rtt <= Duration::zero()) return;
  PathInstruments& inst = instruments_for(path);
  if (inst.observed_rtt == Duration::zero()) {
    inst.observed_rtt = rtt;
  } else {
    inst.observed_rtt = Duration{(7 * inst.observed_rtt.nanos() + rtt.nanos()) / 8};
  }
  metrics_->histogram("selector.observed_rtt").record(rtt);
}

void PathSelector::record_use(const scion::Path& path, std::uint64_t bytes, TimePoint now) {
  PathInstruments& inst = instruments_for(path);
  inst.requests->inc();
  inst.bytes->inc(bytes);
  inst.total_latency_estimate += path.meta().latency;
  if (now > inst.last_used) inst.last_used = now;
  metrics_->counter("selector.requests").inc();
  metrics_->counter("selector.bytes").inc(bytes);
}

std::unordered_map<std::string, PathUsage> PathSelector::usage() const {
  std::unordered_map<std::string, PathUsage> out;
  out.reserve(paths_.size());
  for (const auto& [fingerprint, inst] : paths_) {
    PathUsage u;
    u.description = inst.description;
    u.requests = inst.requests->value();
    u.bytes = inst.bytes->value();
    u.total_latency_estimate = inst.total_latency_estimate;
    u.observed_rtt = inst.observed_rtt;
    u.last_used = inst.last_used;
    out.emplace(fingerprint, std::move(u));
  }
  return out;
}

}  // namespace pan::proxy
