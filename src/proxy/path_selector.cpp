#include "proxy/path_selector.hpp"

namespace pan::proxy {

PathSelector::PathSelector(scion::Daemon& daemon) : daemon_(daemon) {}

void PathSelector::set_geofence(std::optional<ppl::Geofence> geofence) {
  geofence_ = std::move(geofence);
}

bool PathSelector::permits(const scion::Path& path) const {
  if (geofence_.has_value() && !geofence_->permits(path)) return false;
  return policies_.permits(path);
}

void PathSelector::revoke(scion::IsdAsn ia, scion::IfaceId iface, Duration ttl) {
  const TimePoint expires = daemon_.simulator().now() + ttl;
  // Refresh an existing revocation of the same interface if present.
  for (Revocation& rev : revocations_) {
    if (rev.ia == ia && rev.iface == iface) {
      if (expires > rev.expires) rev.expires = expires;
      return;
    }
  }
  revocations_.push_back(Revocation{ia, iface, expires});
}

bool PathSelector::is_revoked(const scion::Path& path) const {
  const TimePoint now = daemon_.simulator().now();
  for (const Revocation& rev : revocations_) {
    if (rev.expires <= now) continue;
    if (path.uses_interface(rev.ia, rev.iface)) return true;
  }
  return false;
}

std::size_t PathSelector::active_revocations() const {
  const TimePoint now = daemon_.simulator().now();
  std::size_t count = 0;
  for (const Revocation& rev : revocations_) {
    if (rev.expires > now) ++count;
  }
  return count;
}

void PathSelector::choose(scion::IsdAsn dst, std::function<void(PathChoice)> callback) {
  choose(dst, {}, std::move(callback), std::nullopt);
}

void PathSelector::choose(scion::IsdAsn dst, std::vector<ppl::OrderKey> server_preference,
                          std::function<void(PathChoice)> callback,
                          std::optional<ppl::PolicySet> override_policies) {
  daemon_.query(dst, [this, pref = std::move(server_preference),
                      override = std::move(override_policies),
                      cb = std::move(callback)](std::vector<scion::Path> paths) {
    const ppl::PolicySet& policies = override.has_value() ? *override : policies_;
    PathChoice choice;
    choice.candidates = paths.size();
    // Known-broken paths (SCMP revocations) are unusable at any compliance
    // level.
    std::erase_if(paths, [&](const scion::Path& p) { return is_revoked(p); });
    if (!paths.empty()) {
      // `any` falls back to the daemon's latency-first order.
      choice.any = paths.front();
      std::vector<scion::Path> filtered;
      filtered.reserve(paths.size());
      for (const scion::Path& p : paths) {
        if (geofence_.has_value() && !geofence_->permits(p)) continue;
        if (!policies.permits(p)) continue;
        filtered.push_back(p);
      }
      // Ordering precedence: user policies first, then the negotiated
      // server preference as a tie-breaker.
      std::vector<ppl::OrderKey> ordering = policies.combined_ordering();
      ordering.insert(ordering.end(), pref.begin(), pref.end());
      ppl::order_paths(filtered, ordering);
      if (!filtered.empty()) choice.compliant = filtered.front();
    }
    cb(std::move(choice));
  });
}

void PathSelector::record_rtt(const scion::Path& path, Duration rtt) {
  if (rtt <= Duration::zero()) return;
  PathUsage& usage = usage_[path.fingerprint()];
  if (usage.description.empty()) usage.description = path.to_string();
  if (usage.observed_rtt == Duration::zero()) {
    usage.observed_rtt = rtt;
  } else {
    usage.observed_rtt = Duration{(7 * usage.observed_rtt.nanos() + rtt.nanos()) / 8};
  }
}

void PathSelector::record_use(const scion::Path& path, std::uint64_t bytes, TimePoint now) {
  PathUsage& usage = usage_[path.fingerprint()];
  if (usage.description.empty()) usage.description = path.to_string();
  ++usage.requests;
  usage.bytes += bytes;
  usage.total_latency_estimate += path.meta().latency;
  if (now > usage.last_used) usage.last_used = now;
}

}  // namespace pan::proxy
