// Policy-driven path selection with per-path usage statistics.
//
// The selector asks the local daemon for candidate paths, applies the user's
// policy set (PPL policies + compiled geofence), and reports both the best
// compliant path and the best unrestricted path — the split the proxy needs
// to implement opportunistic vs. strict semantics (Section 4.2): in
// opportunistic mode a non-compliant path still loads the page (flagged in
// the UI); strict mode requires compliance.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "ppl/geofence.hpp"
#include "scion/daemon.hpp"

namespace pan::proxy {

struct PathChoice {
  std::optional<scion::Path> compliant;  // best policy-compliant path
  std::optional<scion::Path> any;        // best path ignoring the policy
  std::size_t candidates = 0;            // daemon candidates considered

  [[nodiscard]] bool reachable() const { return any.has_value(); }
};

/// Per-path usage counters surfaced to the user ("statistics on path usage
/// and performance of particular paths are provided as feedback").
struct PathUsage {
  std::string description;
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  Duration total_latency_estimate = Duration::zero();
  /// Transport-observed smoothed RTT, exponentially averaged over requests
  /// (zero until the first measurement) — the "performance of particular
  /// paths" feedback channel.
  Duration observed_rtt = Duration::zero();
  TimePoint last_used;
};

class PathSelector {
 public:
  explicit PathSelector(scion::Daemon& daemon);

  void set_policies(ppl::PolicySet policies) { policies_ = std::move(policies); }
  [[nodiscard]] const ppl::PolicySet& policies() const { return policies_; }
  void set_geofence(std::optional<ppl::Geofence> geofence);
  [[nodiscard]] const std::optional<ppl::Geofence>& geofence() const { return geofence_; }

  void choose(scion::IsdAsn dst, std::function<void(PathChoice)> callback);
  /// As choose(), with a negotiated server preference applied as a
  /// tie-breaking ordering after the user's policies, and an optional
  /// per-destination policy set overriding the selector's default (the
  /// proxy's PolicyRouter resolves it per request).
  void choose(scion::IsdAsn dst, std::vector<ppl::OrderKey> server_preference,
              std::function<void(PathChoice)> callback,
              std::optional<ppl::PolicySet> override_policies = std::nullopt);

  /// Records a request carried over `path`.
  void record_use(const scion::Path& path, std::uint64_t bytes,
                  TimePoint now = TimePoint::origin());
  /// Folds a transport RTT measurement into the path's feedback stats.
  void record_rtt(const scion::Path& path, Duration rtt);

  /// SCMP-driven revocation: paths crossing `iface` of `ia` are excluded
  /// from selection until the revocation expires.
  void revoke(scion::IsdAsn ia, scion::IfaceId iface, Duration ttl);
  [[nodiscard]] bool is_revoked(const scion::Path& path) const;
  [[nodiscard]] std::size_t active_revocations() const;
  [[nodiscard]] const std::unordered_map<std::string, PathUsage>& usage() const {
    return usage_;
  }

 private:
  struct Revocation {
    scion::IsdAsn ia;
    scion::IfaceId iface = scion::kNoIface;
    TimePoint expires;
  };

  [[nodiscard]] bool permits(const scion::Path& path) const;

  scion::Daemon& daemon_;
  ppl::PolicySet policies_;
  std::optional<ppl::Geofence> geofence_;
  std::unordered_map<std::string, PathUsage> usage_;
  std::vector<Revocation> revocations_;
};

}  // namespace pan::proxy
