// Policy-driven path selection with per-path usage statistics.
//
// The selector asks the local daemon for candidate paths, applies the user's
// policy set (PPL policies + compiled geofence), and reports both the best
// compliant path and the best unrestricted path — the split the proxy needs
// to implement opportunistic vs. strict semantics (Section 4.2): in
// opportunistic mode a non-compliant path still loads the page (flagged in
// the UI); strict mode requires compliance.
//
// Per-path usage feedback ("statistics on path usage and performance of
// particular paths") is kept as registry-backed instruments: the counters
// live in an obs::MetricsRegistry (the proxy's, when attached, so they show
// up in /skip/metrics) and usage() renders a point-in-time snapshot.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "ppl/geofence.hpp"
#include "scion/daemon.hpp"

namespace pan::proxy {

struct PathChoice {
  std::optional<scion::Path> compliant;  // best policy-compliant path
  std::optional<scion::Path> any;        // best path ignoring the policy
  std::size_t candidates = 0;            // daemon candidates considered
  /// The corresponding pick came from the caller's exclusion set (identity
  /// broker fallback: every non-excluded candidate was filtered away, so the
  /// selection knowingly reuses a path live for another identity).
  bool compliant_excluded = false;
  bool any_excluded = false;

  [[nodiscard]] bool reachable() const { return any.has_value(); }
};

/// Point-in-time view of one path's usage feedback. Counter values are read
/// from the backing metrics registry at snapshot time.
struct PathUsage {
  std::string description;
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  Duration total_latency_estimate = Duration::zero();
  /// Transport-observed smoothed RTT, exponentially averaged over requests
  /// (zero until the first measurement) — the "performance of particular
  /// paths" feedback channel.
  Duration observed_rtt = Duration::zero();
  TimePoint last_used;
};

class PathSelector {
 public:
  /// When `metrics` is null the selector owns a private registry, so usage
  /// accounting is always registry-backed; the proxy passes its own registry
  /// so path counters appear in the /skip/metrics dump.
  explicit PathSelector(scion::Daemon& daemon, obs::MetricsRegistry* metrics = nullptr);

  void set_policies(ppl::PolicySet policies) { policies_ = std::move(policies); }
  [[nodiscard]] const ppl::PolicySet& policies() const { return policies_; }
  void set_geofence(std::optional<ppl::Geofence> geofence);
  [[nodiscard]] const std::optional<ppl::Geofence>& geofence() const { return geofence_; }

  /// Soft exclusion predicate evaluated at filter time (the identity
  /// broker's disjointness constraint). Excluded candidates are demoted
  /// below quarantined ones: they are only used when nothing else survives,
  /// and the PathChoice flags the fallback so the caller can count it.
  using ExcludeFn = std::function<bool(const scion::Path&)>;

  /// Registers the daemon serving an additional access attachment (multi-
  /// access host). choose() with that access name queries this daemon —
  /// paths are rooted at the access's own first-hop AS.
  void add_access_daemon(const std::string& access, scion::Daemon& daemon);

  void choose(scion::IsdAsn dst, std::function<void(PathChoice)> callback);
  /// As choose(), with a negotiated server preference applied as a
  /// tie-breaking ordering after the user's policies, an optional
  /// per-destination policy set overriding the selector's default (the
  /// proxy's PolicyRouter resolves it per request), an optional
  /// exclusion predicate (identity disjointness), and an optional access
  /// name routing the query to that access's daemon ("" = primary).
  void choose(scion::IsdAsn dst, std::vector<ppl::OrderKey> server_preference,
              std::function<void(PathChoice)> callback,
              std::optional<ppl::PolicySet> override_policies = std::nullopt,
              ExcludeFn exclude = nullptr, const std::string& access = {});

  /// Records a request carried over `path`. A non-empty `identity` scopes
  /// the per-path counters to that identity
  /// (`selector.path.requests{identity=...,path=...}`), so usage accounting
  /// breaks down by (identity, path) instead of path alone.
  void record_use(const scion::Path& path, std::uint64_t bytes,
                  TimePoint now = TimePoint::origin(), std::string_view identity = {});
  /// Folds a transport RTT measurement into the path's feedback stats.
  void record_rtt(const scion::Path& path, Duration rtt);

  /// SCMP-driven revocation: paths crossing `iface` of `ia` are excluded
  /// from selection until the revocation expires. Expired entries are pruned
  /// on insert and on lookup so the table stays bounded.
  void revoke(scion::IsdAsn ia, scion::IfaceId iface, Duration ttl);
  [[nodiscard]] bool is_revoked(const scion::Path& path);
  [[nodiscard]] std::size_t active_revocations() const;
  /// Entries physically stored in the revocation table (== active after any
  /// prune; the regression target for the unbounded-growth bug).
  [[nodiscard]] std::size_t revocation_entries() const { return revocations_.size(); }

  /// Failure feedback from the resilience layer: a path that just failed a
  /// fetch is *soft*-excluded for `ttl` — preferred candidates come from the
  /// non-quarantined set, and quarantined paths are used only when nothing
  /// else survives filtering (unlike a revocation, which is authoritative).
  void quarantine(const scion::Path& path, Duration ttl);
  [[nodiscard]] bool is_quarantined(const std::string& fingerprint);
  [[nodiscard]] std::size_t active_quarantines() const;
  /// Fingerprint -> expiry for the /skip/health dump (deterministic order).
  [[nodiscard]] std::vector<std::pair<std::string, TimePoint>> quarantine_snapshot() const;
  /// Warm-handoff restore of a quarantine_snapshot() entry: re-installs the
  /// exclusion at its original absolute expiry (already-expired entries are
  /// ignored, and a longer-lived local entry is never shortened).
  void restore_quarantine(const std::string& fingerprint, TimePoint expires);

  /// Usage snapshot built from the registry, keyed by path fingerprint for
  /// default-identity use and by "<identity>|<fingerprint>" for
  /// identity-scoped use.
  [[nodiscard]] std::unordered_map<std::string, PathUsage> usage() const;

  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  struct Revocation {
    scion::IsdAsn ia;
    scion::IfaceId iface = scion::kNoIface;
    TimePoint expires;
  };
  /// Per-path instruments: counters live in the registry; the smoothed RTT
  /// and last-use mark are scalar state mirrored into gauges.
  struct PathInstruments {
    std::string description;
    obs::Counter* requests = nullptr;
    obs::Counter* bytes = nullptr;
    Duration total_latency_estimate = Duration::zero();
    Duration observed_rtt = Duration::zero();
    TimePoint last_used;
  };

  [[nodiscard]] bool permits(const scion::Path& path) const;
  PathInstruments& instruments_for(const scion::Path& path, std::string_view identity = {});
  void prune_expired_revocations(TimePoint now);
  void prune_expired_quarantines(TimePoint now);

  scion::Daemon& daemon_;
  std::unordered_map<std::string, scion::Daemon*> access_daemons_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  ppl::PolicySet policies_;
  std::optional<ppl::Geofence> geofence_;
  std::unordered_map<std::string, PathInstruments> paths_;
  std::vector<Revocation> revocations_;
  std::unordered_map<std::string, TimePoint> quarantined_;  // fingerprint -> expiry
};

}  // namespace pan::proxy
