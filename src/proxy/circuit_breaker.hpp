// Per-origin circuit breaker for the SKIP proxy's routing layer.
//
// Classic three-state machine, keyed by origin ("host:port"):
//
//   closed ──(N consecutive SCION failures)──▶ open
//   open ──(open_ttl elapsed)──▶ half-open (the next allow() is the probe)
//   half-open ──probe succeeds──▶ closed
//   half-open ──probe fails──▶ open (timer restarts)
//
// While an origin is open, allow() is false and the proxy skips the SCION
// attempt entirely: opportunistic requests short-circuit to legacy, strict
// requests fast-fail with 503 + Retry-After. Exactly one in-flight probe is
// admitted in half-open so a recovering origin is not stampeded.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace pan::proxy {

struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker; 0 disables it entirely.
  std::size_t failure_threshold = 4;
  /// How long an open breaker rejects before admitting a half-open probe.
  Duration open_ttl = seconds(5);
};

class CircuitBreaker {
 public:
  CircuitBreaker(sim::Simulator& sim, CircuitBreakerConfig config,
                 obs::MetricsRegistry* metrics = nullptr);

  /// True when a SCION attempt may proceed for this origin. In half-open
  /// state the first caller becomes the probe; subsequent callers are
  /// rejected until the probe reports back.
  [[nodiscard]] bool allow(const std::string& key);
  void record_success(const std::string& key);
  void record_failure(const std::string& key);

  [[nodiscard]] bool is_open(const std::string& key) const;
  [[nodiscard]] std::size_t open_count() const;
  /// {"host:443": {"state": "open", "consecutive_failures": 5, ...}, ...}
  [[nodiscard]] std::string snapshot_json() const;

  /// Warm-handoff snapshot: per-origin state, portable across breaker
  /// instances that share a sim clock. `state` is the wire form of State
  /// (0 closed, 1 open, 2 half-open).
  struct ExportedEntry {
    std::string key;
    std::uint8_t state = 0;
    std::size_t consecutive_failures = 0;
    TimePoint opened_at;
  };
  [[nodiscard]] std::vector<ExportedEntry> export_entries() const;
  /// Restores a snapshot (replacing any existing entry per key). Imported
  /// half-open entries drop the probe-in-flight claim: the old instance's
  /// probe died with it, so the next allow() becomes the probe here.
  void import_entries(const std::vector<ExportedEntry>& entries);

 private:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Entry {
    State state = State::kClosed;
    std::size_t consecutive_failures = 0;
    TimePoint opened_at;
    bool probe_in_flight = false;
  };

  void count(const std::string& name);
  /// Flight-recorder event (no-op without a registry).
  void event(std::string_view kind, std::string detail);
  [[nodiscard]] static std::string_view state_name(State state);

  sim::Simulator& sim_;
  CircuitBreakerConfig config_;
  obs::MetricsRegistry* metrics_;
  // Ordered so snapshot_json() is deterministic.
  std::map<std::string, Entry> entries_;
};

}  // namespace pan::proxy
