#include "proxy/identity.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pan::proxy {

namespace {
constexpr std::size_t kMaxIdentityLength = 64;

bool identity_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '.' || c == '_' || c == '-';
}
}  // namespace

std::string sanitize_identity(std::string_view raw) {
  if (raw.empty()) return std::string(kDefaultIdentity);
  std::string out;
  out.reserve(std::min(raw.size(), kMaxIdentityLength));
  for (const char c : raw.substr(0, kMaxIdentityLength)) {
    out.push_back(identity_char_ok(c) ? c : '-');
  }
  return out;
}

std::string identity_of(const http::HttpRequest& request) {
  const auto header = request.headers.get(std::string(kIdentityHeader));
  if (!header.has_value()) return std::string(kDefaultIdentity);
  return sanitize_identity(*header);
}

std::string identity_key(std::string_view identity, const std::string& origin) {
  if (identity.empty() || identity == kDefaultIdentity) return origin;
  return std::string(identity) + "|" + origin;
}

std::string identity_of_key(const std::string& key) {
  const auto sep = key.find('|');
  if (sep == std::string::npos) return std::string(kDefaultIdentity);
  return key.substr(0, sep);
}

NetworkIdentity::NetworkIdentity(std::string id, TimePoint created_at, std::size_t audit_cap)
    : id_(std::move(id)), created_at_(created_at), audit_cap_(audit_cap) {}

bool NetworkIdentity::is_quarantined(const std::string& fingerprint, TimePoint now) const {
  const auto it = quarantined_.find(fingerprint);
  return it != quarantined_.end() && it->second > now;
}

std::size_t NetworkIdentity::quarantined_count(TimePoint now) const {
  std::size_t count = 0;
  for (const auto& [fingerprint, expires] : quarantined_) {
    if (expires > now) ++count;
  }
  return count;
}

void NetworkIdentity::record(TimePoint at, std::string event, std::string origin,
                             std::string detail) {
  audit_.push_back(
      IdentityAuditEvent{at, std::move(event), std::move(origin), std::move(detail)});
  while (audit_cap_ > 0 && audit_.size() > audit_cap_) audit_.pop_front();
}

IdentityPathBroker::IdentityPathBroker(sim::Simulator& sim, obs::MetricsRegistry& metrics,
                                       std::size_t audit_cap)
    : sim_(sim), metrics_(metrics), audit_cap_(audit_cap) {}

NetworkIdentity& IdentityPathBroker::identity(const std::string& id) {
  const auto it = identities_.find(id);
  if (it != identities_.end()) return it->second;
  auto [inserted, ok] =
      identities_.emplace(id, NetworkIdentity(id, sim_.now(), audit_cap_));
  (void)ok;
  metrics_.counter("identity.created").inc();
  inserted->second.record(sim_.now(), "created", "", "");
  return inserted->second;
}

const NetworkIdentity* IdentityPathBroker::find(const std::string& id) const {
  const auto it = identities_.find(id);
  return it == identities_.end() ? nullptr : &it->second;
}

std::optional<ppl::PolicySet> IdentityPathBroker::policies_for(const std::string& id) const {
  const NetworkIdentity* ident = find(id);
  if (ident == nullptr) return std::nullopt;
  return ident->policies();
}

std::function<bool(const scion::Path&)> IdentityPathBroker::exclusion(
    const std::string& id, const std::string& origin) {
  return [this, id, origin](const scion::Path& path) {
    const std::string fingerprint = path.fingerprint();
    if (fingerprint.empty()) return false;
    if (const auto o = live_.find(origin); o != live_.end()) {
      const auto holder = o->second.find(fingerprint);
      if (holder != o->second.end() && holder->second != id) return true;
    }
    const auto ident = identities_.find(id);
    return ident != identities_.end() &&
           ident->second.is_quarantined(fingerprint, sim_.now());
  };
}

bool IdentityPathBroker::commit(const std::string& id, const std::string& origin,
                                const std::string& fingerprint, bool excluded_fallback) {
  if (fingerprint.empty()) return false;  // intra-AS trivial path: nothing to broker
  NetworkIdentity& ident = identity(id);
  auto& owners = live_[origin];
  const auto prev = ident.assignments_.find(origin);
  const bool changed = prev == ident.assignments_.end() || prev->second != fingerprint;
  if (prev != ident.assignments_.end() && prev->second != fingerprint) {
    // Release the old claim if this identity still holds it.
    if (const auto old = owners.find(prev->second);
        old != owners.end() && old->second == id) {
      owners.erase(old);
    }
  }
  const auto holder = owners.find(fingerprint);
  const bool collided =
      excluded_fallback || (holder != owners.end() && holder->second != id);
  // A collision does not steal the other identity's claim — both are now on
  // the path (path set too small); ownership stays with the first claimant.
  if (holder == owners.end()) owners.emplace(fingerprint, id);
  ident.assignments_[origin] = fingerprint;
  const TimePoint now = sim_.now();
  if (changed) ident.record(now, "assign", origin, fingerprint);
  if (collided) {
    ++ident.stats_.path_collisions;
    metrics_.counter("identity.path_collisions").inc();
    metrics_.events().record(now, "identity", "collision",
                             id + " -> " + origin + " on " + fingerprint);
    ident.record(now, "collision", origin, fingerprint);
  }
  return collided;
}

std::vector<std::pair<std::string, std::string>> IdentityPathBroker::rotate(
    const std::string& id, Duration quarantine_ttl) {
  NetworkIdentity& ident = identity(id);
  const TimePoint now = sim_.now();
  std::vector<std::pair<std::string, std::string>> released(ident.assignments_.begin(),
                                                            ident.assignments_.end());
  for (const auto& [origin, fingerprint] : released) {
    if (const auto o = live_.find(origin); o != live_.end()) {
      if (const auto holder = o->second.find(fingerprint);
          holder != o->second.end() && holder->second == id) {
        o->second.erase(holder);
      }
      if (o->second.empty()) live_.erase(origin);
    }
    if (quarantine_ttl > Duration::zero()) {
      TimePoint& expires = ident.quarantined_[fingerprint];
      expires = std::max(expires, now + quarantine_ttl);
    }
  }
  // Drop expired quarantine entries so the per-identity set stays bounded by
  // live rotations, not by lifetime history.
  std::erase_if(ident.quarantined_,
                [now](const auto& entry) { return entry.second <= now; });
  ident.assignments_.clear();
  ++ident.stats_.rotations;
  metrics_.counter("identity.rotations").inc();
  ident.record(now, "rotate", "",
               std::to_string(released.size()) + " assignments quarantined");
  return released;
}

void IdentityPathBroker::record_result(const std::string& id, bool over_scion,
                                       std::uint64_t bytes) {
  NetworkIdentity& ident = identity(id);
  ++ident.stats_.requests;
  ident.stats_.bytes += bytes;
  if (over_scion) {
    ++ident.stats_.over_scion;
  } else {
    ++ident.stats_.over_ip;
  }
}

std::string IdentityPathBroker::snapshot_json() const {
  const TimePoint now = sim_.now();
  std::string out = "{\"identities\":[";
  bool first = true;
  for (const auto& [id, ident] : identities_) {
    if (!first) out += ",";
    first = false;
    const IdentityStats& stats = ident.stats();
    out += "{\"id\":" + strings::json_quote(id);
    out += strings::format(
        ",\"created_at_ms\":%.3f,\"requests\":%llu,\"bytes\":%llu,\"over_scion\":%llu,"
        "\"over_ip\":%llu,\"path_collisions\":%llu,\"rotations\":%llu",
        ident.created_at().millis(), static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.bytes),
        static_cast<unsigned long long>(stats.over_scion),
        static_cast<unsigned long long>(stats.over_ip),
        static_cast<unsigned long long>(stats.path_collisions),
        static_cast<unsigned long long>(stats.rotations));
    out += ",\"quarantined\":" + std::to_string(ident.quarantined_count(now));
    out += ",\"assignments\":{";
    bool first_assignment = true;
    for (const auto& [origin, fingerprint] : ident.assignments()) {
      if (!first_assignment) out += ",";
      first_assignment = false;
      out += strings::json_quote(origin) + ":" + strings::json_quote(fingerprint);
    }
    out += "},\"audit\":[";
    bool first_event = true;
    for (const IdentityAuditEvent& event : ident.audit()) {
      if (!first_event) out += ",";
      first_event = false;
      out += strings::format("{\"at_ms\":%.3f,\"event\":", event.at.millis());
      out += strings::json_quote(event.event);
      out += ",\"origin\":" + strings::json_quote(event.origin);
      out += ",\"detail\":" + strings::json_quote(event.detail) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace pan::proxy
