#include "proxy/policy_router.hpp"

#include "util/strings.hpp"

namespace pan::proxy {

bool PolicyRouter::host_matches(const std::string& pattern, const std::string& host) {
  if (pattern == "*") return true;
  if (strings::starts_with(pattern, "*.")) {
    const std::string_view suffix = std::string_view(pattern).substr(1);  // ".x.org"
    return host.size() > suffix.size() && strings::ends_with(host, suffix);
  }
  return strings::iequals(pattern, host);
}

void PolicyRouter::add_rule(std::string host_pattern, ppl::PolicySet policies) {
  rules_.push_back(Rule{std::move(host_pattern), std::move(policies)});
}

const ppl::PolicySet& PolicyRouter::match(const std::string& host) const {
  for (const Rule& rule : rules_) {
    if (host_matches(rule.pattern, host)) return rule.policies;
  }
  return default_;
}

}  // namespace pan::proxy
