#include "proxy/detector.hpp"

#include "proxy/identity.hpp"

namespace pan::proxy {

const char* to_string(ScionSource s) {
  switch (s) {
    case ScionSource::kNone: return "none";
    case ScionSource::kCurated: return "curated";
    case ScionSource::kLearned: return "learned";
    case ScionSource::kDnsTxt: return "dns-txt";
  }
  return "?";
}

ScionDetector::ScionDetector(sim::Simulator& sim, dns::Resolver& resolver)
    : sim_(sim), resolver_(resolver) {}

void ScionDetector::add_curated(const std::string& domain, const scion::ScionAddr& addr) {
  curated_[domain] = addr;
}

void ScionDetector::learn(const std::string& domain, const scion::ScionAddr& addr,
                          Duration max_age, const std::string& identity) {
  apply_learned(domain, addr, max_age, identity);
  if (learn_hook_) learn_hook_(domain, addr, max_age, identity);
}

void ScionDetector::apply_learned(const std::string& domain, const scion::ScionAddr& addr,
                                  Duration max_age, const std::string& identity) {
  const std::string key = identity_key(identity, domain);
  // HSTS semantics: max-age=0 (or a bogus negative value) is an explicit
  // withdrawal of the advertisement, not a dead map entry that lingers.
  if (max_age <= Duration::zero()) {
    learned_.erase(key);
    return;
  }
  learned_[key] = LearnedEntry{addr, sim_.now() + max_age};
}

std::vector<ScionDetector::ExportedEntry> ScionDetector::export_learned() const {
  std::vector<ExportedEntry> out;
  out.reserve(learned_.size());
  for (const auto& [key, entry] : learned_) {
    if (entry.expires <= sim_.now()) continue;
    out.push_back(ExportedEntry{key, entry.addr, entry.expires});
  }
  return out;
}

void ScionDetector::import_learned(const std::vector<ExportedEntry>& entries) {
  for (const auto& entry : entries) {
    if (entry.expires <= sim_.now()) continue;
    const auto it = learned_.find(entry.key);
    if (it != learned_.end() && it->second.expires >= entry.expires) continue;
    learned_[entry.key] = LearnedEntry{entry.addr, entry.expires};
  }
}

ResolvedHost ScionDetector::lookup(const std::string& domain, const std::string& identity) {
  ResolvedHost base;
  if (const auto curated = curated_.find(domain); curated != curated_.end()) {
    base.scion = curated->second;
    base.scion_source = ScionSource::kCurated;
    return base;
  }
  const std::string key = identity_key(identity, domain);
  if (const auto learned = learned_.find(key); learned != learned_.end()) {
    if (learned->second.expires > sim_.now()) {
      base.scion = learned->second.addr;
      base.scion_source = ScionSource::kLearned;
    } else {
      learned_.erase(learned);
    }
  }
  return base;
}

void ScionDetector::resolve(const std::string& domain,
                            std::function<void(ResolvedHost)> callback) {
  resolve(domain, {}, std::move(callback));
}

void ScionDetector::resolve(const std::string& domain, const std::string& identity,
                            std::function<void(ResolvedHost)> callback) {
  // The curated/learned lookup happens inside the resolver callback, not
  // here: a max-age=0 withdrawal (or an expiry) landing while the DNS query
  // is in flight must win, or the proxy hands back a SCION address the
  // origin just revoked.
  resolver_.resolve(domain, [this, domain, identity,
                             cb = std::move(callback)](Result<dns::RecordSet> records) {
    ResolvedHost host = lookup(domain, identity);
    if (records.ok()) {
      if (!records.value().a.empty()) host.ip = records.value().a.front();
      if (!host.scion.has_value()) {
        if (const auto txt = dns::scion_addr_from_txt(records.value())) {
          host.scion = *txt;
          host.scion_source = ScionSource::kDnsTxt;
        }
      }
    }
    cb(host);
  });
}

}  // namespace pan::proxy
