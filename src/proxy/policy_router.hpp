// Per-destination policy routing: the extension UI lets users attach
// different path policies to different sites ("optimize CO2 for video
// sites, geofence my bank"), so the proxy resolves which PolicySet governs
// each request by hostname.
//
// Rules are (host pattern, PolicySet) pairs checked in insertion order;
// patterns are exact hostnames or "*.suffix" wildcards ("*" alone matches
// everything). The first match wins; a default set applies otherwise.
#pragma once

#include <string>
#include <vector>

#include "ppl/ast.hpp"

namespace pan::proxy {

class PolicyRouter {
 public:
  /// True if `pattern` covers `host` ("www.x.org" matches "*.x.org" and
  /// "www.x.org" but not "x.org"; "*" matches anything).
  [[nodiscard]] static bool host_matches(const std::string& pattern, const std::string& host);

  void add_rule(std::string host_pattern, ppl::PolicySet policies);
  void set_default(ppl::PolicySet policies) { default_ = std::move(policies); }
  void clear_rules() { rules_.clear(); }

  /// The governing policy set for `host` (never null; falls back to the
  /// default set, which may be empty/permissive).
  [[nodiscard]] const ppl::PolicySet& match(const std::string& host) const;

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

 private:
  struct Rule {
    std::string pattern;
    ppl::PolicySet policies;
  };

  std::vector<Rule> rules_;
  ppl::PolicySet default_;
};

}  // namespace pan::proxy
