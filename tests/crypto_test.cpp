// Unit tests for src/crypto: SHA-256 against FIPS 180-4 vectors, HMAC-SHA256
// against RFC 4231 vectors, truncated MACs, and Lamport signatures.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"

namespace pan::crypto {
namespace {

std::string hex_of(std::string_view s) { return hex_digest(sha256(s)); }

// ------------------------------------------------------------- sha256 ---

TEST(Sha256Test, FipsVectors) {
  EXPECT_EQ(hex_of(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_of("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_digest(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes = exactly one block; padding must spill into a second block.
  const std::string block(64, 'x');
  EXPECT_EQ(hex_of(block), hex_digest(sha256(block)));
  const std::string block55(55, 'y');  // largest single-block message
  const std::string block56(56, 'y');  // forces a second block
  EXPECT_NE(hex_of(block55), hex_of(block56));
}

/// Streaming in arbitrary chunk sizes must match the one-shot digest.
class Sha256Streaming : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Streaming, ChunkedEqualsOneShot) {
  const std::size_t chunk_size = GetParam();
  std::string message;
  for (int i = 0; i < 500; ++i) message += static_cast<char>('A' + i % 26);
  const Digest oneshot = sha256(message);

  Sha256 h;
  for (std::size_t pos = 0; pos < message.size(); pos += chunk_size) {
    h.update(std::string_view(message).substr(pos, chunk_size));
  }
  EXPECT_EQ(h.finalize(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha256Streaming,
                         ::testing::Values(1, 3, 7, 63, 64, 65, 128, 499, 500));

TEST(Sha256Test, ResetReuses) {
  Sha256 h;
  h.update("garbage");
  h.reset();
  h.update("abc");
  EXPECT_EQ(hex_digest(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// --------------------------------------------------------------- hmac ---

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest mac = hmac_sha256(key, "Hi There");
  EXPECT_EQ(hex_digest(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = from_string("Jefe");
  const Digest mac = hmac_sha256(key, "what do ya want for nothing?");
  EXPECT_EQ(hex_digest(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes message(50, 0xdd);
  const Digest mac = hmac_sha256(key, message);
  EXPECT_EQ(hex_digest(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashed) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Digest mac = hmac_sha256(key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hex_digest(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDiffer) {
  const Bytes k1(16, 0x01);
  const Bytes k2(16, 0x02);
  EXPECT_NE(hmac_sha256(k1, "msg"), hmac_sha256(k2, "msg"));
}

TEST(HmacKeyTest, MatchesOneShotHmacAcrossKeyLengths) {
  // Short key (zero-padded), exactly block-sized key, and over-block key
  // (hashed first): the precomputed-midstate path must agree with the
  // one-shot reference on all three, across message sizes including empty
  // and multi-block.
  const std::vector<Bytes> keys = {Bytes(16, 0x42), Bytes(64, 0xA5), Bytes(131, 0xAA)};
  const std::vector<Bytes> messages = {Bytes{}, from_string("Hi There"), Bytes(20, 0xDD),
                                       Bytes(200, 0x33)};
  for (const Bytes& key : keys) {
    const HmacKey precomputed(key);
    for (const Bytes& message : messages) {
      EXPECT_EQ(precomputed.mac(message), hmac_sha256(key, message))
          << "key size " << key.size() << ", message size " << message.size();
      EXPECT_EQ(precomputed.short_mac(message), short_mac(key, message));
    }
  }
}

TEST(HmacKeyTest, ReusableAcrossCalls) {
  const Bytes key(16, 0x42);
  const HmacKey precomputed(key);
  const Digest first = precomputed.mac(from_string("one"));
  EXPECT_EQ(precomputed.mac(from_string("two")), hmac_sha256(key, from_string("two")));
  EXPECT_EQ(precomputed.mac(from_string("one")), first);  // midstates untouched
}

TEST(ShortMacTest, TruncatesHmac) {
  const Bytes key(16, 0x42);
  const Bytes message = from_string("payload");
  const Digest full = hmac_sha256(key, message);
  const ShortMac mac = short_mac(key, message);
  for (std::size_t i = 0; i < kShortMacSize; ++i) {
    EXPECT_EQ(mac[i], full[i]);
  }
}

TEST(ShortMacTest, MacEqual) {
  const Bytes key(16, 0x42);
  const ShortMac a = short_mac(key, from_string("x"));
  ShortMac b = a;
  EXPECT_TRUE(mac_equal(a, b));
  b[5] ^= 1;
  EXPECT_FALSE(mac_equal(a, b));
}

// ----------------------------------------------------------- signature --

TEST(SignatureTest, SignVerifyRoundTrip) {
  Rng rng(1);
  const KeyPair kp = generate_keypair(rng);
  const Signature sig = sign(kp.private_key, "a signed beacon entry");
  EXPECT_TRUE(verify(kp.public_key, "a signed beacon entry", sig));
}

TEST(SignatureTest, TamperedMessageFails) {
  Rng rng(2);
  const KeyPair kp = generate_keypair(rng);
  const Signature sig = sign(kp.private_key, "original");
  EXPECT_FALSE(verify(kp.public_key, "orig1nal", sig));
}

TEST(SignatureTest, TamperedSignatureFails) {
  Rng rng(3);
  const KeyPair kp = generate_keypair(rng);
  Signature sig = sign(kp.private_key, "message");
  sig.revealed[10][0] ^= 0x80;
  EXPECT_FALSE(verify(kp.public_key, "message", sig));
}

TEST(SignatureTest, WrongKeyFails) {
  Rng rng(4);
  const KeyPair kp1 = generate_keypair(rng);
  const KeyPair kp2 = generate_keypair(rng);
  const Signature sig = sign(kp1.private_key, "message");
  EXPECT_FALSE(verify(kp2.public_key, "message", sig));
}

TEST(SignatureTest, SerializeRoundTrip) {
  Rng rng(5);
  const KeyPair kp = generate_keypair(rng);
  const Signature sig = sign(kp.private_key, "wire");
  const Bytes wire = sig.serialize();
  EXPECT_EQ(wire.size(), kSignatureBits * kSha256DigestSize);
  const auto parsed = Signature::deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(verify(kp.public_key, "wire", parsed.value()));
}

TEST(SignatureTest, DeserializeRejectsBadLength) {
  EXPECT_FALSE(Signature::deserialize(Bytes(100)).ok());
  EXPECT_FALSE(Signature::deserialize(Bytes{}).ok());
}

TEST(SignatureTest, FingerprintStable) {
  Rng rng(6);
  const KeyPair kp = generate_keypair(rng);
  EXPECT_EQ(kp.public_key.fingerprint(), kp.public_key.fingerprint());
  Rng rng2(7);
  const KeyPair other = generate_keypair(rng2);
  EXPECT_NE(kp.public_key.fingerprint(), other.public_key.fingerprint());
}

TEST(SignatureTest, DeterministicKeygen) {
  Rng a(99);
  Rng b(99);
  const KeyPair ka = generate_keypair(a);
  const KeyPair kb = generate_keypair(b);
  EXPECT_TRUE(ka.public_key == kb.public_key);
}

}  // namespace
}  // namespace pan::crypto
