// Property tests over randomly generated topologies: control-plane and
// data-plane invariants that must hold for every seed.
#include <gtest/gtest.h>

#include <unordered_set>

#include "ppl/geofence.hpp"
#include "ppl/parser.hpp"
#include "proxy/overload.hpp"
#include "scion/topo_gen.hpp"
#include "util/rng.hpp"

namespace pan::scion {
namespace {

class RandomTopology : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void build(TopoGenParams params = {}) {
    params.seed = GetParam();
    world_ = generate_topology(sim_, params);
  }

  sim::Simulator sim_;
  GeneratedTopology world_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology, ::testing::Range<std::uint64_t>(1, 13));

TEST_P(RandomTopology, AllPairsHavePaths) {
  build();
  Topology& topo = *world_.topo;
  for (const IsdAsn src : world_.leaf_ases) {
    for (const IsdAsn dst : world_.leaf_ases) {
      const auto paths = topo.daemon(src).query_now(dst);
      EXPECT_FALSE(paths.empty()) << src.to_string() << " -> " << dst.to_string();
    }
  }
}

TEST_P(RandomTopology, PathInvariants) {
  build();
  Topology& topo = *world_.topo;
  for (const IsdAsn src : world_.leaf_ases) {
    for (const IsdAsn dst : world_.leaf_ases) {
      if (src == dst) continue;
      std::unordered_set<std::string> fingerprints;
      for (const Path& path : topo.daemon(src).query_now(dst)) {
        // Endpoints.
        EXPECT_EQ(path.src(), src);
        EXPECT_EQ(path.dst(), dst);
        EXPECT_EQ(path.hops().front().isd_as, src);
        EXPECT_EQ(path.hops().back().isd_as, dst);
        // Loop-free.
        std::unordered_set<std::uint64_t> seen;
        for (const PathHop& hop : path.hops()) {
          EXPECT_TRUE(seen.insert(hop.isd_as.packed()).second) << path.to_string();
        }
        // Fingerprints unique.
        EXPECT_TRUE(fingerprints.insert(path.fingerprint()).second);
        // Metadata sanity.
        EXPECT_GT(path.meta().latency.nanos(), 0);
        EXPECT_GT(path.meta().bandwidth_bps, 0);
        EXPECT_GE(path.meta().mtu, 1400u);
        EXPECT_GE(path.meta().loss_rate, 0.0);
        EXPECT_LT(path.meta().loss_rate, 0.1);
        EXPECT_GT(path.meta().co2_g_per_gb, 0);
        // Dataplane structure matches hop count: the flattened AS-level hop
        // list merges junction ASes, so total dataplane hops >= AS hops.
        EXPECT_GE(path.dataplane().total_hops(), path.hops().size());
      }
    }
  }
}

TEST_P(RandomTopology, BestPathForwardsEndToEnd) {
  build();
  Topology& topo = *world_.topo;
  // Ping between the first and last leaf over the best path.
  const HostId src_host = world_.hosts.front();
  const HostId dst_host = world_.hosts.back();
  const auto paths = topo.daemon_for(src_host).query_now(topo.as_of(dst_host));
  ASSERT_FALSE(paths.empty());

  std::string got;
  DataplanePath reply_path;
  auto server = topo.scion_stack(dst_host).bind(
      7777, [&](const ScionEndpoint&, const DataplanePath& reply, net::PacketView payload) {
        got = to_string_view_copy(payload.span());
        reply_path = reply;
      });
  auto client = topo.scion_stack(src_host).bind(0, nullptr);
  client->send_to(ScionEndpoint{topo.scion_addr(dst_host), 7777}, paths.front().dataplane(),
                  from_string("prop"));
  sim_.run();
  if (paths.front().meta().loss_rate == 0.0) {
    EXPECT_EQ(got, "prop") << paths.front().to_string();
  }
  // No MAC or malformed-path drops anywhere — the control plane only hands
  // out forwardable paths.
  for (const IsdAsn ia : topo.all_ases()) {
    const BorderRouterStats& stats = topo.border_router_stats(ia);
    EXPECT_EQ(stats.drop_mac, 0u) << ia.to_string();
    EXPECT_EQ(stats.drop_malformed_path, 0u) << ia.to_string();
    EXPECT_EQ(stats.drop_wrong_as, 0u) << ia.to_string();
  }
}

TEST_P(RandomTopology, EveryPathOfOnePairForwards) {
  TopoGenParams params;
  params.leaves_per_core = 1;  // keep the pair set small
  build(params);
  Topology& topo = *world_.topo;
  const HostId src_host = world_.hosts.front();
  const HostId dst_host = world_.hosts.back();
  const auto paths = topo.daemon_for(src_host).query_now(topo.as_of(dst_host));
  ASSERT_FALSE(paths.empty());

  int received = 0;
  auto server = topo.scion_stack(dst_host).bind(
      7777,
      [&](const ScionEndpoint&, const DataplanePath&, net::PacketView) { ++received; });
  auto client = topo.scion_stack(src_host).bind(0, nullptr);
  int sent_lossless = 0;
  bool any_lossy = false;
  for (const Path& path : paths) {
    if (path.meta().loss_rate == 0.0) {
      ++sent_lossless;
      client->send_to(ScionEndpoint{topo.scion_addr(dst_host), 7777}, path.dataplane(),
                      from_string("x"));
    } else {
      any_lossy = true;
    }
  }
  sim_.run();
  EXPECT_EQ(received, sent_lossless);
  (void)any_lossy;
}

TEST_P(RandomTopology, GeofenceConsistentWithPathContents) {
  build();
  Topology& topo = *world_.topo;
  ppl::Geofence fence;
  fence.mode = ppl::GeofenceMode::kBlocklist;
  fence.isds = {2};
  const ppl::Policy compiled = fence.compile("no-isd2");
  for (const IsdAsn src : world_.leaf_ases) {
    for (const Path& path : topo.daemon(src).query_now(world_.leaf_ases.back())) {
      EXPECT_EQ(fence.permits(path), !path.contains_isd(2));
      EXPECT_EQ(compiled.permits(path), fence.permits(path));
    }
  }
}

TEST_P(RandomTopology, OrderingsAreTotalAndStable) {
  build();
  Topology& topo = *world_.topo;
  auto paths = topo.daemon(world_.leaf_ases.front()).query_now(world_.leaf_ases.back());
  if (paths.size() < 2) return;
  for (const char* text :
       {"policy { order latency asc; }", "policy { order co2 asc, latency desc; }",
        "policy { order hops asc, cost asc; }"}) {
    const auto policy = ppl::parse_policy(text);
    ASSERT_TRUE(policy.ok());
    auto sorted = policy.value().apply(paths);
    // Applying twice yields the same order (determinism).
    auto sorted_again = policy.value().apply(sorted);
    ASSERT_EQ(sorted.size(), sorted_again.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(sorted[i].fingerprint(), sorted_again[i].fingerprint());
    }
    // The primary key is actually non-decreasing / non-increasing.
    const ppl::OrderKey primary = policy.value().ordering.front();
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      const double prev = ppl::metric_value(sorted[i - 1], primary.metric);
      const double cur = ppl::metric_value(sorted[i], primary.metric);
      if (primary.ascending) {
        EXPECT_LE(prev, cur);
      } else {
        EXPECT_GE(prev, cur);
      }
    }
  }
}

TEST_P(RandomTopology, SignedTopologyVerifiesEverySegment) {
  TopoGenParams params;
  params.cores_per_isd = 2;
  params.leaves_per_core = 1;
  params.sign_beacons = true;
  params.beacons_per_origin = 3;
  build(params);
  Topology& topo = *world_.topo;
  std::size_t checked = 0;
  for (const IsdAsn leaf : world_.leaf_ases) {
    for (const PathSegment& seg : topo.path_infra().down_segments(leaf)) {
      EXPECT_TRUE(verify_segment(seg, topo.trust_store())) << seg.id();
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(RandomTopology, ReservationsAdmitAndPoliceOnRandomPaths) {
  build();
  Topology& topo = *world_.topo;
  ReservationManager& manager = topo.reservations();
  const IsdAsn src = world_.leaf_ases.front();
  const IsdAsn dst = world_.leaf_ases.back();
  const auto paths = topo.daemon(src).query_now(dst);
  ASSERT_FALSE(paths.empty());
  const Path& path = paths.front();

  // A tiny reservation always fits (links are >= 1 Gbps).
  const auto id = manager.reserve(path, 1e6, sim_.now(), seconds(60));
  ASSERT_TRUE(id.ok()) << id.error();
  // Every on-path AS accepts conforming traffic.
  for (const PathHop& hop : path.hops()) {
    EXPECT_EQ(manager.police(id.value(), hop.isd_as, sim_.now(), 100),
              PoliceResult::kAllow)
        << hop.isd_as.to_string();
  }
  // Off-path ASes reject it.
  for (const IsdAsn ia : topo.all_ases()) {
    if (path.contains_as(ia)) continue;
    EXPECT_EQ(manager.police(id.value(), ia, sim_.now(), 100), PoliceResult::kWrongAs);
    break;
  }
  // A reservation beyond any link's budget is refused with an explanation.
  const auto huge = manager.reserve(path, 1e18, sim_.now());
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.error().find("admission denied"), std::string::npos);
}

TEST_P(RandomTopology, ReservedProbeTraversesRandomWorld) {
  build();
  Topology& topo = *world_.topo;
  const HostId src_host = world_.hosts.front();
  const HostId dst_host = world_.hosts.back();
  const auto paths = topo.daemon_for(src_host).query_now(topo.as_of(dst_host));
  ASSERT_FALSE(paths.empty());
  const Path* lossless = nullptr;
  for (const Path& p : paths) {
    if (p.meta().loss_rate == 0.0) {
      lossless = &p;
      break;
    }
  }
  if (lossless == nullptr) return;  // all candidate paths lossy in this world

  const auto id = topo.reservations().reserve(*lossless, 1e6, sim_.now(), seconds(60));
  ASSERT_TRUE(id.ok()) << id.error();
  std::string got;
  auto server = topo.scion_stack(dst_host).bind(
      8800, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView payload) {
        got = to_string_view_copy(payload.span());
      });
  auto client = topo.scion_stack(src_host).bind(0, nullptr);
  client->send_to(ScionEndpoint{topo.scion_addr(dst_host), 8800}, lossless->dataplane(),
                  from_string("reserved"), id.value());
  sim_.run();
  EXPECT_EQ(got, "reserved");
}

TEST_P(RandomTopology, LegacyAndScionBothReachable) {
  build();
  Topology& topo = *world_.topo;
  const HostId a = world_.hosts.front();
  const HostId b = world_.hosts.back();
  // Legacy UDP ping.
  bool legacy_ok = false;
  auto server = topo.host(b).udp_bind(5000, [&](const net::Endpoint&, net::PacketView) {
    legacy_ok = true;
  });
  auto client = topo.host(a).udp_bind(0, nullptr);
  client->send_to(net::Endpoint{topo.ip(b), 5000}, from_string("x"));
  // Allow a long window: random topologies may have lossy links; retry a few
  // times for robustness.
  for (int attempt = 0; attempt < 5 && !legacy_ok; ++attempt) {
    sim_.run();
    if (!legacy_ok) {
      client->send_to(net::Endpoint{topo.ip(b), 5000}, from_string("x"));
    }
  }
  sim_.run();
  EXPECT_TRUE(legacy_ok);
}

// --- AIMD concurrency-controller invariants under randomized latency ------

class AimdRandomTrace : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, AimdRandomTrace, ::testing::Range<std::uint64_t>(1, 13));

TEST_P(AimdRandomTrace, LimitStaysWithinBoundsAndRecoversAfterPressure) {
  obs::MetricsRegistry metrics;
  proxy::AimdConfig config;
  config.min_limit = 2;
  config.max_limit = 24;
  config.latency_target = milliseconds(500);
  proxy::AimdController controller("p", config, metrics);
  Rng rng(GetParam());

  // Phase 1: a randomized mix of fast/slow/failed completions across two
  // origins. Whatever the trace, the limit must stay inside [min, max].
  for (int i = 0; i < 500; ++i) {
    const std::string key = rng.next_double() < 0.5 ? "a" : "b";
    const double roll = rng.next_double();
    const bool ok = roll > 0.1;
    const Duration latency =
        roll < 0.45
            ? milliseconds(600 + static_cast<std::int64_t>(rng.next_double() * 4400.0))
            : milliseconds(1 + static_cast<std::int64_t>(rng.next_double() * 449.0));
    controller.record(key, latency, ok);
    for (const char* origin : {"a", "b"}) {
      const std::size_t limit = controller.limit(origin);
      ASSERT_GE(limit, config.min_limit) << "seed " << GetParam() << " step " << i;
      ASSERT_LE(limit, config.max_limit) << "seed " << GetParam() << " step " << i;
    }
  }

  // Phase 2: latency normalizes. Additive increase at 0.1/completion must
  // reopen the window all the way to max within (24-2)/0.1 = 220 samples.
  for (int i = 0; i < 300; ++i) {
    controller.record("a", milliseconds(20), /*ok=*/true);
  }
  EXPECT_EQ(controller.limit("a"), config.max_limit);
  // Origin b saw no recovery traffic: its window is untouched by a's.
  EXPECT_GE(controller.limit("b"), config.min_limit);
  EXPECT_GT(metrics.counter("overload.p.widened").value(), 0u);
}

}  // namespace
}  // namespace pan::scion
