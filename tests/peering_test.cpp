// Tests for peering links: beacon peer entries, peering path construction,
// data-plane forwarding across the peering crossing, and policy interaction.
#include <gtest/gtest.h>

#include <unordered_set>

#include "ppl/parser.hpp"
#include "scion/topology.hpp"

namespace pan::scion {
namespace {

/// Two ISDs whose leaves peer directly:
///
///   ISD1: c1 -- a (child)        ISD2: c2 -- d (child)
///   core: c1 -- c2 (60 ms)       peering: a -- d (5 ms)
///
/// The core route a->c1->c2->d costs 2+60+2 ms; the peering shortcut a->d
/// costs 5 ms.
struct PeeringFixture {
  sim::Simulator sim;
  std::unique_ptr<Topology> topo;
  HostId host_a;
  HostId host_d;

  explicit PeeringFixture(bool with_peering = true, bool sign = false) {
    TopologyConfig config;
    config.seed = 3;
    config.sign_beacons = sign;
    config.verify_beacons = sign;
    topo = std::make_unique<Topology>(sim, config);
    const auto add = [&](const char* name, Isd isd, Asn asn, bool core) {
      AsSpec spec;
      spec.name = name;
      spec.ia = IsdAsn{isd, asn};
      spec.core = core;
      spec.meta.country = isd == 1 ? "CH" : "US";
      topo->add_as(spec);
    };
    add("c1", 1, 0x110, true);
    add("a", 1, 0x111, false);
    add("c2", 2, 0x210, true);
    add("d", 2, 0x211, false);
    const auto link = [&](const char* x, const char* y, LinkType type, std::int64_t ms) {
      AsLinkSpec spec;
      spec.a = x;
      spec.b = y;
      spec.type = type;
      spec.params.latency = milliseconds(ms);
      spec.co2_g_per_gb = 7;
      spec.cost_per_gb = 3;
      topo->add_link(spec);
    };
    link("c1", "c2", LinkType::kCore, 60);
    link("c1", "a", LinkType::kParentChild, 2);
    link("c2", "d", LinkType::kParentChild, 2);
    if (with_peering) link("a", "d", LinkType::kPeering, 5);

    host_a = topo->add_host("a", "host-a");
    host_d = topo->add_host("d", "host-d");
    topo->finalize();
  }

  [[nodiscard]] IsdAsn ia(const char* name) const { return topo->as_by_name(name); }
};

TEST(PeeringTest, BeaconsCarryPeerEntries) {
  PeeringFixture fx;
  const auto& segs = fx.topo->path_infra().down_segments(fx.ia("a"));
  ASSERT_FALSE(segs.empty());
  bool found = false;
  for (const PathSegment& seg : segs) {
    for (const AsEntry& entry : seg.entries) {
      if (entry.hop.isd_as != fx.ia("a")) continue;
      for (const PeerEntry& peer : entry.peers) {
        EXPECT_EQ(peer.peer_as, fx.ia("d"));
        EXPECT_NE(peer.peer_if, kNoIface);
        EXPECT_EQ(peer.peer_link.latency.nanos(), milliseconds(5).nanos());
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(PeeringTest, SignedSegmentsWithPeersVerify) {
  PeeringFixture fx(/*with_peering=*/true, /*sign=*/true);
  for (const PathSegment& seg : fx.topo->path_infra().down_segments(fx.ia("a"))) {
    EXPECT_TRUE(verify_segment(seg, fx.topo->trust_store()));
  }
  // Tampering with a peer entry breaks the chain.
  PathSegment seg = fx.topo->path_infra().down_segments(fx.ia("a")).front();
  for (AsEntry& entry : seg.entries) {
    if (!entry.peers.empty()) {
      entry.peers[0].peer_link.latency += milliseconds(1);
      EXPECT_FALSE(verify_segment(seg, fx.topo->trust_store()));
      return;
    }
  }
  FAIL() << "no peer entry found to tamper with";
}

TEST(PeeringTest, DaemonOffersPeeringShortcut) {
  PeeringFixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  ASSERT_FALSE(paths.empty());
  // The best path is the 5 ms direct peering (a > d, 1 link).
  const Path& best = paths.front();
  EXPECT_EQ(best.link_count(), 1u);
  EXPECT_EQ(best.meta().latency.nanos(), milliseconds(5).nanos());
  EXPECT_EQ(best.hops().front().isd_as, fx.ia("a"));
  EXPECT_EQ(best.hops().back().isd_as, fx.ia("d"));
  // The core route is still offered.
  bool has_core_route = false;
  for (const Path& p : paths) {
    if (p.contains_as(fx.ia("c1"))) has_core_route = true;
  }
  EXPECT_TRUE(has_core_route);
}

TEST(PeeringTest, WithoutPeeringLinkNoShortcut) {
  PeeringFixture fx(/*with_peering=*/false);
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().meta().latency.nanos(), milliseconds(64).nanos());
}

TEST(PeeringTest, PeeringPathForwardsEndToEnd) {
  PeeringFixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  const Path& best = paths.front();
  ASSERT_EQ(best.link_count(), 1u);

  std::string got;
  DataplanePath reply;
  auto server = fx.topo->scion_stack(fx.host_d).bind(
      7000, [&](const ScionEndpoint&, const DataplanePath& reply_path, net::PacketView payload) {
        got = to_string_view_copy(payload.span());
        reply = reply_path;
      });
  auto client = fx.topo->scion_stack(fx.host_a).bind(
      0, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView payload) {
        got += "|" + to_string_view_copy(payload.span());
      });
  client->send_to(ScionEndpoint{fx.topo->scion_addr(fx.host_d), 7000}, best.dataplane(),
                  from_string("over-peering"));
  fx.sim.run();
  ASSERT_EQ(got, "over-peering");
  // Round trip over the reply path (reversed peering path) too.
  server->send_to(ScionEndpoint{fx.topo->scion_addr(fx.host_a),
                                client->local_port()},
                  reply, from_string("pong"));
  fx.sim.run();
  EXPECT_EQ(got, "over-peering|pong");
  // Latency check: one way is 5 ms + access links.
  EXPECT_LT(fx.sim.now().nanos(), milliseconds(13).nanos());
}

TEST(PeeringTest, EveryOfferedPathForwards) {
  PeeringFixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  int received = 0;
  auto server = fx.topo->scion_stack(fx.host_d).bind(
      7000, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView) { ++received; });
  auto client = fx.topo->scion_stack(fx.host_a).bind(0, nullptr);
  for (const Path& path : paths) {
    client->send_to(ScionEndpoint{fx.topo->scion_addr(fx.host_d), 7000}, path.dataplane(),
                    from_string("x"));
  }
  fx.sim.run();
  EXPECT_EQ(received, static_cast<int>(paths.size()));
  for (const IsdAsn ia : fx.topo->all_ases()) {
    EXPECT_EQ(fx.topo->border_router_stats(ia).drop_mac, 0u);
    EXPECT_EQ(fx.topo->border_router_stats(ia).drop_malformed_path, 0u);
  }
}

TEST(PeeringTest, ForgedPeerHopRejected) {
  PeeringFixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  DataplanePath forged = paths.front().dataplane();
  ASSERT_EQ(forged.segments.size(), 2u);
  // Rewrite the peering interface without the AS key.
  forged.segments[0].hops.back().in_if ^= 0x5;
  int received = 0;
  auto server = fx.topo->scion_stack(fx.host_d).bind(
      7000, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView) { ++received; });
  auto client = fx.topo->scion_stack(fx.host_a).bind(0, nullptr);
  client->send_to(ScionEndpoint{fx.topo->scion_addr(fx.host_d), 7000}, forged,
                  from_string("evil"));
  fx.sim.run();
  EXPECT_EQ(received, 0);
}

TEST(PeeringTest, PolicyCanExcludePeeringPath) {
  PeeringFixture fx;
  auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  // Require traversing the core c1 (ASN 0x110 renders as decimal 272).
  const auto policy = ppl::parse_policy(
      "policy { sequence \"1-* 1-272 * 2-*\"; order latency asc; }");
  ASSERT_TRUE(policy.ok()) << policy.error();
  const auto filtered = policy.value().apply(paths);
  ASSERT_FALSE(filtered.empty());
  for (const auto& p : filtered) {
    EXPECT_TRUE(p.contains_as(fx.ia("c1")));
    EXPECT_GT(p.link_count(), 1u);
  }
}

TEST(PeeringTest, TopologyRejectsCorePeering) {
  sim::Simulator sim;
  Topology topo(sim);
  AsSpec core;
  core.name = "core";
  core.ia = IsdAsn{1, 1};
  core.core = true;
  topo.add_as(core);
  AsSpec leaf;
  leaf.name = "leaf";
  leaf.ia = IsdAsn{1, 2};
  topo.add_as(leaf);
  AsLinkSpec peering;
  peering.a = "core";
  peering.b = "leaf";
  peering.type = LinkType::kPeering;
  EXPECT_THROW(topo.add_link(peering), std::invalid_argument);
}

}  // namespace
}  // namespace pan::scion
