// Unit tests for SCION addressing: ISD-AS numbers and SCION host addresses.
#include <gtest/gtest.h>

#include "scion/addr.hpp"

namespace pan::scion {
namespace {

TEST(AsnTest, DecimalFormat) {
  EXPECT_EQ(format_asn(64512), "64512");
  EXPECT_EQ(parse_asn("64512").value(), 64512u);
}

TEST(AsnTest, HexGroupFormat) {
  const Asn asn = 0xff00'0000'0110ULL;
  EXPECT_EQ(format_asn(asn), "ff00:0:110");
  EXPECT_EQ(parse_asn("ff00:0:110").value(), asn);
}

TEST(AsnTest, RoundTripBoundary) {
  // Largest decimal-rendered ASN and smallest hex-rendered one.
  EXPECT_EQ(parse_asn(format_asn((1ULL << 32) - 1)).value(), (1ULL << 32) - 1);
  EXPECT_EQ(parse_asn(format_asn(1ULL << 32)).value(), 1ULL << 32);
}

TEST(AsnTest, ParseErrors) {
  EXPECT_FALSE(parse_asn("").ok());
  EXPECT_FALSE(parse_asn("1:2").ok());            // needs 3 groups
  EXPECT_FALSE(parse_asn("1:2:3:4").ok());        // too many groups
  EXPECT_FALSE(parse_asn("ffff0:0:0").ok());      // group > 16 bits
  EXPECT_FALSE(parse_asn("zz:0:0").ok());
  EXPECT_FALSE(parse_asn("4294967296").ok());     // decimal form too large
}

TEST(IsdAsnTest, FormatAndParse) {
  const IsdAsn ia{1, 0xff00'0000'0110ULL};
  EXPECT_EQ(ia.to_string(), "1-ff00:0:110");
  const auto parsed = IsdAsn::parse("1-ff00:0:110");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), ia);
}

TEST(IsdAsnTest, PackedRoundTrip) {
  const IsdAsn ia{65535, 0xffff'ffff'ffffULL};
  EXPECT_EQ(IsdAsn::from_packed(ia.packed()), ia);
  const IsdAsn zero{};
  EXPECT_TRUE(zero.is_unspecified());
  EXPECT_EQ(IsdAsn::from_packed(0), zero);
}

TEST(IsdAsnTest, ParseErrors) {
  EXPECT_FALSE(IsdAsn::parse("no-dash-here-?").ok());
  EXPECT_FALSE(IsdAsn::parse("1").ok());
  EXPECT_FALSE(IsdAsn::parse("99999-1").ok());  // ISD > 16 bits
  EXPECT_FALSE(IsdAsn::parse("x-1").ok());
}

TEST(IsdAsnTest, Ordering) {
  EXPECT_LT((IsdAsn{1, 5}), (IsdAsn{2, 1}));
  EXPECT_LT((IsdAsn{1, 5}), (IsdAsn{1, 6}));
}

TEST(ScionAddrTest, FormatAndParse) {
  const ScionAddr addr{IsdAsn{2, 0xff00'0000'0210ULL}, net::IpAddr{0x0a000001}};
  EXPECT_EQ(addr.to_string(), "2-ff00:0:210,10.0.0.1");
  const auto parsed = ScionAddr::parse("2-ff00:0:210,10.0.0.1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), addr);
}

TEST(ScionAddrTest, ParseErrors) {
  EXPECT_FALSE(ScionAddr::parse("2-ff00:0:210").ok());       // missing host
  EXPECT_FALSE(ScionAddr::parse("2-ff00:0:210,999.0.0.1").ok());
  EXPECT_FALSE(ScionAddr::parse(",10.0.0.1").ok());
}

TEST(ScionEndpointTest, Format) {
  const ScionEndpoint ep{ScionAddr{IsdAsn{1, 64512}, net::IpAddr{0x0a000001}}, 443};
  EXPECT_EQ(ep.to_string(), "[1-64512,10.0.0.1]:443");
}

TEST(ScionAddrTest, HashUsableInMaps) {
  std::unordered_map<IsdAsn, int> by_ia;
  by_ia[IsdAsn{1, 2}] = 7;
  EXPECT_EQ(by_ia.at((IsdAsn{1, 2})), 7);
  std::unordered_map<ScionAddr, int> by_addr;
  by_addr[ScionAddr{IsdAsn{1, 2}, net::IpAddr{3}}] = 9;
  EXPECT_EQ(by_addr.at((ScionAddr{IsdAsn{1, 2}, net::IpAddr{3}})), 9);
}

}  // namespace
}  // namespace pan::scion
