// Tests for the DNS substrate: zone store, resolver latency/caching, and the
// SCION TXT-record discovery convention.
#include <gtest/gtest.h>

#include "dns/dns.hpp"

namespace pan::dns {
namespace {

TEST(ZoneTest, LookupAndRemove) {
  Zone zone;
  zone.add_a("example.org", net::IpAddr{1});
  zone.add_txt("example.org", "v=spf1");
  const RecordSet* records = zone.lookup("example.org");
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->a.size(), 1u);
  EXPECT_EQ(records->txt.size(), 1u);
  EXPECT_EQ(zone.lookup("missing.org"), nullptr);
  zone.remove("example.org");
  EXPECT_EQ(zone.lookup("example.org"), nullptr);
}

TEST(ZoneTest, ScionTxtConvention) {
  Zone zone;
  const scion::ScionAddr addr{scion::IsdAsn{1, 0xff00'0000'0110ULL}, net::IpAddr{0x0a000001}};
  zone.add_scion_txt("pan.example", addr);
  const RecordSet* records = zone.lookup("pan.example");
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->txt.front(), "scion=1-ff00:0:110,10.0.0.1");
  const auto parsed = scion_addr_from_txt(*records);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, addr);
}

TEST(ScionTxtTest, IgnoresUnrelatedAndMalformed) {
  RecordSet records;
  records.txt = {"v=spf1 -all", "scion=notanaddress", "other=1"};
  EXPECT_FALSE(scion_addr_from_txt(records).has_value());
  records.txt.push_back("scion=2-64512,10.0.0.9");
  const auto parsed = scion_addr_from_txt(records);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ia.isd(), 2);
}

struct ResolverFixture {
  sim::Simulator sim;
  Zone zone;
  ResolverConfig config{.lookup_latency = milliseconds(5),
                        .cache_ttl = seconds(60),
                        .negative_ttl = seconds(10)};
  Resolver resolver{sim, zone, config};

  ResolverFixture() { zone.add_a("example.org", net::IpAddr{42}); }
};

TEST(ResolverTest, LookupCostsLatency) {
  ResolverFixture fx;
  bool done = false;
  fx.resolver.resolve("example.org", [&](Result<RecordSet> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().a.front().value(), 42u);
    EXPECT_EQ(fx.sim.now().nanos(), milliseconds(5).nanos());
    done = true;
  });
  fx.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(fx.resolver.cache_misses(), 1u);
}

TEST(ResolverTest, CacheHitIsImmediate) {
  ResolverFixture fx;
  fx.resolver.resolve("example.org", [](Result<RecordSet>) {});
  fx.sim.run();
  const TimePoint before = fx.sim.now();
  bool done = false;
  fx.resolver.resolve("example.org", [&](Result<RecordSet> r) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(fx.sim.now(), before);
    done = true;
  });
  EXPECT_TRUE(done);
  EXPECT_EQ(fx.resolver.cache_hits(), 1u);
}

TEST(ResolverTest, NxdomainIsErrorAndNegativelyCached) {
  ResolverFixture fx;
  bool done = false;
  fx.resolver.resolve("missing.org", [&](Result<RecordSet> r) {
    EXPECT_FALSE(r.ok());
    done = true;
  });
  fx.sim.run();
  EXPECT_TRUE(done);
  // Second query hits the negative cache (no extra miss).
  bool done2 = false;
  fx.resolver.resolve("missing.org", [&](Result<RecordSet> r) {
    EXPECT_FALSE(r.ok());
    done2 = true;
  });
  EXPECT_TRUE(done2);
  EXPECT_EQ(fx.resolver.cache_misses(), 1u);
  EXPECT_EQ(fx.resolver.cache_hits(), 1u);
}

TEST(ResolverTest, CacheExpires) {
  ResolverFixture fx;
  fx.resolver.resolve("example.org", [](Result<RecordSet>) {});
  fx.sim.run();
  fx.sim.run_until(fx.sim.now() + seconds(120));  // past the 60s TTL
  fx.resolver.resolve("example.org", [](Result<RecordSet>) {});
  fx.sim.run();
  EXPECT_EQ(fx.resolver.cache_misses(), 2u);
}

TEST(ResolverTest, FlushCacheForcesRefetch) {
  ResolverFixture fx;
  fx.resolver.resolve("example.org", [](Result<RecordSet>) {});
  fx.sim.run();
  fx.resolver.flush_cache();
  fx.resolver.resolve("example.org", [](Result<RecordSet>) {});
  fx.sim.run();
  EXPECT_EQ(fx.resolver.cache_misses(), 2u);
}

TEST(ResolverTest, ResolveNowBypassesLatency) {
  ResolverFixture fx;
  const auto r = fx.resolver.resolve_now("example.org");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().a.front().value(), 42u);
  EXPECT_FALSE(fx.resolver.resolve_now("missing.org").ok());
  EXPECT_EQ(fx.sim.now().nanos(), 0);
}

TEST(ResolverTest, RecordsAddedAfterNegativeCacheAppearAfterTtl) {
  ResolverFixture fx;
  fx.resolver.resolve("new.org", [](Result<RecordSet>) {});
  fx.sim.run();
  fx.zone.add_a("new.org", net::IpAddr{7});
  // Still negative within negative_ttl.
  bool stale_checked = false;
  fx.resolver.resolve("new.org", [&](Result<RecordSet> r) {
    EXPECT_FALSE(r.ok());
    stale_checked = true;
  });
  EXPECT_TRUE(stale_checked);
  fx.sim.run_until(fx.sim.now() + seconds(11));
  bool fresh = false;
  fx.resolver.resolve("new.org", [&](Result<RecordSet> r) {
    EXPECT_TRUE(r.ok());
    fresh = true;
  });
  fx.sim.run();
  EXPECT_TRUE(fresh);
}

}  // namespace
}  // namespace pan::dns
