// Tests for the observability subsystem: metrics registry instruments,
// histogram percentile estimation, JSON dumps, request traces, the trace
// collector + exporters, the flight recorder, and SLO burn-rate monitoring.
#include <gtest/gtest.h>

#include <algorithm>

#include "obs/collector.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace pan::obs {
namespace {

// ---------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  registry.counter("requests").inc();
  registry.counter("requests").inc(4);
  EXPECT_EQ(registry.counter_value("requests"), 5u);
  EXPECT_EQ(registry.counter_value("never-touched"), 0u);
  EXPECT_EQ(registry.find_counter("never-touched"), nullptr);

  registry.gauge("pool").set(3);
  registry.gauge("pool").add(-1);
  EXPECT_DOUBLE_EQ(registry.find_gauge("pool")->value(), 2.0);
}

TEST(MetricsRegistryTest, InstrumentReferencesAreStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("a");
  // Insert many more instruments; `a` must stay valid (node-stable map).
  for (int i = 0; i < 100; ++i) registry.counter("c" + std::to_string(i)).inc();
  a.inc(7);
  EXPECT_EQ(registry.counter_value("a"), 7u);
}

TEST(MetricsRegistryTest, JsonDumpIsDeterministicAndComplete) {
  MetricsRegistry registry;
  registry.counter("zeta").inc(2);
  registry.counter("alpha").inc();
  registry.gauge("g").set(1.5);
  registry.histogram("h").record(milliseconds(10));
  const std::string json = registry.to_json();
  EXPECT_EQ(json, registry.to_json());  // byte-identical on repeat
  // Name-ordered counters.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);  // overflow bucket bound
}

// --------------------------------------------------------------- histogram --

TEST(HistogramTest, CountsSumMinMax) {
  Histogram h;
  h.record(milliseconds(1));
  h.record(milliseconds(3));
  h.record(milliseconds(2));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, milliseconds(6));
  EXPECT_EQ(snap.min, milliseconds(1));
  EXPECT_EQ(snap.max, milliseconds(3));
  EXPECT_EQ(snap.mean(), milliseconds(2));
}

TEST(HistogramTest, PercentilesAreClampedToObservedRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(milliseconds(7));
  // All mass in one bucket: every percentile must resolve to the single
  // observed value, not the bucket's upper bound.
  EXPECT_EQ(h.percentile(50), milliseconds(7));
  EXPECT_EQ(h.percentile(99), milliseconds(7));
}

TEST(HistogramTest, PercentileOrderingOnSpread) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(milliseconds(i));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_LT(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
  // p50 of a uniform 1..100 ms spread should land broadly mid-range.
  EXPECT_GT(snap.p50, milliseconds(30));
  EXPECT_LT(snap.p50, milliseconds(70));
}

TEST(HistogramTest, OverflowBucketCatchesLargeValues) {
  Histogram h({milliseconds(1), milliseconds(10)});
  h.record(seconds(100));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_counts().back(), 1u);
  // The overflow percentile reports the observed max, not infinity.
  EXPECT_EQ(h.percentile(99), seconds(100));
}

// ---------------------------------------------------------- mergeability --

// Randomized latency-ish samples spanning the full bucket range: a mix of
// sub-millisecond, middle-decade, and tail values, plus overflow outliers.
std::vector<Duration> random_samples(Rng& rng, std::size_t n) {
  std::vector<Duration> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.next_below(4)) {
      case 0: out.push_back(microseconds(rng.next_in(1, 999))); break;
      case 1: out.push_back(milliseconds(rng.next_in(1, 999))); break;
      case 2: out.push_back(milliseconds(rng.next_in(1000, 60'000))); break;
      default: out.push_back(seconds(rng.next_in(61, 300))); break;  // overflow
    }
  }
  return out;
}

void expect_same_state(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.snapshot().min, b.snapshot().min);
  EXPECT_EQ(a.snapshot().max, b.snapshot().max);
}

TEST(HistogramMergeTest, MergeEqualsPooledSamplesExactly) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<Duration> xs = random_samples(rng, 1 + rng.next_below(200));
    const std::vector<Duration> ys = random_samples(rng, 1 + rng.next_below(200));
    Histogram a;
    Histogram b;
    Histogram pooled;
    for (const Duration d : xs) {
      a.record(d);
      pooled.record(d);
    }
    for (const Duration d : ys) {
      b.record(d);
      pooled.record(d);
    }
    ASSERT_TRUE(a.merge(b));
    expect_same_state(a, pooled);
    // Exact bucket equality implies identical percentile estimates.
    EXPECT_EQ(a.percentile(50), pooled.percentile(50));
    EXPECT_EQ(a.percentile(99), pooled.percentile(99));
    EXPECT_EQ(a.percentile(99.9), pooled.percentile(99.9));
  }
}

TEST(HistogramMergeTest, MergeIsCommutative) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 10; ++trial) {
    Histogram a;
    Histogram b;
    for (const Duration d : random_samples(rng, 100)) a.record(d);
    for (const Duration d : random_samples(rng, 100)) b.record(d);
    Histogram ab = a;
    Histogram ba = b;
    ASSERT_TRUE(ab.merge(b));
    ASSERT_TRUE(ba.merge(a));
    expect_same_state(ab, ba);
  }
}

TEST(HistogramMergeTest, MergeIsAssociative) {
  Rng rng(0xcafe);
  for (int trial = 0; trial < 10; ++trial) {
    Histogram a;
    Histogram b;
    Histogram c;
    for (const Duration d : random_samples(rng, 80)) a.record(d);
    for (const Duration d : random_samples(rng, 80)) b.record(d);
    for (const Duration d : random_samples(rng, 80)) c.record(d);
    // (a + b) + c
    Histogram left = a;
    ASSERT_TRUE(left.merge(b));
    ASSERT_TRUE(left.merge(c));
    // a + (b + c)
    Histogram bc = b;
    ASSERT_TRUE(bc.merge(c));
    Histogram right = a;
    ASSERT_TRUE(right.merge(bc));
    expect_same_state(left, right);
  }
}

TEST(HistogramMergeTest, MergedPercentileWithinOneBucketOfGroundTruth) {
  // The cross-check the fleet plane relies on: percentiles of the merged
  // histogram vs exact order-statistic percentiles of the pooled samples
  // differ by at most the width of the containing bucket.
  Rng rng(0x5eed);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Duration> pooled_samples;
    Histogram merged;
    for (int shard = 0; shard < 4; ++shard) {
      Histogram h;
      for (const Duration d : random_samples(rng, 250)) {
        h.record(d);
        pooled_samples.push_back(d);
      }
      ASSERT_TRUE(merged.merge(h));
    }
    std::sort(pooled_samples.begin(), pooled_samples.end());
    for (const double pct : {50.0, 95.0, 99.0, 99.9}) {
      const std::size_t rank = std::min(
          pooled_samples.size() - 1,
          static_cast<std::size_t>(pct / 100.0 * static_cast<double>(pooled_samples.size())));
      const Duration truth = pooled_samples[rank];
      const Duration estimate = merged.percentile(pct);
      // Containing-bucket width: the gap between the truth's surrounding
      // bounds (overflow values are clamped to the observed max — exact).
      const auto& bounds = merged.bounds();
      Duration lo = Duration::zero();
      Duration width = Duration::max();
      for (const Duration bound : bounds) {
        if (truth <= bound) {
          width = bound - lo;
          break;
        }
        lo = bound;
      }
      if (width == Duration::max()) {
        // Overflow bucket: percentile clamps to the observed max.
        EXPECT_LE(estimate, merged.snapshot().max);
        continue;
      }
      const Duration err = estimate > truth ? estimate - truth : truth - estimate;
      EXPECT_LE(err, width) << "pct=" << pct << " truth=" << truth.millis()
                            << "ms est=" << estimate.millis() << "ms";
    }
  }
}

TEST(HistogramMergeTest, LayoutMismatchIsRejectedUntouched) {
  Histogram a;  // default layout
  Histogram b({milliseconds(1), milliseconds(10)});
  a.record(milliseconds(5));
  b.record(milliseconds(5));
  const auto before = a.bucket_counts();
  EXPECT_FALSE(a.merge(b));
  EXPECT_EQ(a.bucket_counts(), before);
  EXPECT_EQ(a.count(), 1u);
}

// --------------------------------------------------------------- exemplars --

TEST(HistogramExemplarTest, LargestTaggedValuesWinBoundedSlots) {
  Histogram h;
  // More tagged records than slots; only the largest four must survive.
  for (int i = 1; i <= 10; ++i) {
    h.record(milliseconds(i * 10), static_cast<std::uint64_t>(i), TimePoint{} + seconds(i));
  }
  const std::vector<Exemplar> ex = h.exemplars();
  ASSERT_EQ(ex.size(), Histogram::kExemplarSlots);
  EXPECT_EQ(ex.front().value, milliseconds(100));
  EXPECT_EQ(ex.front().trace_id, 10u);
  // Largest-first ordering, and the smallest six were displaced.
  for (std::size_t i = 1; i < ex.size(); ++i) EXPECT_LE(ex[i].value, ex[i - 1].value);
  EXPECT_EQ(ex.back().value, milliseconds(70));
}

TEST(HistogramExemplarTest, UntaggedRecordsClaimNoSlot) {
  Histogram h;
  h.record(seconds(9));                                // plain record
  h.record(seconds(8), /*trace_id=*/0, TimePoint{});   // zero id = untagged
  EXPECT_TRUE(h.exemplars().empty());
  h.record(milliseconds(1), 42, TimePoint{});
  ASSERT_EQ(h.exemplars().size(), 1u);
  EXPECT_EQ(h.exemplars()[0].trace_id, 42u);
}

TEST(HistogramExemplarTest, MergePoolsExemplarsKeepingLargest) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 4; ++i) a.record(milliseconds(i), static_cast<std::uint64_t>(i), TimePoint{});
  for (int i = 5; i <= 8; ++i) b.record(milliseconds(i), static_cast<std::uint64_t>(i), TimePoint{});
  ASSERT_TRUE(a.merge(b));
  const std::vector<Exemplar> ex = a.exemplars();
  ASSERT_EQ(ex.size(), Histogram::kExemplarSlots);
  // b's values (5..8 ms) displace all of a's (1..4 ms).
  EXPECT_EQ(ex.front().trace_id, 8u);
  EXPECT_EQ(ex.back().trace_id, 5u);
}

TEST(HistogramExemplarTest, ExemplarsAppearInJsonDump) {
  MetricsRegistry registry;
  registry.histogram("h").record(milliseconds(250), 0xabc, TimePoint{} + seconds(1));
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"2748\""), std::string::npos);  // 0xabc decimal
}

// ------------------------------------------------------------ prom / prefix --

TEST(PromExpositionTest, NamesAreSanitizedIntoPromGrammar) {
  EXPECT_EQ(prom_name("proxy.request_total"), "pan_proxy_request_total");
  EXPECT_EQ(prom_name("router.1-ff00:0:110.forward_latency"),
            "pan_router_1_ff00:0:110_forward_latency");
  EXPECT_EQ(prom_name("fleet.probes"), "pan_fleet_probes");
  // Embedded label suffix is split off the name.
  EXPECT_EQ(prom_name("req{origin=far}"), "pan_req");
  const auto labels = prom_labels_of("req{origin=far,tier=1}");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].first, "origin");
  EXPECT_EQ(labels[0].second, "far");
  EXPECT_EQ(labels[1].second, "1");
}

TEST(PromExpositionTest, ExposesCountersGaugesAndCumulativeBuckets) {
  MetricsRegistry registry;
  registry.counter("proxy.requests").inc(3);
  registry.gauge("pool.size").set(2.5);
  Histogram& h = registry.histogram("proxy.request_total");
  h.record(milliseconds(15));
  h.record(milliseconds(25));
  const std::string prom = registry.to_prom();
  EXPECT_NE(prom.find("# TYPE pan_proxy_requests counter"), std::string::npos);
  EXPECT_NE(prom.find("pan_proxy_requests 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pan_pool_size gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE pan_proxy_request_total histogram"), std::string::npos);
  EXPECT_NE(prom.find("pan_proxy_request_total_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("pan_proxy_request_total_count 2"), std::string::npos);
  // Buckets are cumulative: the +Inf bucket equals the total count, and
  // every le value parses as seconds.
  EXPECT_NE(prom.find("le=\"0.02\""), std::string::npos);  // 20 ms bound in s
}

TEST(PromExpositionTest, BaseLabelsAndExemplarAnnotations) {
  MetricsRegistry registry;
  registry.counter("c").inc();
  registry.histogram("h").record(milliseconds(42), 0x77, TimePoint{} + seconds(2));
  const std::string prom = registry.to_prom({}, {{"instance", "rep-0"}});
  EXPECT_NE(prom.find("pan_c{instance=\"rep-0\"} 1"), std::string::npos);
  // OpenMetrics exemplar on the bucket containing 42 ms.
  EXPECT_NE(prom.find("# {trace_id=\"119\"} 0.042"), std::string::npos);
}

TEST(PromExpositionTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("c").inc();
  const std::string prom = registry.to_prom({}, {{"instance", "a\"b\\c\nd"}});
  EXPECT_NE(prom.find("instance=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(MetricsRegistryTest, PrefixFilterSelectsSubtrees) {
  MetricsRegistry registry;
  registry.counter("proxy.requests").inc();
  registry.counter("fleet.probes").inc();
  registry.histogram("proxy.phase.fetch").record(milliseconds(1));
  const std::string json = registry.to_json("proxy.");
  EXPECT_NE(json.find("proxy.requests"), std::string::npos);
  EXPECT_NE(json.find("proxy.phase.fetch"), std::string::npos);
  EXPECT_EQ(json.find("fleet.probes"), std::string::npos);
  const std::string prom = registry.to_prom("fleet.");
  EXPECT_NE(prom.find("pan_fleet_probes"), std::string::npos);
  EXPECT_EQ(prom.find("pan_proxy_requests"), std::string::npos);
}

// ------------------------------------------------------------------- trace --

struct TraceFixture {
  sim::Simulator sim;

  void advance(Duration d) {
    sim.schedule_after(d, [] {});
    sim.run();
  }
};

TEST(RequestTraceTest, SpansMeasureSimTime) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("fetch");
  fx.advance(milliseconds(12));
  trace.end("fetch");
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "fetch");
  EXPECT_EQ(trace.spans()[0].duration, milliseconds(12));
  EXPECT_EQ(trace.total("fetch"), milliseconds(12));
}

TEST(RequestTraceTest, RepeatedPhasesAccumulateAndEndIsNoOpWhenClosed) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("ipc");
  fx.advance(milliseconds(1));
  trace.end("ipc");
  trace.end("ipc");  // no open ipc span: harmless
  trace.begin("ipc");
  fx.advance(milliseconds(2));
  trace.end("ipc");
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.total("ipc"), milliseconds(3));
}

TEST(RequestTraceTest, EndAllTruncatesOpenSpans) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("detect");
  trace.begin("fetch");
  fx.advance(milliseconds(5));
  EXPECT_TRUE(trace.open("fetch"));
  trace.end_all();
  EXPECT_FALSE(trace.open("fetch"));
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.total("detect"), milliseconds(5));
  EXPECT_EQ(trace.total("fetch"), milliseconds(5));
}

TEST(RequestTraceTest, CancelDiscardsOpenSpanWithoutRecording) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("handshake");
  fx.advance(milliseconds(7));
  // A failed dial's handshake must not pollute the phase histogram: cancel
  // drops it entirely rather than closing it.
  trace.cancel("handshake");
  EXPECT_FALSE(trace.open("handshake"));
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.total("handshake"), Duration::zero());
  // Idempotent like end(): cancelling again (or with nothing open) is a no-op.
  trace.cancel("handshake");
  EXPECT_TRUE(trace.spans().empty());
}

TEST(RequestTraceTest, CancelOnlyDropsTheMostRecentOpenSpan) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("fetch");  // attempt 1 (completed below)
  fx.advance(milliseconds(3));
  trace.end("fetch");
  trace.begin("fetch");  // attempt 2 (abandoned)
  fx.advance(milliseconds(9));
  trace.cancel("fetch");
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.total("fetch"), milliseconds(3));
}

TEST(RequestTraceTest, FlushRecordsPerPhaseHistograms) {
  TraceFixture fx;
  MetricsRegistry registry;
  RequestTrace trace(fx.sim, 1);
  trace.begin("fetch");
  fx.advance(milliseconds(20));
  trace.end("fetch");
  trace.flush_to(registry, "proxy.phase.");
  const Histogram* hist = registry.find_histogram("proxy.phase.fetch");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);
  EXPECT_EQ(hist->snapshot().max, milliseconds(20));
}

// ------------------------------------------------- percentile edge cases --

TEST(HistogramTest, PercentileWithZeroOneTwoSamples) {
  Histogram empty;
  EXPECT_EQ(empty.percentile(0), Duration::zero());
  EXPECT_EQ(empty.percentile(50), Duration::zero());
  EXPECT_EQ(empty.percentile(100), Duration::zero());

  Histogram one;
  one.record(milliseconds(42));
  // A single sample is every percentile.
  EXPECT_EQ(one.percentile(0), milliseconds(42));
  EXPECT_EQ(one.percentile(50), milliseconds(42));
  EXPECT_EQ(one.percentile(100), milliseconds(42));

  Histogram two;
  two.record(milliseconds(10));
  two.record(milliseconds(30));
  // With two samples every percentile stays inside the observed range and
  // the extremes are exact.
  EXPECT_EQ(two.percentile(0), milliseconds(10));
  EXPECT_EQ(two.percentile(100), milliseconds(30));
  EXPECT_GE(two.percentile(50), milliseconds(10));
  EXPECT_LE(two.percentile(50), milliseconds(30));
  // Out-of-range pct is clamped, not UB.
  EXPECT_EQ(two.percentile(-5), two.percentile(0));
  EXPECT_EQ(two.percentile(250), two.percentile(100));
}

TEST(StatsPercentileTest, ZeroOneTwoSamplesAndOutOfRangePct) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0}, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0}, 100), 3.0);
  // Out-of-range pct clamps to the extremes instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0}, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0}, 400), 3.0);
}

// ------------------------------------------------------------ json escape --

TEST(JsonEscapeTest, HostileStringsAreEscaped) {
  EXPECT_EQ(strings::json_escape("plain"), "plain");
  EXPECT_EQ(strings::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(strings::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(strings::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(strings::json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(strings::json_quote("x\"y"), "\"x\\\"y\"");
}

TEST(JsonEscapeTest, RegistryDumpSurvivesHostileMetricNames) {
  MetricsRegistry registry;
  registry.counter("evil\"name\\with\ncontrol").inc();
  registry.gauge("g\"2").set(1);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("evil\\\"name\\\\with\\ncontrol"), std::string::npos);
  // No raw quote from the name may terminate a JSON string early.
  EXPECT_EQ(json.find("evil\"name"), std::string::npos);
}

// ----------------------------------------------------------- trace context --

TEST(TraceContextTest, HeaderRoundTrip) {
  TraceContext ctx;
  ctx.trace_id = 0x2a;
  ctx.parent_span_id = RequestTrace::kHopClient | 3;
  ctx.sampled = true;
  const std::string header = ctx.to_header();
  EXPECT_EQ(header, "000000000000002a-0100000000000003-01");
  const auto parsed = parse_trace_context(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, ctx.trace_id);
  EXPECT_EQ(parsed->parent_span_id, ctx.parent_span_id);
  EXPECT_TRUE(parsed->sampled);

  ctx.sampled = false;
  const auto unsampled = parse_trace_context(ctx.to_header());
  ASSERT_TRUE(unsampled.has_value());
  EXPECT_FALSE(unsampled->sampled);
}

TEST(TraceContextTest, MalformedHeadersAreRejected) {
  EXPECT_FALSE(parse_trace_context("").has_value());
  EXPECT_FALSE(parse_trace_context("not-a-trace").has_value());
  EXPECT_FALSE(parse_trace_context("000000000000002a-0100000000000003").has_value());
  EXPECT_FALSE(parse_trace_context("000000000000002a-01000000000000zz-01").has_value());
  EXPECT_FALSE(parse_trace_context("2a-3-1").has_value());  // wrong field widths
  // Zero trace id is not a trace.
  EXPECT_FALSE(
      parse_trace_context("0000000000000000-0100000000000003-01").has_value());
}

TEST(RequestTraceTest, OutcomeFirstWriteWins) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  EXPECT_EQ(trace.outcome(), "");
  trace.set_outcome("shed");
  trace.set_outcome("ok");  // later generic finalization must not overwrite
  EXPECT_EQ(trace.outcome(), "shed");
}

TEST(RequestTraceTest, AttributesLastWriteWins) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.set_attribute("path", "fp-1");
  trace.set_attribute("path", "fp-2");
  EXPECT_EQ(trace.attribute("path"), "fp-2");
  EXPECT_EQ(trace.attributes().size(), 1u);
  EXPECT_EQ(trace.attribute("missing"), "");
}

TEST(RequestTraceTest, AdoptAndPropagateContext) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 7);
  TraceContext upstream;
  upstream.trace_id = 99;
  upstream.parent_span_id = 0x1234;
  upstream.sampled = false;
  trace.adopt(upstream);
  EXPECT_EQ(trace.id(), 99u);
  EXPECT_EQ(trace.parent_span(), 0x1234u);
  EXPECT_FALSE(trace.sampled());

  trace.begin("fetch");
  const std::uint64_t fetch_span = trace.open_span_id("fetch");
  EXPECT_NE(fetch_span, 0u);
  const TraceContext down = trace.context(fetch_span);
  EXPECT_EQ(down.trace_id, 99u);
  EXPECT_EQ(down.parent_span_id, fetch_span);
  EXPECT_FALSE(down.sampled);
  // context(0) parents under the implicit root span.
  EXPECT_EQ(trace.context(0).parent_span_id, trace.root_span_id());
}

TEST(RequestTraceTest, ReportToEmitsRootAndPhaseSpans) {
  TraceFixture fx;
  TraceCollector collector;
  RequestTrace trace(fx.sim, 5);
  trace.set_attribute("path", "fp-a");
  trace.begin("detect");
  fx.advance(milliseconds(2));
  trace.end("detect");
  trace.begin("fetch");
  fx.advance(milliseconds(10));
  trace.end("fetch");
  trace.set_outcome("ok");
  trace.report_to(collector, "skip-proxy", fx.sim.now());
  collector.finalize(5, trace.outcome(), /*keep=*/true);

  const TraceRecord* record = collector.find(5);
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(record->spans.size(), 3u);  // root + detect + fetch
  const CollectedSpan& root = record->spans.front();
  EXPECT_EQ(root.name, "request");
  EXPECT_EQ(root.span_id, trace.root_span_id());
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.duration, milliseconds(12));
  // Every phase span parents under the root; ids are hop-1 prefixed.
  for (std::size_t i = 1; i < record->spans.size(); ++i) {
    EXPECT_EQ(record->spans[i].parent_id, root.span_id);
    EXPECT_EQ(record->spans[i].span_id >> 56, 1u);
  }
  EXPECT_EQ(record->outcome, "ok");
}

// --------------------------------------------------------- flight recorder --

TEST(FlightRecorderTest, RingWrapsKeepingNewest) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record(TimePoint{} + milliseconds(i), "test", "evt",
                    "n=" + std::to_string(i));
  }
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 10u);
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest, and only the newest four survive.
  EXPECT_EQ(events.front().detail, "n=6");
  EXPECT_EQ(events.back().detail, "n=9");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(FlightRecorderTest, LastNAndJsonSnapshot) {
  FlightRecorder recorder(8);
  recorder.record(TimePoint{} + milliseconds(1), "breaker", "trip", "origin \"x\"");
  recorder.record(TimePoint{} + milliseconds(2), "selector", "quarantine", "fp");
  const std::vector<FlightEvent> last = recorder.last(1);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].kind, "quarantine");
  const std::string json = recorder.snapshot_json();
  EXPECT_NE(json.find("\"breaker\""), std::string::npos);
  // Hostile detail content is escaped.
  EXPECT_NE(json.find("origin \\\"x\\\""), std::string::npos);
}

// -------------------------------------------------------------- collector --

TEST(TraceCollectorTest, HeadSamplingIsDeterministicPerClass) {
  CollectorConfig config;
  config.sample_document = 1;
  config.sample_subresource = 2;
  config.sample_probe = 0;
  TraceCollector collector(config);
  EXPECT_TRUE(collector.head_sample(0));
  EXPECT_TRUE(collector.head_sample(0));
  // 1-in-2: alternating keep/drop.
  EXPECT_TRUE(collector.head_sample(1));
  EXPECT_FALSE(collector.head_sample(1));
  EXPECT_TRUE(collector.head_sample(1));
  // Rate 0 keeps none.
  EXPECT_FALSE(collector.head_sample(2));
  EXPECT_FALSE(collector.head_sample(2));
}

TEST(TraceCollectorTest, FinalizeKeepAndDiscard) {
  TraceCollector collector;
  CollectedSpan span;
  span.trace_id = 1;
  span.span_id = RequestTrace::kHopClient | 1;
  span.name = "request";
  span.component = "skip-proxy";
  collector.record_span(span);
  collector.finalize(1, "ok", /*keep=*/true);

  span.trace_id = 2;
  collector.record_span(span);
  collector.finalize(2, "ok", /*keep=*/false);

  EXPECT_NE(collector.find(1), nullptr);
  EXPECT_EQ(collector.find(2), nullptr);
  EXPECT_EQ(collector.traces().size(), 1u);
}

TEST(TraceCollectorTest, RetentionRingEvictsOldest) {
  CollectorConfig config;
  config.max_traces = 2;
  TraceCollector collector(config);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    CollectedSpan span;
    span.trace_id = id;
    span.span_id = RequestTrace::kHopClient | 1;
    span.name = "request";
    span.component = "skip-proxy";
    collector.record_span(span);
    collector.finalize(id, "ok", /*keep=*/true);
  }
  EXPECT_EQ(collector.traces().size(), 2u);
  EXPECT_EQ(collector.find(1), nullptr);  // oldest evicted
  EXPECT_NE(collector.find(3), nullptr);
}

TEST(TraceCollectorTest, ChromeExportShapesAndJsonl) {
  TraceCollector collector;
  CollectedSpan root;
  root.trace_id = 9;
  root.span_id = RequestTrace::kHopClient | 1;
  root.name = "request";
  root.component = "skip-proxy";
  root.start = TimePoint{} + milliseconds(1);
  root.duration = milliseconds(20);
  root.attrs.emplace_back("path", "fp \"quoted\"");
  collector.record_span(root);

  CollectedSpan relay;
  relay.trace_id = 9;
  relay.span_id = (2ULL << 56) | 1;
  relay.parent_id = root.span_id;
  relay.name = "relay";
  relay.component = "revproxy";
  relay.start = TimePoint{} + milliseconds(5);
  relay.duration = milliseconds(10);
  collector.record_span(relay);
  collector.finalize(9, "ok", /*keep=*/true);

  const std::string chrome = collector.chrome_trace_json();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos);  // thread names
  EXPECT_NE(chrome.find("fp \\\"quoted\\\""), std::string::npos);
  // Two components map to two distinct tids.
  EXPECT_NE(chrome.find("\"skip-proxy\""), std::string::npos);
  EXPECT_NE(chrome.find("\"revproxy\""), std::string::npos);

  const std::string jsonl = collector.spans_jsonl();
  // One line per span.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"relay\""), std::string::npos);
}

// -------------------------------------------------------------------- slo --

struct SloFixture {
  MetricsRegistry registry;
  SloMonitor monitor{registry};

  SloFixture() {
    SloObjective objective;
    objective.name = "availability";
    objective.bad_counters = {"proxy.errors"};
    objective.total_counters = {"proxy.requests"};
    objective.target = 0.9;  // 10% error budget
    objective.short_window = seconds(5);
    objective.long_window = seconds(30);
    objective.burn_threshold = 2.0;  // fires at >= 20% bad
    objective.min_events = 10;
    monitor.add(std::move(objective));
  }
};

TEST(SloMonitorTest, QuietAtBaselineFiresUnderBurnClearsAfterRecovery) {
  SloFixture fx;
  Counter& requests = fx.registry.counter("proxy.requests");
  Counter& errors = fx.registry.counter("proxy.errors");
  TimePoint now;

  // Baseline: healthy traffic, no alert.
  for (int tick = 0; tick < 10; ++tick) {
    now = now + seconds(1);
    requests.inc(20);
    fx.monitor.evaluate(now);
  }
  EXPECT_FALSE(fx.monitor.firing("availability"));
  EXPECT_FALSE(fx.monitor.any_firing());

  // Burn: half of all requests fail — well past the 2x threshold on both
  // windows once the long window fills with bad minutes.
  for (int tick = 0; tick < 40; ++tick) {
    now = now + seconds(1);
    requests.inc(20);
    errors.inc(10);
    fx.monitor.evaluate(now);
  }
  EXPECT_TRUE(fx.monitor.firing("availability"));
  EXPECT_EQ(fx.registry.counter_value("slo.availability.fired"), 1u);

  // Recovery: errors stop; the short window drains first and clears the
  // alert even while the long window still remembers the burn.
  for (int tick = 0; tick < 10; ++tick) {
    now = now + seconds(1);
    requests.inc(20);
    fx.monitor.evaluate(now);
  }
  EXPECT_FALSE(fx.monitor.firing("availability"));
  EXPECT_EQ(fx.registry.counter_value("slo.availability.cleared"), 1u);
  // Fire + clear leave flight-recorder breadcrumbs.
  bool saw_fire = false;
  bool saw_clear = false;
  for (const FlightEvent& event : fx.registry.events().snapshot()) {
    saw_fire = saw_fire || event.kind == "fire";
    saw_clear = saw_clear || event.kind == "clear";
  }
  EXPECT_TRUE(saw_fire);
  EXPECT_TRUE(saw_clear);
}

TEST(SloMonitorTest, MinEventsGuardSuppressesThinTraffic) {
  SloFixture fx;
  Counter& requests = fx.registry.counter("proxy.requests");
  Counter& errors = fx.registry.counter("proxy.errors");
  TimePoint now;
  // 100% errors, but fewer than min_events requests in the window: an alert
  // on 3 requests would be noise.
  for (int tick = 0; tick < 8; ++tick) {
    now = now + seconds(1);
    if (tick < 3) {
      requests.inc();
      errors.inc();
    }
    fx.monitor.evaluate(now);
  }
  EXPECT_FALSE(fx.monitor.firing("availability"));
}

TEST(SloMonitorTest, LatencyObjectiveCountsOverThresholdSamples) {
  MetricsRegistry registry;
  SloMonitor monitor(registry);
  SloObjective objective;
  objective.name = "plt-p95";
  objective.latency_histogram = "proxy.request_total";
  objective.latency_threshold = seconds(2);
  objective.target = 0.95;  // 5% budget
  objective.short_window = seconds(5);
  objective.long_window = seconds(30);
  objective.burn_threshold = 2.0;  // fires when > 10% of loads run over 2 s
  objective.min_events = 10;
  monitor.add(std::move(objective));

  Histogram& hist = registry.histogram("proxy.request_total");
  TimePoint now;
  for (int tick = 0; tick < 40; ++tick) {
    now = now + seconds(1);
    for (int i = 0; i < 4; ++i) hist.record(milliseconds(100));
    hist.record(seconds(5));  // 20% of loads blow the threshold
    monitor.evaluate(now);
  }
  EXPECT_TRUE(monitor.firing("plt-p95"));
  const std::string json = monitor.snapshot_json();
  EXPECT_NE(json.find("\"plt-p95\""), std::string::npos);
  EXPECT_NE(json.find("\"firing\":true"), std::string::npos);
}

}  // namespace
}  // namespace pan::obs
