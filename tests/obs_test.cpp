// Tests for the observability subsystem: metrics registry instruments,
// histogram percentile estimation, JSON dumps, and request traces.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pan::obs {
namespace {

// ---------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  registry.counter("requests").inc();
  registry.counter("requests").inc(4);
  EXPECT_EQ(registry.counter_value("requests"), 5u);
  EXPECT_EQ(registry.counter_value("never-touched"), 0u);
  EXPECT_EQ(registry.find_counter("never-touched"), nullptr);

  registry.gauge("pool").set(3);
  registry.gauge("pool").add(-1);
  EXPECT_DOUBLE_EQ(registry.find_gauge("pool")->value(), 2.0);
}

TEST(MetricsRegistryTest, InstrumentReferencesAreStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("a");
  // Insert many more instruments; `a` must stay valid (node-stable map).
  for (int i = 0; i < 100; ++i) registry.counter("c" + std::to_string(i)).inc();
  a.inc(7);
  EXPECT_EQ(registry.counter_value("a"), 7u);
}

TEST(MetricsRegistryTest, JsonDumpIsDeterministicAndComplete) {
  MetricsRegistry registry;
  registry.counter("zeta").inc(2);
  registry.counter("alpha").inc();
  registry.gauge("g").set(1.5);
  registry.histogram("h").record(milliseconds(10));
  const std::string json = registry.to_json();
  EXPECT_EQ(json, registry.to_json());  // byte-identical on repeat
  // Name-ordered counters.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);  // overflow bucket bound
}

// --------------------------------------------------------------- histogram --

TEST(HistogramTest, CountsSumMinMax) {
  Histogram h;
  h.record(milliseconds(1));
  h.record(milliseconds(3));
  h.record(milliseconds(2));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, milliseconds(6));
  EXPECT_EQ(snap.min, milliseconds(1));
  EXPECT_EQ(snap.max, milliseconds(3));
  EXPECT_EQ(snap.mean(), milliseconds(2));
}

TEST(HistogramTest, PercentilesAreClampedToObservedRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(milliseconds(7));
  // All mass in one bucket: every percentile must resolve to the single
  // observed value, not the bucket's upper bound.
  EXPECT_EQ(h.percentile(50), milliseconds(7));
  EXPECT_EQ(h.percentile(99), milliseconds(7));
}

TEST(HistogramTest, PercentileOrderingOnSpread) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(milliseconds(i));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_LT(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
  // p50 of a uniform 1..100 ms spread should land broadly mid-range.
  EXPECT_GT(snap.p50, milliseconds(30));
  EXPECT_LT(snap.p50, milliseconds(70));
}

TEST(HistogramTest, OverflowBucketCatchesLargeValues) {
  Histogram h({milliseconds(1), milliseconds(10)});
  h.record(seconds(100));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_counts().back(), 1u);
  // The overflow percentile reports the observed max, not infinity.
  EXPECT_EQ(h.percentile(99), seconds(100));
}

// ------------------------------------------------------------------- trace --

struct TraceFixture {
  sim::Simulator sim;

  void advance(Duration d) {
    sim.schedule_after(d, [] {});
    sim.run();
  }
};

TEST(RequestTraceTest, SpansMeasureSimTime) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("fetch");
  fx.advance(milliseconds(12));
  trace.end("fetch");
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "fetch");
  EXPECT_EQ(trace.spans()[0].duration, milliseconds(12));
  EXPECT_EQ(trace.total("fetch"), milliseconds(12));
}

TEST(RequestTraceTest, RepeatedPhasesAccumulateAndEndIsNoOpWhenClosed) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("ipc");
  fx.advance(milliseconds(1));
  trace.end("ipc");
  trace.end("ipc");  // no open ipc span: harmless
  trace.begin("ipc");
  fx.advance(milliseconds(2));
  trace.end("ipc");
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.total("ipc"), milliseconds(3));
}

TEST(RequestTraceTest, EndAllTruncatesOpenSpans) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("detect");
  trace.begin("fetch");
  fx.advance(milliseconds(5));
  EXPECT_TRUE(trace.open("fetch"));
  trace.end_all();
  EXPECT_FALSE(trace.open("fetch"));
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.total("detect"), milliseconds(5));
  EXPECT_EQ(trace.total("fetch"), milliseconds(5));
}

TEST(RequestTraceTest, CancelDiscardsOpenSpanWithoutRecording) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("handshake");
  fx.advance(milliseconds(7));
  // A failed dial's handshake must not pollute the phase histogram: cancel
  // drops it entirely rather than closing it.
  trace.cancel("handshake");
  EXPECT_FALSE(trace.open("handshake"));
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.total("handshake"), Duration::zero());
  // Idempotent like end(): cancelling again (or with nothing open) is a no-op.
  trace.cancel("handshake");
  EXPECT_TRUE(trace.spans().empty());
}

TEST(RequestTraceTest, CancelOnlyDropsTheMostRecentOpenSpan) {
  TraceFixture fx;
  RequestTrace trace(fx.sim, 1);
  trace.begin("fetch");  // attempt 1 (completed below)
  fx.advance(milliseconds(3));
  trace.end("fetch");
  trace.begin("fetch");  // attempt 2 (abandoned)
  fx.advance(milliseconds(9));
  trace.cancel("fetch");
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.total("fetch"), milliseconds(3));
}

TEST(RequestTraceTest, FlushRecordsPerPhaseHistograms) {
  TraceFixture fx;
  MetricsRegistry registry;
  RequestTrace trace(fx.sim, 1);
  trace.begin("fetch");
  fx.advance(milliseconds(20));
  trace.end("fetch");
  trace.flush_to(registry, "proxy.phase.");
  const Histogram* hist = registry.find_histogram("proxy.phase.fetch");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);
  EXPECT_EQ(hist->snapshot().max, milliseconds(20));
}

}  // namespace
}  // namespace pan::obs
