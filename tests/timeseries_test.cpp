// Tests for the time-series delta store: lazy interval ticking, windowed
// delta/rate queries, ring wraparound, retention clamping, per-prefix
// retention overrides, empty-delta ticks, and counter-reset handling (the
// replica-restart case the fleet plane depends on: rates never go negative).
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace pan::obs {
namespace {

struct Fixture {
  MetricsRegistry registry;
  TimeSeriesConfig config;
  TimePoint start;

  Fixture() {
    config.interval = milliseconds(100);
    config.retention_slots = 8;
  }

  [[nodiscard]] TimeSeriesStore make() { return {registry, config, start}; }
  [[nodiscard]] TimePoint at(std::int64_t ms) const { return start + milliseconds(ms); }
};

TEST(TimeSeriesTest, NoTickBeforeFirstIntervalBoundary) {
  Fixture fx;
  TimeSeriesStore store = fx.make();
  fx.registry.counter("c").inc(5);
  store.observe(fx.at(99));
  EXPECT_EQ(store.ticks(), 0u);
  EXPECT_FALSE(store.query("c", milliseconds(1000)).known);
}

TEST(TimeSeriesTest, DeltasAndRatesOverWindow) {
  Fixture fx;
  TimeSeriesStore store = fx.make();
  Counter& c = fx.registry.counter("c");
  // 3 events in tick 1, 7 in tick 2.
  c.inc(3);
  store.observe(fx.at(100));
  c.inc(7);
  store.observe(fx.at(200));
  const SeriesWindow one = store.query("c", milliseconds(100));
  EXPECT_TRUE(one.known);
  EXPECT_EQ(one.delta, 7u);
  EXPECT_DOUBLE_EQ(one.rate_per_s, 70.0);
  EXPECT_EQ(one.covered, milliseconds(100));
  const SeriesWindow two = store.query("c", milliseconds(200));
  EXPECT_EQ(two.delta, 10u);
  EXPECT_DOUBLE_EQ(two.rate_per_s, 50.0);
}

TEST(TimeSeriesTest, CatchUpAttributesDeltaToFirstSlotThenEmptyTicks) {
  Fixture fx;
  TimeSeriesStore store = fx.make();
  fx.registry.counter("c").inc(4);
  // One observe() five intervals late: the whole delta lands in the first
  // missed slot, the remaining four are genuine empty-delta ticks.
  store.observe(fx.at(500));
  EXPECT_EQ(store.ticks(), 5u);
  EXPECT_EQ(store.query("c", milliseconds(100)).delta, 0u);   // newest slot empty
  EXPECT_EQ(store.query("c", milliseconds(500)).delta, 4u);   // full window sees all
}

TEST(TimeSeriesTest, RingWraparoundKeepsNewestSlots) {
  Fixture fx;  // capacity 8
  TimeSeriesStore store = fx.make();
  Counter& c = fx.registry.counter("c");
  // 20 ticks of exactly 1 event each; only the last 8 survive.
  for (int tick = 1; tick <= 20; ++tick) {
    c.inc();
    store.observe(fx.at(tick * 100));
  }
  const SeriesWindow all = store.query("c", milliseconds(100'000));
  EXPECT_EQ(all.delta, 8u);
  EXPECT_EQ(all.covered, milliseconds(800));
  // A 3-slot window sums exactly the 3 newest.
  EXPECT_EQ(store.query("c", milliseconds(300)).delta, 3u);
}

TEST(TimeSeriesTest, WindowLargerThanRetentionIsClampedAndVisible) {
  Fixture fx;
  TimeSeriesStore store = fx.make();
  Counter& c = fx.registry.counter("c");
  for (int tick = 1; tick <= 3; ++tick) {
    c.inc(2);
    store.observe(fx.at(tick * 100));
  }
  const SeriesWindow w = store.query("c", seconds(60));
  EXPECT_TRUE(w.known);
  EXPECT_EQ(w.delta, 6u);
  // covered < window tells the caller the answer is clamped.
  EXPECT_EQ(w.covered, milliseconds(300));
  EXPECT_LT(w.covered, seconds(60));
  // Rate uses covered time, not the requested window.
  EXPECT_DOUBLE_EQ(w.rate_per_s, 20.0);
}

TEST(TimeSeriesTest, PartialWindowRoundsUpToWholeSlots) {
  Fixture fx;
  TimeSeriesStore store = fx.make();
  Counter& c = fx.registry.counter("c");
  c.inc(1);
  store.observe(fx.at(100));
  c.inc(10);
  store.observe(fx.at(200));
  // 150 ms covers one full slot and part of another: ceil to 2 slots.
  const SeriesWindow w = store.query("c", milliseconds(150));
  EXPECT_EQ(w.delta, 11u);
  EXPECT_EQ(w.covered, milliseconds(200));
}

TEST(TimeSeriesTest, SteadyOperationReportsZeroResets) {
  // Registry counters are monotonic, so the reset path is defensive: in
  // normal operation every window reports resets == 0. (The genuine
  // restart case — a replica re-created with a fresh registry — is covered
  // end-to-end by the fleet aggregator's generation-fold tests.)
  Fixture fx;
  TimeSeriesStore store = fx.make();
  Counter& c = fx.registry.counter("c");
  for (int tick = 1; tick <= 12; ++tick) {
    c.inc(static_cast<std::uint64_t>(tick));
    store.observe(fx.at(tick * 100));
  }
  const SeriesWindow w = store.query("c", seconds(60));
  EXPECT_EQ(w.resets, 0u);
  EXPECT_GT(w.delta, 0u);
}

TEST(TimeSeriesTest, HistogramCountsBecomeDotCountSeries) {
  Fixture fx;
  TimeSeriesStore store = fx.make();
  Histogram& h = fx.registry.histogram("lat");
  h.record(milliseconds(5));
  h.record(milliseconds(6));
  store.observe(fx.at(100));
  const SeriesWindow w = store.query("lat.count", milliseconds(100));
  EXPECT_TRUE(w.known);
  EXPECT_EQ(w.delta, 2u);
  EXPECT_FALSE(store.query("lat", milliseconds(100)).known);
}

TEST(TimeSeriesTest, RetentionOverridesUseLongestPrefix) {
  Fixture fx;
  fx.config.retention_overrides = {{"slo.", 32}, {"slo.burn.", 4}};
  TimeSeriesStore store = fx.make();
  EXPECT_EQ(store.retention_slots_for("proxy.requests"), 8u);
  EXPECT_EQ(store.retention_slots_for("slo.fired"), 32u);
  EXPECT_EQ(store.retention_slots_for("slo.burn.fast"), 4u);
}

TEST(TimeSeriesTest, LateRegisteredSeriesStartOnTheirFirstTick) {
  Fixture fx;
  TimeSeriesStore store = fx.make();
  fx.registry.counter("early").inc();
  store.observe(fx.at(100));
  // A counter created after ticks have passed must not report its initial
  // cumulative as one giant first delta *per missed slot* — just one delta
  // on its first capture.
  fx.registry.counter("late").inc(9);
  store.observe(fx.at(200));
  EXPECT_EQ(store.query("late", seconds(60)).delta, 9u);
}

TEST(TimeSeriesTest, QueryJsonShapeAndPrefixFilter) {
  Fixture fx;
  TimeSeriesStore store = fx.make();
  fx.registry.counter("proxy.requests").inc(3);
  fx.registry.counter("fleet.probes").inc(1);
  store.observe(fx.at(100));
  const std::string json = store.query_json("proxy.", milliseconds(100));
  EXPECT_NE(json.find("\"interval_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"proxy.requests\""), std::string::npos);
  EXPECT_NE(json.find("\"delta\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rate_per_s\""), std::string::npos);
  EXPECT_EQ(json.find("fleet.probes"), std::string::npos);
  // Deterministic: repeated queries are byte-identical.
  EXPECT_EQ(json, store.query_json("proxy.", milliseconds(100)));
}

TEST(TimeSeriesTest, UnknownSeriesAndZeroWindow) {
  Fixture fx;
  TimeSeriesStore store = fx.make();
  fx.registry.counter("c").inc();
  store.observe(fx.at(100));
  EXPECT_FALSE(store.query("nope", milliseconds(100)).known);
  const SeriesWindow zero = store.query("c", Duration::zero());
  EXPECT_TRUE(zero.known);
  EXPECT_EQ(zero.delta, 0u);
  EXPECT_EQ(zero.covered, Duration::zero());
  EXPECT_DOUBLE_EQ(zero.rate_per_s, 0.0);
}

}  // namespace
}  // namespace pan::obs
