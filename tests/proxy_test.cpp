// Tests for the proxy layer: SCION detection, path selection, the SKIP
// proxy's transport decisions (opportunistic / strict / fallback), and the
// reverse proxy.
#include <gtest/gtest.h>

#include "core/scenarios.hpp"
#include "ppl/parser.hpp"

namespace pan::proxy {
namespace {

using browser::make_local_world;
using browser::make_remote_world;
using browser::World;

// -------------------------------------------------------------- detector --

struct DetectorFixture {
  sim::Simulator sim;
  dns::Zone zone;
  dns::Resolver resolver{sim, zone, {}};
  ScionDetector detector{sim, resolver};
  scion::ScionAddr addr{scion::IsdAsn{1, 0x110}, net::IpAddr{0x0a000001}};

  ResolvedHost resolve(const std::string& domain, const std::string& identity = {}) {
    ResolvedHost out;
    bool done = false;
    detector.resolve(domain, identity, [&](ResolvedHost host) {
      out = host;
      done = true;
    });
    sim.run();
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(DetectorTest, DnsTxtDiscovery) {
  DetectorFixture fx;
  fx.zone.add_a("site.example", net::IpAddr{9});
  fx.zone.add_scion_txt("site.example", fx.addr);
  const ResolvedHost host = fx.resolve("site.example");
  ASSERT_TRUE(host.ip.has_value());
  ASSERT_TRUE(host.scion.has_value());
  EXPECT_EQ(*host.scion, fx.addr);
  EXPECT_EQ(host.scion_source, ScionSource::kDnsTxt);
}

TEST(DetectorTest, CuratedTakesPrecedence) {
  DetectorFixture fx;
  fx.zone.add_a("site.example", net::IpAddr{9});
  fx.zone.add_scion_txt("site.example",
                        scion::ScionAddr{scion::IsdAsn{2, 0x999}, net::IpAddr{1}});
  fx.detector.add_curated("site.example", fx.addr);
  const ResolvedHost host = fx.resolve("site.example");
  ASSERT_TRUE(host.scion.has_value());
  EXPECT_EQ(*host.scion, fx.addr);
  EXPECT_EQ(host.scion_source, ScionSource::kCurated);
}

TEST(DetectorTest, LearnedEntriesExpire) {
  DetectorFixture fx;
  fx.zone.add_a("site.example", net::IpAddr{9});
  fx.detector.learn("site.example", fx.addr, seconds(10));
  EXPECT_EQ(fx.resolve("site.example").scion_source, ScionSource::kLearned);
  fx.sim.run_until(fx.sim.now() + seconds(11));
  EXPECT_EQ(fx.resolve("site.example").scion_source, ScionSource::kNone);
}

TEST(DetectorTest, MaxAgeZeroWithdrawsLearnedEntry) {
  DetectorFixture fx;
  fx.zone.add_a("site.example", net::IpAddr{9});
  fx.detector.learn("site.example", fx.addr, seconds(600));
  EXPECT_EQ(fx.detector.learned_size(), 1u);
  // "Strict-SCION: max-age=0" is an explicit withdrawal (HSTS semantics):
  // the learned entry must go away, not linger with a past expiry.
  fx.detector.learn("site.example", fx.addr, Duration::zero());
  EXPECT_EQ(fx.detector.learned_size(), 0u);
  EXPECT_EQ(fx.resolve("site.example").scion_source, ScionSource::kNone);
}

// Regression: resolve() used to snapshot the learned entry *before* starting
// the async DNS lookup, so a "Strict-SCION: max-age=0" withdrawal landing
// while the lookup was in flight was ignored — the callback resurrected the
// withdrawn SCION address. The learned/curated lookup must run in the
// resolver callback, after any mid-resolution state change.
TEST(DetectorTest, WithdrawalDuringResolutionIsNotResurrected) {
  DetectorFixture fx;
  fx.zone.add_a("site.example", net::IpAddr{9});
  fx.detector.learn("site.example", fx.addr, seconds(600));

  ResolvedHost out;
  bool done = false;
  fx.detector.resolve("site.example", [&](ResolvedHost host) {
    out = host;
    done = true;
  });
  // The DNS lookup is still in flight (nonzero resolver latency) when the
  // origin withdraws its advertisement.
  fx.detector.learn("site.example", fx.addr, Duration::zero());
  fx.sim.run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(out.ip.has_value());
  EXPECT_FALSE(out.scion.has_value());
  EXPECT_EQ(out.scion_source, ScionSource::kNone);
}

// Learned Strict-SCION state is partitioned per identity: one identity's
// browsing must not prime (or withdraw) another identity's detector cache.
TEST(DetectorTest, LearnedEntriesAreIdentityScoped) {
  DetectorFixture fx;
  fx.zone.add_a("site.example", net::IpAddr{9});
  fx.detector.learn("site.example", fx.addr, seconds(600), "work");
  EXPECT_EQ(fx.resolve("site.example", "work").scion_source, ScionSource::kLearned);
  // Neither the default identity nor a sibling sees the entry.
  EXPECT_EQ(fx.resolve("site.example").scion_source, ScionSource::kNone);
  EXPECT_EQ(fx.resolve("site.example", "personal").scion_source, ScionSource::kNone);
  // A withdrawal under another identity leaves "work" intact.
  fx.detector.learn("site.example", fx.addr, Duration::zero(), "personal");
  EXPECT_EQ(fx.resolve("site.example", "work").scion_source, ScionSource::kLearned);
  // Curated entries stay global (operator configuration, not browsing state).
  fx.detector.add_curated("curated.example", fx.addr);
  fx.zone.add_a("curated.example", net::IpAddr{10});
  EXPECT_EQ(fx.resolve("curated.example", "work").scion_source, ScionSource::kCurated);
  EXPECT_EQ(fx.resolve("curated.example").scion_source, ScionSource::kCurated);
}

TEST(DetectorTest, NoRecordsAtAll) {
  DetectorFixture fx;
  const ResolvedHost host = fx.resolve("ghost.example");
  EXPECT_FALSE(host.ip.has_value());
  EXPECT_FALSE(host.scion.has_value());
}

// --------------------------------------------------------- path selector --

TEST(PathSelectorTest, SplitsCompliantAndAny) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  PathSelector selector(topo.daemon_for(world->client));
  // Geofence away ISD 2's core c2b (the fast detour).
  ppl::Policy no_c2b =
      ppl::parse_policy("policy { acl { deny 2-ff00:0:220; allow *; } }").value();
  selector.set_policies(ppl::PolicySet{{no_c2b}});

  PathChoice choice;
  bool done = false;
  selector.choose(topo.as_by_name("server-as"), [&](PathChoice c) {
    choice = std::move(c);
    done = true;
  });
  world->sim().run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(choice.any.has_value());
  ASSERT_TRUE(choice.compliant.has_value());
  // The unrestricted best path uses c2b; the compliant one must not.
  EXPECT_TRUE(choice.any->contains_as(topo.as_by_name("core-2b")));
  EXPECT_FALSE(choice.compliant->contains_as(topo.as_by_name("core-2b")));
  EXPECT_GT(choice.compliant->meta().latency, choice.any->meta().latency);
}

TEST(PathSelectorTest, GeofenceExcludesEverything) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  PathSelector selector(topo.daemon_for(world->client));
  ppl::Geofence fence;
  fence.mode = ppl::GeofenceMode::kBlocklist;
  fence.isds = {2};  // destination ISD blocked: nothing is compliant
  selector.set_geofence(fence);
  PathChoice choice;
  bool done = false;
  selector.choose(topo.as_by_name("server-as"), [&](PathChoice c) {
    choice = std::move(c);
    done = true;
  });
  world->sim().run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(choice.any.has_value());
  EXPECT_FALSE(choice.compliant.has_value());
}

TEST(PathSelectorTest, UsageAccounting) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  PathSelector selector(topo.daemon_for(world->client));
  const auto paths = topo.daemon_for(world->client).query_now(topo.as_by_name("server-as"));
  ASSERT_FALSE(paths.empty());
  selector.record_use(paths.front(), 1000);
  selector.record_use(paths.front(), 500);
  const auto& usage = selector.usage();
  ASSERT_EQ(usage.size(), 1u);
  const PathUsage& u = usage.begin()->second;
  EXPECT_EQ(u.requests, 2u);
  EXPECT_EQ(u.bytes, 1500u);
  EXPECT_FALSE(u.description.empty());
}

TEST(PathSelectorTest, RevocationTableConvergesToActive) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  PathSelector selector(topo.daemon_for(world->client));
  for (int i = 1; i <= 50; ++i) {
    selector.revoke(topo.as_by_name("core-1"), static_cast<scion::IfaceId>(i), seconds(1));
  }
  EXPECT_EQ(selector.revocation_entries(), 50u);
  EXPECT_EQ(selector.active_revocations(), 50u);
  world->sim().run_until(world->sim().now() + seconds(2));
  EXPECT_EQ(selector.active_revocations(), 0u);
  // Inserting prunes the expired backlog instead of growing the table.
  selector.revoke(topo.as_by_name("core-1"), static_cast<scion::IfaceId>(99), seconds(1));
  EXPECT_EQ(selector.revocation_entries(), 1u);
  EXPECT_EQ(selector.active_revocations(), 1u);
  // Lookups prune too: container size and active count converge.
  world->sim().run_until(world->sim().now() + seconds(2));
  const auto paths = topo.daemon_for(world->client).query_now(topo.as_by_name("server-as"));
  ASSERT_FALSE(paths.empty());
  EXPECT_FALSE(selector.is_revoked(paths.front()));
  EXPECT_EQ(selector.revocation_entries(), 0u);
  EXPECT_EQ(selector.active_revocations(), 0u);
}

// ------------------------------------------------------------ skip proxy --

struct ProxyFixture {
  std::unique_ptr<World> world;
  std::unique_ptr<dns::Resolver> resolver;
  std::unique_ptr<SkipProxy> proxy;

  explicit ProxyFixture(bool remote = false, ProxyConfig config = {}) {
    world = remote ? make_remote_world() : make_local_world();
    auto& topo = world->topology();
    resolver = std::make_unique<dns::Resolver>(world->sim(), world->zone(), dns::ResolverConfig{});
    proxy = std::make_unique<SkipProxy>(world->sim(), topo.host(world->client),
                                        topo.scion_stack(world->client),
                                        topo.daemon_for(world->client), *resolver, config);
  }

  ProxyResult fetch(const std::string& url, bool strict = false) {
    http::HttpRequest request;
    request.target = url;
    ProxyRequestOptions options;
    options.strict = strict;
    ProxyResult out;
    bool done = false;
    proxy->fetch(request, options, [&](ProxyResult r) {
      out = std::move(r);
      done = true;
    });
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(60));
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(SkipProxyTest, FetchesScionOnlySiteOverScion) {
  ProxyFixture fx;
  fx.world->site("scion-fs.local")->add_text("/x", "scion content");
  const ProxyResult result = fx.fetch("http://scion-fs.local/x");
  EXPECT_EQ(result.transport, TransportUsed::kScion);
  EXPECT_TRUE(result.policy_compliant);
  EXPECT_EQ(to_string_view_copy(result.response.body), "scion content");
  EXPECT_EQ(result.response.headers.get("X-Skip-Transport"), "scion");
  EXPECT_EQ(fx.proxy->stats().over_scion, 1u);
}

TEST(SkipProxyTest, FallsBackToIpForLegacyOnlySite) {
  ProxyFixture fx;
  fx.world->site("tcpip-fs.local")->add_text("/x", "legacy content");
  const ProxyResult result = fx.fetch("http://tcpip-fs.local/x");
  EXPECT_EQ(result.transport, TransportUsed::kIp);
  EXPECT_EQ(to_string_view_copy(result.response.body), "legacy content");
  EXPECT_EQ(result.response.headers.get("X-Skip-Transport"), "ip");
  EXPECT_EQ(fx.proxy->stats().over_ip, 1u);
}

TEST(SkipProxyTest, StrictModeBlocksLegacyOnlySite) {
  ProxyFixture fx;
  fx.world->site("tcpip-fs.local")->add_text("/x", "legacy content");
  const ProxyResult result = fx.fetch("http://tcpip-fs.local/x", /*strict=*/true);
  EXPECT_EQ(result.transport, TransportUsed::kBlocked);
  EXPECT_EQ(result.response.status, 502);
  EXPECT_EQ(fx.proxy->stats().blocked, 1u);
}

TEST(SkipProxyTest, StrictModeBlocksWhenNoCompliantPath) {
  ProxyFixture fx(/*remote=*/true);
  fx.world->site("www.far.example")->add_text("/x", "far content");
  ppl::Geofence fence;
  fence.mode = ppl::GeofenceMode::kBlocklist;
  fence.isds = {2};
  fx.proxy->set_geofence(fence);
  const ProxyResult result = fx.fetch("http://www.far.example/x", /*strict=*/true);
  EXPECT_EQ(result.transport, TransportUsed::kBlocked);
}

TEST(SkipProxyTest, OpportunisticUsesNonCompliantPathWithFlag) {
  ProxyFixture fx(/*remote=*/true);
  fx.world->site("www.far.example")->add_text("/x", "far content");
  ppl::Geofence fence;
  fence.mode = ppl::GeofenceMode::kBlocklist;
  fence.isds = {2};
  fx.proxy->set_geofence(fence);
  const ProxyResult result = fx.fetch("http://www.far.example/x", /*strict=*/false);
  EXPECT_EQ(result.transport, TransportUsed::kScion);
  EXPECT_FALSE(result.policy_compliant);
  EXPECT_EQ(result.response.headers.get("X-Skip-Compliant"), "no");
  EXPECT_EQ(to_string_view_copy(result.response.body), "far content");
}

TEST(SkipProxyTest, PolicySteersPathSelection) {
  ProxyFixture fx(/*remote=*/true);
  fx.world->site("www.far.example")->add_text("/x", "far content");
  auto& topo = fx.world->topology();
  // Avoid the fast detour core: forces the 80ms direct core link.
  fx.proxy->set_policies(ppl::PolicySet{
      {ppl::parse_policy("policy { acl { deny 2-ff00:0:220; allow *; } }").value()}});
  const ProxyResult result = fx.fetch("http://www.far.example/x");
  EXPECT_EQ(result.transport, TransportUsed::kScion);
  EXPECT_TRUE(result.policy_compliant);
  const auto& usage = fx.proxy->selector().usage();
  ASSERT_FALSE(usage.empty());
  for (const auto& [fp, u] : usage) {
    EXPECT_EQ(u.description.find(topo.as_by_name("core-2b").to_string()), std::string::npos)
        << u.description;
  }
}

TEST(SkipProxyTest, UnresolvableHostErrors) {
  ProxyFixture fx;
  const ProxyResult result = fx.fetch("http://ghost.invalid/");
  EXPECT_EQ(result.transport, TransportUsed::kError);
  EXPECT_EQ(result.response.status, 502);
  EXPECT_EQ(fx.proxy->stats().errors, 1u);
}

TEST(SkipProxyTest, BadUrlRejected) {
  ProxyFixture fx;
  http::HttpRequest request;
  request.target = "/relative-without-host";
  ProxyResult out;
  bool done = false;
  fx.proxy->fetch(request, {}, [&](ProxyResult r) {
    out = std::move(r);
    done = true;
  });
  fx.world->sim().run_until_condition([&] { return done; },
                                      fx.world->sim().now() + seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(out.response.status, 400);
}

TEST(SkipProxyTest, IpcOverheadAppliesBothWays) {
  ProxyConfig config;
  config.ipc_overhead = milliseconds(10);
  config.processing_overhead = Duration::zero();
  ProxyFixture fx(false, config);
  fx.world->site("tcpip-fs.local")->add_text("/x", "y");
  const TimePoint t0 = fx.world->sim().now();
  fx.fetch("http://tcpip-fs.local/x");
  // >= 2 crossings of 10ms plus actual network time.
  EXPECT_GE((fx.world->sim().now() - t0).nanos(), milliseconds(20).nanos());
}

TEST(SkipProxyTest, HttpsAbsoluteFormRejectedWith400) {
  ProxyFixture fx;
  fx.world->site("scion-fs.local")->add_text("/x", "content");
  // An https absolute-form target must be rejected for its scheme, not be
  // glued onto the Host header ("http://<host>https://...") and mangled.
  const ProxyResult result = fx.fetch("https://scion-fs.local/x");
  EXPECT_EQ(result.response.status, 400);
  const auto err = result.response.headers.get("X-Skip-Error");
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unsupported scheme"), std::string::npos) << *err;
  EXPECT_NE(err->find("https"), std::string::npos) << *err;
  EXPECT_EQ(fx.proxy->stats().requests, 1u);
  EXPECT_EQ(fx.proxy->stats().over_scion, 0u);
}

TEST(SkipProxyTest, ScionPoolStoresParsedHostAndPort) {
  ProxyFixture fx;
  auto& topo = fx.world->topology();
  browser::SiteOptions alt;
  alt.legacy = false;
  alt.native_scion = true;
  alt.port = 8080;
  fx.world->add_site(topo.host_by_name("scion-fs"), "alt.local", alt);
  fx.world->site("alt.local")->add_text("/x", "alt content");
  const ProxyResult result = fx.fetch("http://alt.local:8080/x");
  ASSERT_EQ(result.transport, TransportUsed::kScion);
  const auto pool = fx.proxy->scion_pool_snapshot();
  ASSERT_EQ(pool.size(), 1u);
  // The origin keeps the host/port parsed at insert time; deriving the host
  // by splitting the "alt.local:8080" key at the first ':' is exactly the
  // bug this guards against.
  EXPECT_EQ(pool[0].key, "alt.local:8080");
  EXPECT_EQ(pool[0].host, "alt.local");
  EXPECT_EQ(pool[0].port, 8080);
}

TEST(SkipProxyTest, FallbackAndTimeoutAccountingExact) {
  ProxyConfig config;
  config.request_timeout = seconds(1);
  config.quic.idle_timeout = milliseconds(500);
  ProxyFixture fx(false, config);
  auto& topo = fx.world->topology();
  // Scripted mix: one clean SCION success, one SCION dial that dies and
  // falls back to IP, one request that times out and answers late.
  fx.world->site("scion-fs.local")->add_text("/ok", "fine");
  fx.world->site("tcpip-fs.local")->add_text("/fb", "legacy");
  // Curated entry claims SCION availability for the legacy-only site;
  // nothing listens on QUIC there, so the dial idles out.
  fx.proxy->detector().add_curated("tcpip-fs.local",
                                   topo.scion_addr(topo.host_by_name("tcpip-fs")));
  browser::SiteOptions slow;
  slow.legacy = false;
  slow.native_scion = true;
  slow.port = 8081;
  slow.think_time = seconds(3);  // responds, but only after the 504
  fx.world->add_site(topo.host_by_name("scion-fs"), "slow.local", slow);
  fx.world->site("slow.local")->add_text("/x", "late");

  EXPECT_EQ(fx.fetch("http://scion-fs.local/ok").transport, TransportUsed::kScion);
  const ProxyResult fb = fx.fetch("http://tcpip-fs.local/fb");
  EXPECT_EQ(fb.transport, TransportUsed::kIp);
  EXPECT_TRUE(fb.fell_back);
  EXPECT_GT(fb.phase_total("fallback"), Duration::zero());
  const ProxyResult late = fx.fetch("http://slow.local:8081/x");
  EXPECT_EQ(late.response.status, 504);
  EXPECT_EQ(late.transport, TransportUsed::kError);

  // Run well past the late SCION response; its arrival must not bump any
  // counter (the request already finished as a timeout).
  fx.world->sim().run_until(fx.world->sim().now() + seconds(10));
  const ProxyStats stats = fx.proxy->stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.over_scion, 1u);
  EXPECT_EQ(stats.over_ip, 1u);
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.blocked, 0u);
}

TEST(SkipProxyTest, RequestTraceBreaksDownPhases) {
  ProxyConfig config;
  config.ipc_overhead = milliseconds(10);
  config.processing_overhead = Duration::zero();
  ProxyFixture fx(false, config);
  fx.world->site("scion-fs.local")->add_text("/x", "content");
  const ProxyResult result = fx.fetch("http://scion-fs.local/x");
  ASSERT_EQ(result.transport, TransportUsed::kScion);
  EXPECT_NE(result.trace_id, 0u);
  ASSERT_FALSE(result.spans.empty());
  // Both IPC crossings are timed (request + response side).
  EXPECT_EQ(result.phase_total("ipc"), milliseconds(20));
  EXPECT_GT(result.phase_total("detect"), Duration::zero());
  EXPECT_GT(result.phase_total("handshake"), Duration::zero());
  EXPECT_GT(result.phase_total("fetch"), Duration::zero());
  // The finished spans were flushed into per-phase histograms.
  const obs::MetricsRegistry& registry = fx.proxy->metrics();
  ASSERT_NE(registry.find_histogram("proxy.phase.fetch"), nullptr);
  EXPECT_EQ(registry.find_histogram("proxy.phase.fetch")->count(), 1u);
  ASSERT_NE(registry.find_histogram("proxy.request_total"), nullptr);
  EXPECT_EQ(registry.find_histogram("proxy.request_total")->count(), 1u);
}

TEST(SkipProxyTest, MetricsEndpointReturnsRegistryJson) {
  ProxyFixture fx;
  fx.world->site("scion-fs.local")->add_text("/x", "content");
  fx.fetch("http://scion-fs.local/x");
  const ProxyResult result = fx.fetch("/skip/metrics");
  EXPECT_EQ(result.transport, TransportUsed::kInternal);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.response.headers.get("Content-Type"), "application/json");
  const std::string body = to_string_view_copy(result.response.body);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("\"proxy.requests\""), std::string::npos);
  EXPECT_NE(body.find("\"proxy.phase.fetch\""), std::string::npos);
  EXPECT_NE(body.find("\"transport.handshake\""), std::string::npos);
  EXPECT_EQ(fx.proxy->stats().internal, 1u);

  const ProxyResult unknown = fx.fetch("/skip/nope");
  EXPECT_EQ(unknown.response.status, 404);
}

TEST(SkipProxyTest, MetricsPrefixFilterAndWindowQuery) {
  ProxyFixture fx;
  fx.world->site("scion-fs.local")->add_text("/x", "content");
  fx.fetch("http://scion-fs.local/x");

  const ProxyResult filtered = fx.fetch("/skip/metrics?prefix=proxy.phase.");
  EXPECT_EQ(filtered.response.status, 200);
  const std::string filtered_body = to_string_view_copy(filtered.response.body);
  EXPECT_NE(filtered_body.find("\"proxy.phase.fetch\""), std::string::npos);
  EXPECT_EQ(filtered_body.find("\"proxy.requests\""), std::string::npos);
  EXPECT_EQ(filtered_body.find("\"transport.handshake\""), std::string::npos);

  // ?window= flips the endpoint into time-series mode: deltas and rates
  // from the proxy's lazy-ticked store. Advance past a few tick intervals
  // first — the lazy store catches up on the next endpoint touch.
  fx.world->sim().run_until(fx.world->sim().now() + seconds(1));
  const ProxyResult windowed = fx.fetch("/skip/metrics?window=1000");
  EXPECT_EQ(windowed.response.status, 200);
  const std::string windowed_body = to_string_view_copy(windowed.response.body);
  EXPECT_NE(windowed_body.find("\"interval_ms\""), std::string::npos);
  EXPECT_NE(windowed_body.find("\"rate_per_s\""), std::string::npos);
  EXPECT_NE(windowed_body.find("\"proxy.requests\""), std::string::npos);

  EXPECT_EQ(fx.fetch("/skip/metrics?window=xyz").response.status, 400);
}

TEST(SkipProxyTest, PromEndpointExposesRegistry) {
  ProxyConfig config;
  config.prom_instance = "test-proxy";
  ProxyFixture fx(false, config);
  fx.world->site("scion-fs.local")->add_text("/x", "content");
  fx.fetch("http://scion-fs.local/x");

  const ProxyResult result = fx.fetch("/skip/metrics.prom");
  EXPECT_EQ(result.transport, TransportUsed::kInternal);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.response.headers.get("Content-Type"), "text/plain; version=0.0.4");
  const std::string body = to_string_view_copy(result.response.body);
  EXPECT_NE(body.find("# TYPE pan_proxy_requests counter"), std::string::npos);
  EXPECT_NE(body.find("instance=\"test-proxy\""), std::string::npos);
  EXPECT_NE(body.find("pan_proxy_request_total_bucket"), std::string::npos);
  EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);

  // ?prefix= filters the exposition too.
  const ProxyResult filtered = fx.fetch("/skip/metrics.prom?prefix=proxy.phase.");
  const std::string filtered_body = to_string_view_copy(filtered.response.body);
  EXPECT_NE(filtered_body.find("pan_proxy_phase_fetch"), std::string::npos);
  EXPECT_EQ(filtered_body.find("pan_proxy_requests"), std::string::npos);
}

TEST(SkipProxyTest, ExemplarTraceIdsResolveAtTraceEndpoint) {
  ProxyFixture fx;
  fx.world->site("scion-fs.local")->add_text("/x", "content");
  const ProxyResult page = fx.fetch("http://scion-fs.local/x");
  ASSERT_EQ(page.response.status, 200);
  ASSERT_NE(page.trace_id, 0u);

  // The request-total histogram holds the request as an exemplar tagged
  // with its (kept) trace id — the one-hop bridge from a tail bucket to
  // the offending trace.
  const obs::Histogram* hist = fx.proxy->metrics().find_histogram("proxy.request_total");
  ASSERT_NE(hist, nullptr);
  const std::vector<obs::Exemplar> exemplars = hist->exemplars();
  ASSERT_FALSE(exemplars.empty());
  EXPECT_EQ(exemplars[0].trace_id, page.trace_id);

  // The advertised hop works: GET /skip/trace/<exemplar id> finds the trace.
  const ProxyResult trace =
      fx.fetch("/skip/trace/" + std::to_string(exemplars[0].trace_id));
  EXPECT_EQ(trace.response.status, 200);
  const std::string body = to_string_view_copy(trace.response.body);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);

  // And the exemplar surfaces in both dump formats.
  const std::string json = to_string_view_copy(fx.fetch("/skip/metrics").response.body);
  EXPECT_NE(json.find("\"trace_id\":\"" + std::to_string(page.trace_id) + "\""),
            std::string::npos);
  const std::string prom = to_string_view_copy(fx.fetch("/skip/metrics.prom").response.body);
  EXPECT_NE(prom.find("# {trace_id=\"" + std::to_string(page.trace_id) + "\"}"),
            std::string::npos);
}

TEST(SkipProxyTest, UnsampledTracesLeaveNoExemplar) {
  ProxyConfig config;
  // Keep nothing by head sampling (plain fetches are subresource-class).
  config.collector_config.sample_document = 0;
  config.collector_config.sample_subresource = 0;
  ProxyFixture fx(false, config);
  fx.world->site("scion-fs.local")->add_text("/x", "content");
  const ProxyResult page = fx.fetch("http://scion-fs.local/x");
  ASSERT_EQ(page.response.status, 200);
  const obs::Histogram* hist = fx.proxy->metrics().find_histogram("proxy.request_total");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);  // still recorded in the histogram
  // But no exemplar: its trace id would 404 at /skip/trace/<id>.
  EXPECT_TRUE(hist->exemplars().empty());
}

TEST(SkipProxyTest, ConnectionReuseAcrossRequests) {
  ProxyFixture fx;
  fx.world->site("scion-fs.local")->add_text("/a", "1");
  fx.world->site("scion-fs.local")->add_text("/b", "2");
  fx.fetch("http://scion-fs.local/a");
  fx.fetch("http://scion-fs.local/b");
  EXPECT_EQ(fx.proxy->stats().over_scion, 2u);
  // One QUIC connection on the server side: the scion server host's stack
  // saw exactly one connection worth of handshakes (hard to observe
  // directly; at least verify both requests succeeded over SCION).
}

// ---------------------------------------------------------- policy router --

TEST(PolicyRouterTest, HostPatternMatching) {
  EXPECT_TRUE(PolicyRouter::host_matches("*", "anything.example"));
  EXPECT_TRUE(PolicyRouter::host_matches("www.x.org", "www.x.org"));
  EXPECT_TRUE(PolicyRouter::host_matches("WWW.X.ORG", "www.x.org"));
  EXPECT_TRUE(PolicyRouter::host_matches("*.x.org", "www.x.org"));
  EXPECT_TRUE(PolicyRouter::host_matches("*.x.org", "a.b.x.org"));
  EXPECT_FALSE(PolicyRouter::host_matches("*.x.org", "x.org"));
  EXPECT_FALSE(PolicyRouter::host_matches("*.x.org", "notx.org"));
  EXPECT_FALSE(PolicyRouter::host_matches("www.x.org", "x.org"));
}

TEST(PolicyRouterTest, FirstMatchWinsWithDefaultFallback) {
  PolicyRouter router;
  ppl::Policy latency = ppl::parse_policy("policy \"lat\" { order latency asc; }").value();
  ppl::Policy green = ppl::parse_policy("policy \"green\" { order co2 asc; }").value();
  router.add_rule("*.video.example", ppl::PolicySet{{green}});
  router.add_rule("*", ppl::PolicySet{{latency}});
  EXPECT_EQ(router.match("cdn.video.example").policies().front().name, "green");
  EXPECT_EQ(router.match("bank.example").policies().front().name, "lat");
  PolicyRouter empty;
  EXPECT_TRUE(empty.match("anything").empty());
}

TEST(PolicyRouterTest, PerSitePoliciesSteerTheProxy) {
  ProxyFixture fx(/*remote=*/true);
  fx.world->site("www.far.example")->add_text("/x", "far");
  auto& topo = fx.world->topology();
  // Global default: latency-first. For *.far.example: avoid core-2b.
  fx.proxy->set_policies(
      ppl::PolicySet{{ppl::parse_policy("policy { order latency asc; }").value()}});
  fx.proxy->policy_router().add_rule(
      "*.far.example",
      ppl::PolicySet{{ppl::parse_policy(
          "policy { acl { deny 2-ff00:0:220; allow *; } }").value()}});

  const ProxyResult result = fx.fetch("http://www.far.example/x");
  EXPECT_EQ(result.transport, TransportUsed::kScion);
  EXPECT_TRUE(result.policy_compliant);
  // The per-site rule forced the path off core-2b.
  const auto paths = topo.daemon_for(fx.world->client)
                         .query_now(topo.as_by_name("server-as"));
  for (const auto& p : paths) {
    if (p.fingerprint() == result.path_fingerprint) {
      EXPECT_FALSE(p.contains_as(topo.as_by_name("core-2b")));
    }
  }
}

// ---------------------------------------------------------- reverse proxy --

TEST(ReverseProxyTest, RelaysAndInjectsStrictScion) {
  // The fixture's world already fronts www.far.example with reverse proxies.
  ProxyFixture fx(/*remote=*/true);
  // Replace: use the prepared world from the fixture instead (it already has
  // reverse proxies); this test drives the fixture's world.
  fx.world->site("www.far.example")->add_text("/page", "backend says hi");
  const ProxyResult result = fx.fetch("http://www.far.example/page");
  EXPECT_EQ(result.transport, TransportUsed::kScion);
  EXPECT_EQ(to_string_view_copy(result.response.body), "backend says hi");
  EXPECT_EQ(result.response.headers.get("Via"), "pan-reverse-proxy");
}

TEST(ReverseProxyTest, StrictScionInjectionConfigurable) {
  auto world = make_local_world();
  auto& topo = world->topology();
  // Put a reverse proxy with Strict-SCION injection in front of the legacy
  // file server.
  ReverseProxyConfig config;
  config.inject_strict_scion = http::StrictScionDirective{seconds(300)};
  const auto rp_host = topo.host_by_name("scion-fs");  // reuse as rp host
  ReverseProxy rp(topo.scion_stack(rp_host), 8080,
                  net::Endpoint{topo.ip(topo.host_by_name("tcpip-fs")), 80}, config);
  world->site("tcpip-fs.local")->add_text("/x", "content");

  http::ScionHttpConnection conn(topo.scion_stack(world->client),
                                 scion::ScionEndpoint{topo.scion_addr(rp_host), 8080},
                                 scion::DataplanePath{});
  http::HttpRequest req;
  req.target = "/x";
  req.headers.set("Host", "tcpip-fs.local");
  bool done = false;
  http::HttpResponse got;
  conn.fetch(req, [&](Result<http::HttpResponse> r) {
    ASSERT_TRUE(r.ok()) << r.error();
    got = std::move(r).take();
    done = true;
  });
  world->sim().run_until_condition([&] { return done; }, world->sim().now() + seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(got.status, 200);
  EXPECT_TRUE(http::strict_scion_of(got).has_value());
  EXPECT_EQ(rp.requests_relayed(), 1u);
}

TEST(SkipProxyTest, LearnsStrictScionPinsIntoDetector) {
  auto world = make_local_world();
  world->site("scion-fs.local")->enable_strict_scion(seconds(600));
  world->site("scion-fs.local")->add_text("/x", "pinned");
  auto& topo = world->topology();
  dns::Resolver resolver(world->sim(), world->zone(), {});
  SkipProxy proxy(world->sim(), topo.host(world->client), topo.scion_stack(world->client),
                  topo.daemon_for(world->client), resolver, {});
  http::HttpRequest request;
  request.target = "http://scion-fs.local/x";
  bool done = false;
  proxy.fetch(request, {}, [&](ProxyResult) { done = true; });
  world->sim().run_until_condition([&] { return done; }, world->sim().now() + seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(proxy.detector().learned_size(), 1u);
}

}  // namespace
}  // namespace pan::proxy
