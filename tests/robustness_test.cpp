// Robustness / deterministic-fuzz tests: every parser and the data plane
// must survive arbitrary and mutated inputs without crashing, and integrity
// checks must reject corrupted-but-plausible inputs.
#include <gtest/gtest.h>

#include "core/scenarios.hpp"
#include "fault/fault.hpp"
#include "proxy/overload.hpp"
#include "proxy/skip_proxy.hpp"
#include "http/parser.hpp"
#include "ppl/parser.hpp"
#include "scion/border_router.hpp"
#include "scion/header.hpp"
#include "scion/scmp.hpp"
#include "scion/topology.hpp"
#include "transport/frames.hpp"

namespace pan {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

/// Flip a few random bits/bytes of a valid buffer.
Bytes mutate(Rng& rng, Bytes input) {
  if (input.empty()) return input;
  const std::size_t flips = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t pos = rng.next_below(input.size());
    input[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
  // Occasionally truncate or extend.
  if (rng.chance(0.3)) input.resize(rng.next_below(input.size() + 1));
  if (rng.chance(0.2)) {
    const Bytes extra = random_bytes(rng, 16);
    input.insert(input.end(), extra.begin(), extra.end());
  }
  return input;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint64_t>(1, 9));

TEST_P(FuzzSeeds, ScionHeaderParserNeverCrashes) {
  Rng rng(GetParam());
  // Pure garbage.
  for (int i = 0; i < 500; ++i) {
    (void)scion::parse_scion_packet(random_bytes(rng, 300));
  }
  // Mutated valid packets.
  scion::ScionHeader header;
  header.src = scion::ScionAddr{scion::IsdAsn{1, 2}, net::IpAddr{3}};
  header.dst = scion::ScionAddr{scion::IsdAsn{4, 5}, net::IpAddr{6}};
  scion::DataplaneSegment seg;
  seg.origin_ts = 99;
  for (int h = 0; h < 4; ++h) {
    scion::HopField hf;
    hf.isd_as = scion::IsdAsn{1, static_cast<scion::Asn>(h)};
    seg.hops.push_back(hf);
  }
  header.path.segments.push_back(seg);
  const Bytes valid = scion::serialize_scion_packet(header, from_string("payload"));
  for (int i = 0; i < 500; ++i) {
    (void)scion::parse_scion_packet(mutate(rng, valid));
  }
  SUCCEED();
}

/// Runs the lazy view over arbitrary bytes: parse must never read out of
/// bounds (ASan-checked), and when it accepts, every accessor must stay in
/// bounds and agree with the eager parser.
void exercise_header_view(std::span<const std::uint8_t> data) {
  const auto view = scion::ScionHeaderView::parse(data);
  const auto eager = scion::parse_scion_packet(data);
  // The two parsers validate the same structure: lazy-ok iff eager-ok.
  ASSERT_EQ(view.ok(), eager.ok());
  if (!view.ok()) return;
  const scion::ScionHeaderView& v = view.value();
  EXPECT_EQ(v.src().ia, eager.value().header.src.ia);
  EXPECT_EQ(v.dst().host, eager.value().header.dst.host);
  EXPECT_EQ(v.cur_seg(), eager.value().header.cur_seg);
  EXPECT_EQ(v.cur_hop(), eager.value().header.cur_hop);
  EXPECT_EQ(v.reservation_id(), eager.value().header.reservation_id);
  EXPECT_EQ(v.payload_offset(), eager.value().payload_offset);
  EXPECT_EQ(v.segment_count(), eager.value().header.path.segments.size());
  // Decode every hop lazily and compare with the eager decode.
  for (std::uint8_t s = 0; s < v.segment_count(); ++s) {
    const auto seg = v.segment(s);
    const scion::DataplaneSegment& eager_seg = eager.value().header.path.segments[s];
    ASSERT_EQ(seg.hop_count, eager_seg.hops.size());
    EXPECT_EQ(seg.origin_ts, eager_seg.origin_ts);
    for (std::uint8_t h = 0; h < seg.hop_count; ++h) {
      const scion::HopField hf = v.hop(seg, h);
      const scion::HopField& expected = eager_seg.hop_at(h);
      EXPECT_EQ(hf.isd_as, expected.isd_as);
      EXPECT_EQ(hf.in_if, expected.in_if);
      EXPECT_EQ(hf.out_if, expected.out_if);
      EXPECT_EQ(hf.mac, expected.mac);
      (void)scion::ScionHeaderView::traversal_ingress(seg, hf);
      (void)scion::ScionHeaderView::traversal_egress(seg, hf);
    }
  }
  // The forwarding decision must stay in bounds for any cursor value.
  const scion::ForwardingKey key = from_string("fuzz-key");
  (void)scion::decide_hop(data, scion::IsdAsn{1, 2}, key, scion::BorderRouterConfig{});
}

TEST_P(FuzzSeeds, ScionHeaderViewNeverReadsOutOfBounds) {
  Rng rng(GetParam() + 1100);
  // Pure garbage.
  for (int i = 0; i < 500; ++i) {
    exercise_header_view(random_bytes(rng, 300));
  }
  // Mutations of a valid multi-segment packet: bit flips corrupt cursor
  // bytes, segment counts, and declared hop counts; truncations/extensions
  // break the length invariants the parse walk must catch.
  scion::ScionHeader header;
  header.src = scion::ScionAddr{scion::IsdAsn{1, 2}, net::IpAddr{3}};
  header.dst = scion::ScionAddr{scion::IsdAsn{4, 5}, net::IpAddr{6}};
  for (int s = 0; s < 3; ++s) {
    scion::DataplaneSegment seg;
    seg.origin_ts = 90 + s;
    seg.reversed = s % 2 == 1;
    for (int h = 0; h < 3 + s; ++h) {
      scion::HopField hf;
      hf.isd_as = scion::IsdAsn{1, static_cast<scion::Asn>(16 * s + h)};
      hf.in_if = static_cast<scion::IfaceId>(h);
      hf.out_if = static_cast<scion::IfaceId>(h + 1);
      seg.hops.push_back(hf);
    }
    header.path.segments.push_back(seg);
  }
  const Bytes valid = scion::serialize_scion_packet(header, from_string("payload"));
  for (int i = 0; i < 500; ++i) {
    exercise_header_view(mutate(rng, valid));
  }
  // Targeted cursor corruption on otherwise-valid packets: every (cur_seg,
  // cur_hop) combination, including far out of range, must be handled.
  for (int i = 0; i < 300; ++i) {
    Bytes packet = valid;
    packet[scion::ParsedScionPacket::kCurSegOffset] =
        static_cast<std::uint8_t>(rng.next_below(256));
    packet[scion::ParsedScionPacket::kCurHopOffset] =
        static_cast<std::uint8_t>(rng.next_below(256));
    exercise_header_view(packet);
  }
  // Inconsistent hop counts: rewrite a segment's declared hop count without
  // touching the buffer length — the parse walk must reconcile the new
  // structure against the real length, never reading past the end.
  std::vector<std::size_t> hop_count_offsets;
  std::size_t off = scion::kScionFixedHeaderSize;
  for (const scion::DataplaneSegment& seg : header.path.segments) {
    hop_count_offsets.push_back(off + scion::kSegmentMetaSize - 1);
    off += scion::kSegmentMetaSize + seg.hops.size() * scion::kHopFieldWireSize;
  }
  for (int i = 0; i < 300; ++i) {
    Bytes packet = valid;
    const std::size_t target = hop_count_offsets[rng.next_below(hop_count_offsets.size())];
    packet[target] = static_cast<std::uint8_t>(rng.next_below(256));
    exercise_header_view(packet);
  }
  // Truncations at every length, from full packet down to empty.
  for (std::size_t len = valid.size(); len-- > 0;) {
    exercise_header_view(std::span<const std::uint8_t>(valid.data(), len));
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, TransportPacketParserNeverCrashes) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 500; ++i) {
    (void)transport::parse_packet(random_bytes(rng, 300));
  }
  transport::TransportPacket packet;
  packet.kind = transport::TransportKind::kQuicLite;
  packet.conn_id = 7;
  packet.frames.emplace_back(transport::StreamFrame{0, 0, true, from_string("x")});
  packet.frames.emplace_back(transport::AckFrame{{{1, 5}}});
  const Bytes valid = transport::serialize_packet(packet);
  for (int i = 0; i < 500; ++i) {
    (void)transport::parse_packet(mutate(rng, valid));
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, HttpParserNeverCrashes) {
  Rng rng(GetParam() + 200);
  for (int round = 0; round < 50; ++round) {
    http::HttpParser parser(round % 2 == 0 ? http::ParserMode::kRequest
                                           : http::ParserMode::kResponse);
    parser.on_request = [](http::HttpRequest) {};
    parser.on_response = [](http::HttpResponse) {};
    parser.on_error = [](const std::string&) {};
    // Feed a mix of garbage and fragments of valid messages.
    for (int i = 0; i < 10; ++i) {
      if (rng.chance(0.5)) {
        parser.feed(random_bytes(rng, 100));
      } else {
        const Bytes valid = http::make_text_response(200, "ok").serialize();
        parser.feed(mutate(rng, valid));
      }
    }
    parser.finish();
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, PplParserNeverCrashes) {
  Rng rng(GetParam() + 300);
  static constexpr std::string_view kAlphabet =
      "policyacldenyallowsequenceorderrequire{};,\"#*-0123456789 \n\tascdesc<>=!";
  for (int i = 0; i < 400; ++i) {
    std::string input;
    const std::size_t len = rng.next_below(120);
    for (std::size_t c = 0; c < len; ++c) {
      input += kAlphabet[rng.next_below(kAlphabet.size())];
    }
    (void)ppl::parse_policy(input);
    (void)ppl::parse_policies(input);
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, UrlParserNeverCrashes) {
  Rng rng(GetParam() + 400);
  for (int i = 0; i < 1000; ++i) {
    const Bytes raw = random_bytes(rng, 60);
    const std::string input(reinterpret_cast<const char*>(raw.data()), raw.size());
    (void)http::parse_url(input);
    (void)http::parse_url("http://" + input);
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, AddressParsersNeverCrash) {
  Rng rng(GetParam() + 500);
  for (int i = 0; i < 1000; ++i) {
    const Bytes raw = random_bytes(rng, 30);
    const std::string input(reinterpret_cast<const char*>(raw.data()), raw.size());
    (void)scion::IsdAsn::parse(input);
    (void)scion::ScionAddr::parse(input);
    (void)net::IpAddr::parse(input);
    (void)ppl::HopPredicate::parse(input);
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, FaultPlanParserNeverCrashes) {
  Rng rng(GetParam() + 950);
  // Token soup drawn from the fault-plan grammar plus junk, so the fuzzer
  // exercises deep parse paths (options, units, kinds) and not just the
  // first-token reject.
  static constexpr std::string_view kTokens[] = {
      "at=",       "dur=",          "loss=",     "latency-factor=",
      "extra-latency=", "mode=",    "delay=",    "link-down",
      "link-degrade",   "as-outage", "path-server-stale", "dns-brownout",
      "origin-reset",   "origin-slow-loris", "origin-bad-strict-scion",
      "timeout",   "servfail",      "150ms",     "2s",
      "0",         "-3ms",          "1e99s",     "core-1",
      "core-2b",   "#",             "0.5",       "\xff\xfe",
      "999999999999999999999s",     "ms",        "=",
      "surge",     "rate=",         "conc=",     "160",
      "replica-crash", "replica-hang", "replica-restart", "rep-0",
      "access-down",   "access-degrade", "browser-lte",   "latency-factor=8",
  };
  for (int i = 0; i < 300; ++i) {
    std::string input;
    const std::size_t tokens = rng.next_below(20);
    for (std::size_t t = 0; t < tokens; ++t) {
      input += kTokens[rng.next_below(std::size(kTokens))];
      input += rng.chance(0.2) ? "\n" : " ";
    }
    const auto plan = fault::parse_fault_plan(input);
    // A total parser: garbage yields a line-numbered error, never a crash.
    if (!plan.ok()) {
      EXPECT_NE(plan.error().find("line"), std::string::npos);
    }
  }
  // Mutated valid plans (flip characters of a well-formed plan).
  const std::string valid =
      "at=150ms dur=2s link-down core-1 core-2b\n"
      "at=1s dur=500ms dns-brownout example.org mode=servfail\n"
      "at=2s dur=1s link-degrade core-1 core-2a loss=0.2 latency-factor=3\n";
  for (int i = 0; i < 300; ++i) {
    std::string mutated = valid;
    const std::size_t flips = 1 + rng.next_below(5);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>(rng.next_below(256));
    }
    (void)fault::parse_fault_plan(mutated);
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, ScmpParserNeverCrashes) {
  Rng rng(GetParam() + 1000);
  // Pure garbage.
  for (int i = 0; i < 500; ++i) {
    const Bytes raw = random_bytes(rng, 80);
    (void)scion::ScmpMessage::parse(raw);
  }
  // Mutated valid messages: parse must never crash, and anything that does
  // parse must round-trip through serialize() unchanged.
  scion::ScmpMessage msg;
  msg.type = scion::ScmpType::kLinkDown;
  msg.origin_as = scion::IsdAsn{1, 0x110};
  msg.interface = 4;
  msg.original_dst = scion::ScionAddr{scion::IsdAsn{2, 0x220}, net::IpAddr{9}};
  msg.original_dst_port = 443;
  const Bytes valid = msg.serialize();
  for (int i = 0; i < 500; ++i) {
    const Bytes mutated = mutate(rng, valid);
    const auto parsed = scion::ScmpMessage::parse(mutated);
    if (parsed.ok()) {
      EXPECT_EQ(parsed.value().serialize(), mutated);
    }
  }
  SUCCEED();
}

// --------------------------------------------------- data plane hardening --

struct DataplaneWorld {
  std::unique_ptr<browser::World> world = browser::make_remote_world();
  scion::HostId server;
  std::unique_ptr<scion::ScionSocket> server_socket;
  int delivered = 0;

  DataplaneWorld() {
    auto& topo = world->topology();
    server = topo.host_by_name("far-www");
    server_socket = topo.scion_stack(server).bind(
        9000, [this](const scion::ScionEndpoint&, const scion::DataplanePath&, net::PacketView) {
          ++delivered;
        });
  }
};

TEST_P(FuzzSeeds, BorderRouterSurvivesGarbagePackets) {
  DataplaneWorld dp;
  Rng rng(GetParam() + 600);
  auto& topo = dp.world->topology();
  net::Host& client_host = topo.host(dp.world->client);
  for (int i = 0; i < 300; ++i) {
    net::Packet packet;
    packet.proto = net::Protocol::kScion;
    packet.src = client_host.address();
    packet.dst = topo.ip(dp.server);
    packet.payload = random_bytes(rng, 200);
    client_host.send_packet(std::move(packet));
  }
  dp.world->sim().run();
  EXPECT_EQ(dp.delivered, 0);
  std::uint64_t parse_drops = 0;
  for (const auto ia : topo.all_ases()) {
    parse_drops += topo.border_router_stats(ia).drop_parse;
  }
  EXPECT_GT(parse_drops, 0u);
}

TEST_P(FuzzSeeds, BorderRouterRejectsMutatedPaths) {
  DataplaneWorld dp;
  Rng rng(GetParam() + 700);
  auto& topo = dp.world->topology();
  const auto paths = topo.daemon_for(dp.world->client).query_now(topo.as_of(dp.server));
  ASSERT_FALSE(paths.empty());
  auto client = topo.scion_stack(dp.world->client).bind(0, nullptr);
  const scion::ScionEndpoint target{topo.scion_addr(dp.server), 9000};

  int sent_valid = 0;
  for (int i = 0; i < 100; ++i) {
    scion::DataplanePath path = paths[rng.next_below(paths.size())].dataplane();
    // Mutate a random hop field in a random segment.
    const bool corrupt = rng.chance(0.8);
    if (corrupt && !path.segments.empty()) {
      auto& seg = path.segments[rng.next_below(path.segments.size())];
      if (!seg.hops.empty()) {
        auto& hop = seg.hops[rng.next_below(seg.hops.size())];
        switch (rng.next_below(4)) {
          case 0: hop.in_if ^= static_cast<scion::IfaceId>(1 + rng.next_below(7)); break;
          case 1: hop.out_if ^= static_cast<scion::IfaceId>(1 + rng.next_below(7)); break;
          case 2: hop.mac[rng.next_below(hop.mac.size())] ^= 0xff; break;
          case 3: hop.isd_as = scion::IsdAsn{9, 0x999}; break;
        }
      }
    } else if (!corrupt) {
      ++sent_valid;
    }
    client->send_to(target, path, from_string("probe"));
  }
  dp.world->sim().run();
  // Every delivery must correspond to an unmutated path. (A mutation can by
  // astronomical luck produce a valid MAC; with 48-bit MACs that does not
  // happen in 800 trials.)
  EXPECT_EQ(dp.delivered, sent_valid);
}

TEST_P(FuzzSeeds, HostStackSurvivesGarbageScionDelivery) {
  DataplaneWorld dp;
  Rng rng(GetParam() + 800);
  auto& topo = dp.world->topology();
  // Deliver garbage directly to the server host's SCION stack (as if a
  // misbehaving router forwarded junk).
  net::Host& host = topo.host(dp.server);
  for (int i = 0; i < 200; ++i) {
    net::Packet packet;
    packet.proto = net::Protocol::kScion;
    packet.dst = host.address();
    packet.payload = random_bytes(rng, 150);
    // Inject straight into the host's send path: a packet addressed to the
    // host loops through the router back to it.
    host.send_packet(std::move(packet));
  }
  dp.world->sim().run();
  EXPECT_EQ(dp.delivered, 0);
}

// ------------------------------------------------------ segment tampering --

TEST_P(FuzzSeeds, MutatedSegmentsNeverVerify) {
  sim::Simulator sim;
  scion::TopologyConfig config;
  config.seed = GetParam();
  scion::Topology topo(sim, config);
  scion::AsSpec core;
  core.name = "core";
  core.ia = scion::IsdAsn{1, 0x110};
  core.core = true;
  topo.add_as(core);
  scion::AsSpec leaf;
  leaf.name = "leaf";
  leaf.ia = scion::IsdAsn{1, 0x111};
  topo.add_as(leaf);
  scion::AsLinkSpec link;
  link.a = "core";
  link.b = "leaf";
  link.type = scion::LinkType::kParentChild;
  topo.add_link(link);
  topo.finalize();

  const auto& segments = topo.path_infra().down_segments(leaf.ia);
  ASSERT_FALSE(segments.empty());
  Rng rng(GetParam() + 900);
  for (int i = 0; i < 30; ++i) {
    scion::PathSegment seg = segments.front();
    auto& entry = seg.entries[rng.next_below(seg.entries.size())];
    switch (rng.next_below(5)) {
      case 0: entry.ingress_link.latency += nanoseconds(1); break;
      case 1: entry.as_meta.ethics_rating += 0.001; break;
      case 2: entry.hop.out_if ^= 1; break;
      case 3: entry.as_meta.country = "ZZ"; break;
      case 4: entry.signature.revealed[0][0] ^= 1; break;
    }
    EXPECT_FALSE(scion::verify_segment(seg, topo.trust_store())) << "mutation " << i;
  }
}

// ------------------------------------------------------ overload / surge --

/// A client-side proxy under controlled offered load: a local world whose
/// IP-only origin thinks for 400 ms per request, fronted by a SKIP proxy
/// with two legacy connections — service capacity 5 req/s.
struct OverloadHarness {
  std::unique_ptr<browser::World> world;
  std::unique_ptr<dns::Resolver> resolver;
  std::unique_ptr<proxy::SkipProxy> skip;

  struct Tally {
    int ok = 0;                   // 2xx
    int rejected = 0;             // 429 / 503 (admission or shed)
    int timed_out = 0;            // 504 (hung to the deadline)
    int other = 0;
    int missing_retry_after = 0;  // rejections lacking a Retry-After header
  };
  Tally subs;
  Tally docs;

  explicit OverloadHarness(bool shedding, proxy::ProxyConfig config = {},
                           bool remote = false) {
    world = remote ? browser::make_remote_world() : browser::make_local_world();
    if (!remote) {
      world->site("tcpip-fs.local")->set_think_time(milliseconds(400));
      world->site("tcpip-fs.local")->add_text("/r", "resource");
    }
    config.max_legacy_conns_per_origin = 2;
    config.overload.enabled = shedding;
    if (config.overload.max_in_flight == 0) config.overload.max_in_flight = 12;
    auto& topo = world->topology();
    resolver = std::make_unique<dns::Resolver>(world->sim(), world->zone(),
                                               dns::ResolverConfig{});
    skip = std::make_unique<proxy::SkipProxy>(
        world->sim(), topo.host(world->client), topo.scion_stack(world->client),
        topo.daemon_for(world->client), *resolver, config);
  }

  /// Fire-and-forget fetch classified into `tally` when it settles.
  void issue(const char* priority, Duration deadline, Tally& tally,
             const char* client = nullptr) {
    http::HttpRequest request;
    request.target = "http://tcpip-fs.local/r";
    request.headers.set(std::string(proxy::kPriorityHeader), priority);
    if (client != nullptr) {
      request.headers.set(std::string(proxy::kClientHeader), client);
    }
    proxy::ProxyRequestOptions options;
    options.deadline = world->sim().now() + deadline;
    skip->fetch(std::move(request), options, [&tally](proxy::ProxyResult result) {
      const int status = result.response.status;
      if (status >= 200 && status < 300) {
        ++tally.ok;
      } else if (status == 429 || status == 503) {
        ++tally.rejected;
        if (!result.response.headers.get("Retry-After").has_value()) {
          ++tally.missing_retry_after;
        }
      } else if (status == 504) {
        ++tally.timed_out;
      } else {
        ++tally.other;
      }
    });
  }

  /// Blocking fetch (for control endpoints and single probes).
  proxy::ProxyResult fetch(const std::string& target, const char* priority = nullptr) {
    http::HttpRequest request;
    request.target = target;
    if (priority != nullptr) {
      request.headers.set(std::string(proxy::kPriorityHeader), priority);
    }
    proxy::ProxyResult out;
    bool done = false;
    skip->fetch(std::move(request), {}, [&](proxy::ProxyResult r) {
      out = std::move(r);
      done = true;
    });
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(60));
    EXPECT_TRUE(done);
    return out;
  }

  /// Sustained overload: sub-resource arrivals at ~12/s (2.4x capacity) for
  /// 4 s, with a document arriving every 500 ms from t=1s. Every request
  /// carries a 2.5 s deadline.
  void run_surge() {
    sim::Simulator& sim = world->sim();
    for (int i = 0; i < 48; ++i) {
      sim.schedule_after(milliseconds(83 * i),
                         [this] { issue("subresource", milliseconds(2500), subs); });
    }
    for (int i = 0; i < 6; ++i) {
      sim.schedule_after(seconds(1) + milliseconds(500 * i),
                         [this] { issue("document", milliseconds(2500), docs); });
    }
    sim.run_until(sim.now() + seconds(30));
  }
};

TEST(OverloadShedding, SurgeWithSheddingProtectsDocumentsAndNeverHangs) {
  OverloadHarness on(/*shedding=*/true);
  on.run_surge();

  // Every document completes within its deadline; overload is absorbed by
  // fast 429/503 rejections, never by hanging a request to 504.
  EXPECT_EQ(on.docs.ok, 6) << "504s: " << on.docs.timed_out;
  EXPECT_EQ(on.docs.timed_out, 0);
  EXPECT_EQ(on.subs.timed_out, 0);
  EXPECT_GT(on.subs.rejected, 0);
  EXPECT_EQ(on.subs.missing_retry_after, 0);
  EXPECT_EQ(on.docs.missing_retry_after, 0);
  EXPECT_EQ(on.subs.ok + on.subs.rejected + on.subs.timed_out + on.subs.other, 48);

  const proxy::ProxyStats stats = on.skip->stats();
  EXPECT_GT(stats.admitted, 0u);
  EXPECT_GT(stats.rejected_capacity, 0u);

  // Ablation: the same surge with the overload layer disabled collapses —
  // FIFO queues starve the documents to 504 and total goodput drops.
  OverloadHarness off(/*shedding=*/false);
  off.run_surge();
  EXPECT_GT(off.docs.timed_out, 0);
  EXPECT_GT(on.subs.ok + on.docs.ok, off.subs.ok + off.docs.ok);
}

TEST(OverloadAdmission, PerClientTokenBucketRateLimitsWithRetryAfter) {
  proxy::ProxyConfig config;
  config.overload.client_rate = 2.0;  // burst = max(1, rate) = 2
  OverloadHarness h(/*shedding=*/true, config);

  // Five simultaneous requests from one client: the burst of 2 is admitted,
  // the rest bounce with 429 + Retry-After. A different client has its own
  // bucket.
  for (int i = 0; i < 5; ++i) h.issue("subresource", seconds(10), h.subs, "heavy");
  h.issue("subresource", seconds(10), h.docs, "light");
  h.world->sim().run_until(h.world->sim().now() + seconds(2));
  EXPECT_EQ(h.subs.ok, 2);
  EXPECT_EQ(h.subs.rejected, 3);
  EXPECT_EQ(h.subs.missing_retry_after, 0);
  EXPECT_EQ(h.docs.ok, 1);

  // The bucket refills with time: the heavy client is admitted again.
  h.issue("subresource", seconds(10), h.docs, "heavy");
  h.world->sim().run_until(h.world->sim().now() + seconds(2));
  EXPECT_EQ(h.docs.ok, 2);

  const proxy::ProxyStats stats = h.skip->stats();
  EXPECT_EQ(stats.rejected_rate, 3u);
  EXPECT_EQ(stats.rejected_capacity, 0u);
}

TEST(OverloadBrownout, SustainedPressureDisablesScionUpgradeUntilRecovery) {
  proxy::ProxyConfig config;
  config.overload.max_in_flight = 3;
  config.overload.brownout_hold = milliseconds(100);
  OverloadHarness h(/*shedding=*/true, config, /*remote=*/true);
  h.world->site("www.far.example")->add_text("/x", "far content");
  sim::Simulator& sim = h.world->sim();
  proxy::OverloadController& overload = h.skip->overload();

  // Pin the proxy at its in-flight cap long enough for the pressure EWMA to
  // cross the brownout threshold and hold there.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(overload.admit("pin", proxy::RequestPriority::kDocument).verdict,
              proxy::OverloadController::Verdict::kAdmit);
  }
  sim.run_until(sim.now() + milliseconds(300));
  (void)overload.brownout();  // pressure catches up; hold timer starts
  sim.run_until(sim.now() + milliseconds(150));
  EXPECT_TRUE(overload.brownout());

  // Hysteresis: dropping to 2/3 utilization is above the exit threshold, so
  // brownout stays in force...
  overload.release();
  sim.run_until(sim.now() + milliseconds(200));
  EXPECT_TRUE(overload.brownout());
  const http::HttpResponse health = h.fetch("/skip/health").response;
  const std::string health_body(reinterpret_cast<const char*>(health.body.data()),
                                health.body.size());
  EXPECT_NE(health_body.find("\"brownout\":true"), std::string::npos);

  // ...and an opportunistic fetch of a SCION-capable origin skips the
  // upgrade entirely, riding legacy IP without a fallback attempt.
  const proxy::ProxyResult result = h.fetch("http://www.far.example/x", "document");
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kIp);
  EXPECT_FALSE(result.fell_back);
  EXPECT_EQ(result.scion_attempts, 0u);
  EXPECT_EQ(h.skip->metrics().counter("overload.brownout_bypass").value(), 1u);

  // Pressure drains: brownout exits and SCION upgrades resume.
  overload.release();
  overload.release();
  sim.run_until(sim.now() + seconds(1));
  EXPECT_FALSE(overload.brownout());
  EXPECT_EQ(h.skip->metrics().counter("overload.brownout_entered").value(), 1u);
  EXPECT_EQ(h.skip->metrics().counter("overload.brownout_exited").value(), 1u);
  EXPECT_EQ(h.fetch("http://www.far.example/x").transport,
            proxy::TransportUsed::kScion);
}

TEST(SurgeVerb, FaultPlanDrivesLoadGeneratorThroughProxy) {
  OverloadHarness h(/*shedding=*/true, {}, /*remote=*/true);
  h.world->site("www.near.example")->add_text("/", "near home");
  browser::SurgeLoad surge(*h.world, *h.skip);
  ASSERT_TRUE(
      h.world->schedule_chaos("at=10ms dur=1s surge www.near.example rate=50 conc=8")
          .ok());
  h.world->sim().run_until(h.world->sim().now() + seconds(8));

  const browser::SurgeLoad::Stats& stats = surge.stats();
  EXPECT_GT(stats.launched, 20u);
  EXPECT_LE(stats.launched, 60u);
  // Every launched request settles one way or another once the surge ends.
  EXPECT_EQ(stats.launched,
            stats.completed + stats.rejected + stats.timed_out + stats.failed);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(surge.in_flight(), 0u);
}

}  // namespace
}  // namespace pan
