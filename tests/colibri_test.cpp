// Tests for Colibri-lite bandwidth reservations: admission control, token
// bucket policing, lifetimes, and end-to-end priority under congestion.
#include <gtest/gtest.h>

#include "core/scenarios.hpp"
#include "scion/colibri.hpp"

namespace pan::scion {
namespace {

using browser::make_remote_world;

struct QosFixture {
  std::unique_ptr<browser::World> world;
  Topology* topo = nullptr;
  Path best;

  explicit QosFixture(double core_bw = 10e9) {
    browser::WorldConfig config;
    config.seed = 19;
    config.link_jitter = 0;
    config.core_bandwidth_bps = core_bw;
    world = make_remote_world(config);
    topo = &world->topology();
    const auto paths =
        topo->daemon_for(world->client).query_now(topo->as_by_name("server-as"));
    best = paths.front();
  }

  [[nodiscard]] TimePoint now() const { return world->sim().now(); }
};

TEST(ColibriTest, AdmitsWithinBudgetAndDeniesBeyond) {
  QosFixture fx(100e6);  // 100 Mbps core links, 50% reservable = 50 Mbps
  ReservationManager& manager = fx.topo->reservations();
  const auto first = manager.reserve(fx.best, 30e6, fx.now());
  ASSERT_TRUE(first.ok()) << first.error();
  const auto second = manager.reserve(fx.best, 30e6, fx.now());
  EXPECT_FALSE(second.ok());  // 60 > 50 Mbps budget
  const auto third = manager.reserve(fx.best, 15e6, fx.now());
  EXPECT_TRUE(third.ok());
  EXPECT_EQ(manager.active_reservations(fx.now()), 2u);
}

TEST(ColibriTest, ReleaseFreesBudget) {
  QosFixture fx(100e6);
  ReservationManager& manager = fx.topo->reservations();
  const auto first = manager.reserve(fx.best, 45e6, fx.now());
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(manager.reserve(fx.best, 45e6, fx.now()).ok());
  manager.release(first.value(), fx.now());
  EXPECT_TRUE(manager.reserve(fx.best, 45e6, fx.now()).ok());
}

TEST(ColibriTest, ExpiryFreesBudgetAndRenewExtends) {
  QosFixture fx(100e6);
  ReservationManager& manager = fx.topo->reservations();
  const auto id = manager.reserve(fx.best, 45e6, fx.now(), seconds(10));
  ASSERT_TRUE(id.ok());
  // Renew before expiry works.
  EXPECT_TRUE(manager.renew(id.value(), fx.now() + seconds(5), seconds(10)).ok());
  // After expiry: budget freed, renewal refused.
  const TimePoint later = fx.now() + seconds(30);
  EXPECT_EQ(manager.active_reservations(later), 0u);
  EXPECT_TRUE(manager.reserve(fx.best, 45e6, later).ok());
  EXPECT_FALSE(manager.renew(id.value(), later, seconds(10)).ok());
}

TEST(ColibriTest, PolicingAllowsAtRateAndDropsBursts) {
  QosFixture fx(100e6);
  ReservationManager& manager = fx.topo->reservations();
  const auto id = manager.reserve(fx.best, 8e6, fx.now());  // 1 MB/s
  ASSERT_TRUE(id.ok());
  const IsdAsn as = fx.best.hops().front().isd_as;
  // Burst window is 50 ms -> 50 kB of tokens.
  EXPECT_EQ(manager.police(id.value(), as, fx.now(), 40'000), PoliceResult::kAllow);
  EXPECT_EQ(manager.police(id.value(), as, fx.now(), 40'000), PoliceResult::kOverRate);
  // After 100 ms the bucket refills (capped at the 50 kB burst).
  EXPECT_EQ(manager.police(id.value(), as, fx.now() + milliseconds(100), 40'000),
            PoliceResult::kAllow);
}

TEST(ColibriTest, PolicingRejectsUnknownWrongAsAndExpired) {
  QosFixture fx(100e6);
  ReservationManager& manager = fx.topo->reservations();
  EXPECT_EQ(manager.police(999, fx.best.hops().front().isd_as, fx.now(), 100),
            PoliceResult::kUnknownReservation);
  const auto id = manager.reserve(fx.best, 8e6, fx.now(), seconds(5));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(manager.police(id.value(), IsdAsn{9, 0x999}, fx.now(), 100),
            PoliceResult::kWrongAs);
  EXPECT_EQ(manager.police(id.value(), fx.best.hops().front().isd_as,
                           fx.now() + seconds(6), 100),
            PoliceResult::kUnknownReservation);  // lazily expired
}

TEST(ColibriTest, IntraAsPathRejected) {
  QosFixture fx;
  ReservationManager& manager = fx.topo->reservations();
  EXPECT_FALSE(manager.reserve(Path::local(IsdAsn{1, 1}), 1e6, fx.now()).ok());
  EXPECT_FALSE(manager.reserve(fx.best, -5, fx.now()).ok());
}

TEST(ColibriTest, ForgedReservationIdDroppedByRouters) {
  QosFixture fx;
  auto& topo = *fx.topo;
  const auto server = topo.host_by_name("far-www");
  int received = 0;
  auto srv = topo.scion_stack(server).bind(
      9000, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView) { ++received; });
  auto client = topo.scion_stack(fx.world->client).bind(0, nullptr);
  client->send_to(ScionEndpoint{topo.scion_addr(server), 9000}, fx.best.dataplane(),
                  from_string("forged"), /*reservation=*/0xDEAD);
  fx.world->sim().run();
  EXPECT_EQ(received, 0);
  std::uint64_t drops = 0;
  for (const auto ia : topo.all_ases()) {
    drops += topo.border_router_stats(ia).drop_reservation;
  }
  EXPECT_GE(drops, 1u);
}

TEST(ColibriTest, ReservedFlowSurvivesBestEffortFlood) {
  // 20 Mbps core links; a best-effort flood saturates the path. The
  // reserved 4 Mbps flow keeps its delivery rate; an identical best-effort
  // flow loses packets to queue drops.
  QosFixture fx(20e6);
  auto& topo = *fx.topo;
  auto& sim = fx.world->sim();
  const auto server = topo.host_by_name("far-www");
  const auto flooder_host = topo.host_by_name("far-static");

  // 1000 B payload every 2 ms is ~5 Mbps on the wire once SCION headers and
  // framing are added; reserve 6 Mbps so the policer has headroom.
  const auto id = topo.reservations().reserve(fx.best, 6e6, sim.now(), seconds(300));
  ASSERT_TRUE(id.ok()) << id.error();

  int reserved_received = 0;
  int be_received = 0;
  auto srv_reserved = topo.scion_stack(server).bind(
      9001, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView) { ++reserved_received; });
  auto srv_be = topo.scion_stack(server).bind(
      9002, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView) { ++be_received; });
  auto srv_flood = topo.scion_stack(server).bind(
      9003, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView) {});

  auto client = topo.scion_stack(fx.world->client).bind(0, nullptr);
  // The flood comes from a different host but shares the core links via the
  // same best path shape; simplest: flood from the client too.
  (void)flooder_host;

  // Schedule: every 2 ms for 1 s, send 1000-byte probes on both flows and a
  // 30-packet flood burst (-> ~120 Mbps offered on a 20 Mbps link).
  constexpr int kProbes = 500;
  for (int i = 0; i < kProbes; ++i) {
    sim.schedule_after(milliseconds(2 * i), [&, i] {
      // Interleave the probes inside the flood burst so neither flow gets a
      // deterministic head-of-burst advantage in the FIFO queue.
      for (int f = 0; f < 30; ++f) {
        if (f == 10) {
          client->send_to(ScionEndpoint{topo.scion_addr(server), 9001},
                          fx.best.dataplane(), Bytes(1000, 0x01), id.value());
        }
        if (f == 20) {
          client->send_to(ScionEndpoint{topo.scion_addr(server), 9002},
                          fx.best.dataplane(), Bytes(1000, 0x02));
        }
        client->send_to(ScionEndpoint{topo.scion_addr(server), 9003}, fx.best.dataplane(),
                        Bytes(1000, 0x03));
      }
      (void)i;
    });
  }
  sim.run();

  // The reserved flow (4 Mbps = 1000 B / 2 ms exactly) is delivered in full;
  // the best-effort probe flow loses heavily to the flood.
  EXPECT_EQ(reserved_received, kProbes);
  EXPECT_LT(be_received, kProbes / 2);
}

}  // namespace
}  // namespace pan::scion
