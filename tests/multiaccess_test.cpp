// Multi-access resilience: intent-aware access picks on the MultiAccessHost
// bundle, probe-driven health transitions (including the access-down /
// access-degrade fault verbs), the SKIP proxy's mid-load failover of
// in-flight latency-critical fetches to a surviving access, strict-mode
// fail-closed when every access is down, bulk striping asymmetry, a
// randomized access-flap property suite, and the multipath connection's
// bounded re-dial.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "http/multipath.hpp"
#include "net/multi_access.hpp"
#include "util/rng.hpp"

namespace pan::proxy {
namespace {

using browser::make_remote_world;
using browser::World;
using net::AccessHealth;
using net::FetchIntent;

browser::WorldConfig multi_access_config() {
  browser::WorldConfig config;
  config.multi_access = true;
  return config;
}

/// Kills (or restores) a host's access link — interface 0 — directly,
/// bypassing the fault plan, for tests that need exact cut timing.
void set_access_up(World& world, const std::string& host, bool up) {
  net::Network& net = world.topology().network();
  const net::NodeId node = net.find_node(host);
  ASSERT_NE(node, net::kInvalidNodeId) << host;
  net.set_link_up(node, 0, up);
}

// ------------------------------------------------- intent taxonomy --------

TEST(FetchIntent, RoundTripsAndRejectsGarbage) {
  EXPECT_STREQ(net::to_string(FetchIntent::kLatencyCritical), "latency-critical");
  EXPECT_STREQ(net::to_string(FetchIntent::kBulk), "bulk");
  EXPECT_STREQ(net::to_string(FetchIntent::kBackground), "background");
  EXPECT_EQ(net::parse_fetch_intent("latency-critical"), FetchIntent::kLatencyCritical);
  EXPECT_EQ(net::parse_fetch_intent("bulk"), FetchIntent::kBulk);
  EXPECT_EQ(net::parse_fetch_intent("background"), FetchIntent::kBackground);
  EXPECT_FALSE(net::parse_fetch_intent("").has_value());
  EXPECT_FALSE(net::parse_fetch_intent("urgent").has_value());
}

// ------------------------------------------------- MultiAccessHost --------

struct BundleFixture {
  std::unique_ptr<World> world;
  net::MultiAccessHost bundle;

  explicit BundleFixture(net::MultiAccessConfig config = {})
      : world(make_remote_world(multi_access_config())),
        bundle(world->sim(), config) {
    auto& topo = world->topology();
    bundle.add_access("wired", topo.host(world->client));
    bundle.add_access("lte", topo.host(*world->client_lte));
  }
};

TEST(MultiAccessHost, PrimaryWinsDeterministicallyBeforeProbes) {
  BundleFixture fx;
  // No probe has run: every EWMA is zero. Latency-critical must still pick
  // the first-registered access, background the spare, and striping must
  // treat the accesses as equals.
  EXPECT_EQ(fx.bundle.pick(FetchIntent::kLatencyCritical), "wired");
  EXPECT_EQ(fx.bundle.pick(FetchIntent::kBackground), "lte");
  const auto weights = fx.bundle.striping_weights();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0].second, weights[1].second);
}

TEST(MultiAccessHost, ProbesMeasureAsymmetricAccesses) {
  BundleFixture fx;
  fx.bundle.start_probes();
  fx.world->sim().run_for(seconds(1));
  // Wired access link is 200us, LTE 15ms: probe RTT (2x link latency,
  // reflected off the AS router) must separate them cleanly.
  EXPECT_GT(fx.bundle.ewma_rtt("wired").nanos(), 0);
  EXPECT_LT(fx.bundle.ewma_rtt("wired"), milliseconds(5));
  EXPECT_GT(fx.bundle.ewma_rtt("lte"), milliseconds(20));
  EXPECT_EQ(fx.bundle.pick(FetchIntent::kLatencyCritical), "wired");
  EXPECT_EQ(fx.bundle.pick(FetchIntent::kBackground), "lte");
  EXPECT_EQ(fx.bundle.health("wired"), AccessHealth::kHealthy);
  EXPECT_EQ(fx.bundle.health("lte"), AccessHealth::kHealthy);
}

TEST(MultiAccessHost, StripingWeightsClampedToRatio) {
  net::MultiAccessConfig config;
  config.max_weight_ratio = 4.0;
  BundleFixture fx(config);
  fx.bundle.start_probes();
  fx.world->sim().run_for(seconds(1));
  // Raw inverse RTT would be ~75:1 for 200us vs 15ms; the clamp keeps the
  // slow-but-fat access at a meaningful share.
  const auto weights = fx.bundle.striping_weights();
  ASSERT_EQ(weights.size(), 2u);
  double sum = 0;
  for (const auto& [name, w] : weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  const double hi = std::max(weights[0].second, weights[1].second);
  const double lo = std::min(weights[0].second, weights[1].second);
  EXPECT_GT(lo, 0.0);
  EXPECT_LE(hi / lo, 4.0 + 1e-9);
  // The fast access still pulls the larger share.
  EXPECT_GT(weights[0].second, weights[1].second);  // registration order: wired first
}

TEST(MultiAccessHost, BulkStripingVisitsEveryUsableAccess) {
  BundleFixture fx;
  fx.bundle.start_probes();
  fx.world->sim().run_for(seconds(1));
  std::map<std::string, int> picks;
  for (int i = 0; i < 20; ++i) ++picks[fx.bundle.pick(FetchIntent::kBulk)];
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_GT(picks["wired"], picks["lte"]);  // weighted toward the fast access
  EXPECT_GE(picks["lte"], 2);               // but the clamp guarantees a share
}

TEST(MultiAccessHost, PickAvoidsTheAccessThatJustFailed) {
  BundleFixture fx;
  fx.bundle.start_probes();
  fx.world->sim().run_for(seconds(1));
  EXPECT_EQ(fx.bundle.pick(FetchIntent::kLatencyCritical, "wired"), "lte");
  EXPECT_EQ(fx.bundle.pick(FetchIntent::kBackground, "lte"), "wired");
}

TEST(MultiAccessHost, PassiveFailuresDegradeAndSuccessRestores) {
  net::MultiAccessConfig config;
  config.degrade_after_failures = 3;
  BundleFixture fx(config);
  fx.bundle.start_probes();
  fx.world->sim().run_for(milliseconds(500));
  for (int i = 0; i < 3; ++i) {
    fx.bundle.record_result("wired", false, Duration::zero());
  }
  EXPECT_EQ(fx.bundle.health("wired"), AccessHealth::kDegraded);
  // Degraded by *failing fetches*: avoided by every intent — a latency
  // comparison cannot vouch for an access whose fetches are erroring.
  EXPECT_EQ(fx.bundle.pick(FetchIntent::kLatencyCritical), "lte");
  EXPECT_EQ(fx.bundle.pick(FetchIntent::kBackground), "lte");
  fx.bundle.record_result("wired", true, milliseconds(1));
  EXPECT_EQ(fx.bundle.health("wired"), AccessHealth::kHealthy);
}

TEST(MultiAccessHost, FaultVerbDrivesDownAndRecovery) {
  BundleFixture fx;
  fx.bundle.start_probes();
  std::vector<std::pair<std::string, AccessHealth>> transitions;
  const std::uint64_t sub = fx.bundle.subscribe(
      [&](const std::string& name, AccessHealth, AccessHealth cur) {
        transitions.emplace_back(name, cur);
      });
  // The access-down verb cuts the browser host's access link for 1s; the
  // probe loop must observe the outage (3 misses) and the recovery (2 hits).
  ASSERT_TRUE(fx.world->schedule_chaos("at=500ms dur=1s access-down browser").ok());
  fx.world->sim().run_for(milliseconds(1400));
  EXPECT_EQ(fx.bundle.health("wired"), AccessHealth::kDown);
  EXPECT_EQ(fx.bundle.pick(FetchIntent::kLatencyCritical), "lte");
  fx.world->sim().run_for(milliseconds(1200));
  EXPECT_EQ(fx.bundle.health("wired"), AccessHealth::kHealthy);
  const std::pair<std::string, AccessHealth> down{"wired", AccessHealth::kDown};
  const std::pair<std::string, AccessHealth> up{"wired", AccessHealth::kHealthy};
  EXPECT_NE(std::find(transitions.begin(), transitions.end(), down), transitions.end());
  EXPECT_NE(std::find(transitions.begin(), transitions.end(), up), transitions.end());
  fx.bundle.unsubscribe(sub);
  EXPECT_NE(fx.bundle.snapshot_json().find("\"wired\""), std::string::npos);
}

// --------------------------------------------- proxy integration ----------

struct ProxyFixture {
  std::unique_ptr<World> world;
  std::unique_ptr<dns::Resolver> resolver;
  std::unique_ptr<SkipProxy> proxy;

  explicit ProxyFixture(ProxyConfig config = {}) {
    world = make_remote_world(multi_access_config());
    auto& topo = world->topology();
    resolver = std::make_unique<dns::Resolver>(world->sim(), world->zone(),
                                               dns::ResolverConfig{});
    proxy = std::make_unique<SkipProxy>(world->sim(), topo.host(world->client),
                                        topo.scion_stack(world->client),
                                        topo.daemon_for(world->client), *resolver, config);
    world->injector().set_metrics(&proxy->metrics());
    proxy->add_access("lte", topo.host(*world->client_lte),
                      topo.scion_stack(*world->client_lte),
                      topo.daemon_for(*world->client_lte));
  }

  void fetch_async(const std::string& url, const std::string& intent,
                   std::function<void(ProxyResult)> on_result,
                   ProxyRequestOptions options = {}) {
    http::HttpRequest request;
    request.target = url;
    if (!intent.empty()) {
      request.headers.set(std::string(net::kIntentHeader), intent);
    }
    proxy->fetch(std::move(request), options, std::move(on_result));
  }

  ProxyResult fetch(const std::string& url, const std::string& intent = {},
                    ProxyRequestOptions options = {}) {
    ProxyResult out;
    bool done = false;
    fetch_async(url, intent, [&](ProxyResult r) {
      out = std::move(r);
      done = true;
    }, options);
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(60));
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(MultiAccessProxy, IntentsMapToAccesses) {
  ProxyFixture fx;
  fx.world->site("www.far.example")->add_blob("/doc.html", 8'000);
  fx.world->sim().run_for(seconds(1));  // let the probe loop measure

  const ProxyResult doc = fx.fetch("http://www.far.example/doc.html", "latency-critical");
  EXPECT_TRUE(doc.response.ok());
  EXPECT_EQ(doc.access, "primary");
  EXPECT_EQ(doc.response.headers.get("X-Skip-Access").value_or(""), "primary");

  const ProxyResult bg = fx.fetch("http://www.far.example/doc.html", "background");
  EXPECT_TRUE(bg.response.ok());
  EXPECT_EQ(bg.access, "lte");
}

TEST(MultiAccessProxy, PriorityClassDerivesIntentWhenHeaderAbsent) {
  ProxyFixture fx;
  fx.world->site("www.far.example")->add_blob("/doc.html", 8'000);
  fx.world->sim().run_for(seconds(1));
  http::HttpRequest request;
  request.target = "http://www.far.example/doc.html";
  request.headers.set(std::string(kPriorityHeader), "document");
  ProxyResult out;
  bool done = false;
  fx.proxy->fetch(std::move(request), {}, [&](ProxyResult r) {
    out = std::move(r);
    done = true;
  });
  fx.world->sim().run_until_condition([&] { return done; },
                                      fx.world->sim().now() + seconds(60));
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.response.ok());
  EXPECT_EQ(out.access, "primary");  // documents are latency-critical
}

TEST(MultiAccessProxy, BulkFetchesStripeAcrossAccesses) {
  ProxyFixture fx;
  auto& site = *fx.world->site("www.far.example");
  for (int i = 0; i < 12; ++i) {
    site.add_blob("/obj" + std::to_string(i) + ".bin", 12'000);
  }
  fx.world->sim().run_for(seconds(1));
  std::set<std::string> accesses;
  for (int i = 0; i < 12; ++i) {
    const ProxyResult r =
        fx.fetch("http://www.far.example/obj" + std::to_string(i) + ".bin", "bulk");
    EXPECT_TRUE(r.response.ok());
    accesses.insert(r.access);
  }
  EXPECT_EQ(accesses, (std::set<std::string>{"primary", "lte"}));
}

TEST(MultiAccessProxy, IntentBlindModeStripesEverything) {
  ProxyConfig config;
  config.intent_aware = false;
  ProxyFixture fx(config);
  fx.world->site("www.far.example")->add_blob("/doc.html", 8'000);
  fx.world->sim().run_for(seconds(1));
  // Intent-blind striping sends even latency-critical fetches round the WRR
  // wheel: over a batch, some documents land on the slow access.
  std::set<std::string> accesses;
  for (int i = 0; i < 12; ++i) {
    const ProxyResult r = fx.fetch("http://www.far.example/doc.html", "latency-critical");
    EXPECT_TRUE(r.response.ok());
    accesses.insert(r.access);
  }
  EXPECT_EQ(accesses, (std::set<std::string>{"primary", "lte"}));
}

TEST(MultiAccessProxy, PinOverridesIntentMapping) {
  ProxyConfig config;
  config.pin_intent_access["background"] = "primary";
  ProxyFixture fx(config);
  fx.world->site("www.far.example")->add_blob("/doc.html", 8'000);
  fx.world->sim().run_for(seconds(1));
  const ProxyResult bg = fx.fetch("http://www.far.example/doc.html", "background");
  EXPECT_TRUE(bg.response.ok());
  EXPECT_EQ(bg.access, "primary");
}

TEST(MultiAccessProxy, MidLoadAccessFailureMigratesWithinDeadline) {
  ProxyConfig config;
  // Fast probe loop so failover detection fits inside the transfer.
  config.access.probe_interval = milliseconds(20);
  config.access.probe_timeout = milliseconds(50);
  config.access.down_after_misses = 2;
  ProxyFixture fx(config);
  fx.world->site("www.far.example")->add_blob("/big.bin", 2'000'000);
  fx.world->sim().run_for(seconds(1));

  const TimePoint started = fx.world->sim().now();
  ProxyRequestOptions options;
  options.deadline = started + seconds(10);
  ProxyResult out;
  bool done = false;
  fx.fetch_async("http://www.far.example/big.bin", "latency-critical",
                 [&](ProxyResult r) {
                   out = std::move(r);
                   done = true;
                 },
                 options);
  // Cut the primary access 5ms into the transfer (the 2MB body takes ~16ms
  // on the wired link alone, so the fetch is mid-flight).
  fx.world->sim().schedule_after(milliseconds(5), [&] {
    set_access_up(*fx.world, "browser", false);
  });
  fx.world->sim().run_until_condition([&] { return done; }, started + seconds(30));
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.response.ok()) << out.response.status << " " << out.outcome;
  EXPECT_EQ(out.access, "lte");  // finished on the surviving access
  EXPECT_LE(fx.world->sim().now(), *options.deadline);
  const ProxyStats stats = fx.proxy->stats();
  EXPECT_GE(stats.access_down_events, 1u);
  EXPECT_GE(stats.access_failovers, 1u);
  EXPECT_EQ(stats.strict_unavailable, 0u);
}

TEST(MultiAccessProxy, AllAccessesDownFailsClosed) {
  ProxyConfig config;
  config.access.probe_interval = milliseconds(20);
  config.access.probe_timeout = milliseconds(50);
  config.access.down_after_misses = 2;
  ProxyFixture fx(config);
  fx.world->site("www.far.example")->add_blob("/doc.html", 8'000);
  fx.world->sim().run_for(seconds(1));
  set_access_up(*fx.world, "browser", false);
  set_access_up(*fx.world, "browser-lte", false);
  fx.world->sim().run_for(milliseconds(500));  // probes declare both down

  ProxyRequestOptions strict;
  strict.strict = true;
  const ProxyResult s = fx.fetch("http://www.far.example/doc.html", "latency-critical",
                                 strict);
  // Strict mode never downgrades: fail closed with 503 + Retry-After.
  EXPECT_EQ(s.response.status, 503);
  EXPECT_TRUE(s.response.headers.get("Retry-After").has_value());
  EXPECT_NE(s.transport, TransportUsed::kIp);
  EXPECT_GE(fx.proxy->stats().strict_unavailable, 1u);

  const ProxyResult lax = fx.fetch("http://www.far.example/doc.html", "bulk");
  EXPECT_EQ(lax.response.status, 503);
  EXPECT_TRUE(lax.response.headers.get("Retry-After").has_value());

  // Restore an access: the proxy must recover without a restart.
  set_access_up(*fx.world, "browser-lte", true);
  fx.world->sim().run_for(milliseconds(500));
  const ProxyResult back = fx.fetch("http://www.far.example/doc.html", "latency-critical");
  EXPECT_TRUE(back.response.ok());
  EXPECT_EQ(back.access, "lte");
}

TEST(MultiAccessProxy, RandomAccessFlapsNeverHangRequests) {
  for (const std::uint64_t seed : {7ULL, 21ULL, 63ULL}) {
    ProxyConfig config;
    config.access.probe_interval = milliseconds(20);
    config.access.probe_timeout = milliseconds(50);
    config.access.down_after_misses = 2;
    ProxyFixture fx(config);
    auto& site = *fx.world->site("www.far.example");
    for (int i = 0; i < 8; ++i) {
      site.add_blob("/obj" + std::to_string(i) + ".bin", 60'000);
    }
    fx.world->sim().run_for(seconds(1));
    Rng rng(seed);
    // Random flap schedule over both accesses for the next ~3s.
    const std::string hosts[] = {"browser", "browser-lte"};
    for (const std::string& host : hosts) {
      bool up = true;
      Duration when = milliseconds(50 + rng.next_below(200));
      while (when < seconds(3)) {
        up = !up;
        const bool target = up;
        fx.world->sim().schedule_after(when, [&fx, host, target] {
          set_access_up(*fx.world, host, target);
        });
        when = when + milliseconds(150 + rng.next_below(700));
      }
      // Whatever the flap schedule did, end with the link up.
      fx.world->sim().schedule_after(seconds(3), [&fx, host] {
        set_access_up(*fx.world, host, true);
      });
    }
    const char* intents[] = {"latency-critical", "bulk", "background"};
    int done = 0;
    int responded = 0;
    const TimePoint begun = fx.world->sim().now();
    for (int i = 0; i < 8; ++i) {
      const std::string url = "http://www.far.example/obj" + std::to_string(i) + ".bin";
      const std::string intent = intents[rng.next_below(3)];
      ProxyRequestOptions options;
      options.deadline = begun + seconds(8);
      fx.world->sim().schedule_after(milliseconds(rng.next_below(2500)), [&, url, intent,
                                                                          options] {
        fx.fetch_async(url, intent, [&](ProxyResult r) {
          ++done;
          // The invariant: every request terminates with an explicit
          // response — success, shed, or timeout — never a silent hang.
          if (r.response.status > 0) ++responded;
        }, options);
      });
    }
    fx.world->sim().run_until_condition([&] { return done == 8; }, begun + seconds(20));
    EXPECT_EQ(done, 8) << "seed " << seed;
    EXPECT_EQ(responded, done) << "seed " << seed;
  }
}

// --------------------------------------------- multipath re-dial ----------

struct RedialFixture {
  std::unique_ptr<World> world;
  scion::HostId rp;
  std::vector<scion::Path> paths;

  RedialFixture() {
    browser::WorldConfig config;
    config.seed = 17;
    world = make_remote_world(config);
    auto& site = *world->site("www.far.example");
    for (int i = 0; i < 16; ++i) {
      site.add_blob("/obj" + std::to_string(i) + ".bin", 10'000);
    }
    auto& topo = world->topology();
    rp = topo.host_by_name("far-rp1");
    for (const auto& p : topo.daemon_for(world->client).query_now(topo.as_of(rp))) {
      if (p.link_count() == 3) paths.push_back(p);  // the disjoint pair
    }
  }

  [[nodiscard]] http::MultipathScionConnection make_conn(http::MultipathConfig config) {
    auto& topo = world->topology();
    return http::MultipathScionConnection(
        topo.scion_stack(world->client),
        scion::ScionEndpoint{topo.scion_addr(rp), 80}, paths, config);
  }

  bool fetch_one(http::MultipathScionConnection& conn, int i,
                 std::optional<net::FetchIntent> intent = std::nullopt) {
    bool ok = false;
    bool done = false;
    http::HttpRequest req;
    req.target = "/obj" + std::to_string(i % 16) + ".bin";
    req.headers.set("Host", "www.far.example");
    const auto cb = [&](Result<http::HttpResponse> r) {
      ok = r.ok() && r.value().ok();
      done = true;
    };
    if (intent.has_value()) {
      conn.fetch(req, *intent, cb);
    } else {
      conn.fetch(req, cb);
    }
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(60));
    return ok;
  }
};

TEST(MultipathRedial, DeadChannelIsRedialedAndRejoinsStriping) {
  RedialFixture fx;
  ASSERT_EQ(fx.paths.size(), 2u);
  http::MultipathConfig config;
  config.schedule = http::MultipathConfig::Schedule::kRoundRobin;
  config.max_redials = 3;
  config.redial_backoff = milliseconds(10);
  auto conn = fx.make_conn(config);
  EXPECT_TRUE(fx.fetch_one(conn, 0));
  EXPECT_TRUE(fx.fetch_one(conn, 1));
  EXPECT_EQ(conn.usable_count(), 2u);

  conn.channel_transport(0).close("test: channel died");
  EXPECT_EQ(conn.usable_count(), 1u);
  // The next fetch rides the survivor and queues the re-dial.
  EXPECT_TRUE(fx.fetch_one(conn, 2));
  fx.world->sim().run_for(milliseconds(100));
  EXPECT_EQ(conn.usable_count(), 2u);
  const auto stats = conn.channel_stats();
  EXPECT_EQ(stats[0].redials, 1u);

  // The re-dialed channel carries traffic again.
  const std::uint64_t before = stats[0].requests;
  for (int i = 3; i < 7; ++i) EXPECT_TRUE(fx.fetch_one(conn, i));
  EXPECT_GT(conn.channel_stats()[0].requests, before);
}

TEST(MultipathRedial, RedialBudgetIsBounded) {
  RedialFixture fx;
  http::MultipathConfig config;
  config.schedule = http::MultipathConfig::Schedule::kRoundRobin;
  config.max_redials = 1;
  config.redial_backoff = milliseconds(10);
  auto conn = fx.make_conn(config);
  EXPECT_TRUE(fx.fetch_one(conn, 0));

  conn.channel_transport(0).close("test: first death");
  EXPECT_TRUE(fx.fetch_one(conn, 1));  // queues re-dial 1/1
  fx.world->sim().run_for(milliseconds(100));
  ASSERT_EQ(conn.usable_count(), 2u);

  // No fetch succeeded over channel 0 since the re-dial, so the budget is
  // still spent: a second death must NOT re-dial again.
  conn.channel_transport(0).close("test: second death");
  EXPECT_TRUE(fx.fetch_one(conn, 2));
  fx.world->sim().run_for(milliseconds(300));
  EXPECT_EQ(conn.usable_count(), 1u);
  EXPECT_EQ(conn.channel_stats()[0].redials, 1u);
}

TEST(MultipathRedial, SuccessRefillsTheBudget) {
  RedialFixture fx;
  http::MultipathConfig config;
  config.schedule = http::MultipathConfig::Schedule::kRoundRobin;
  config.max_redials = 1;
  config.redial_backoff = milliseconds(10);
  auto conn = fx.make_conn(config);
  EXPECT_TRUE(fx.fetch_one(conn, 0));

  conn.channel_transport(0).close("test: first death");
  EXPECT_TRUE(fx.fetch_one(conn, 1));
  fx.world->sim().run_for(milliseconds(100));
  ASSERT_EQ(conn.usable_count(), 2u);
  // Drive fetches until one lands on the re-dialed channel 0 (round-robin
  // reaches it within two picks), refilling its budget.
  for (int i = 2; i < 4; ++i) EXPECT_TRUE(fx.fetch_one(conn, i));
  conn.channel_transport(0).close("test: second death");
  EXPECT_TRUE(fx.fetch_one(conn, 4));
  fx.world->sim().run_for(milliseconds(100));
  EXPECT_EQ(conn.usable_count(), 2u);  // budget was refilled; re-dialed again
}

TEST(MultipathIntent, IntentPicksChannelByPathLatency) {
  RedialFixture fx;
  ASSERT_EQ(fx.paths.size(), 2u);
  http::MultipathConfig config;
  config.schedule = http::MultipathConfig::Schedule::kRoundRobin;
  auto conn = fx.make_conn(config);
  // paths[0] is the fast (30ms) path, paths[1] the slow (84ms) one: daemon
  // results are latency-sorted.
  ASSERT_LT(fx.paths[0].meta().latency, fx.paths[1].meta().latency);
  EXPECT_TRUE(fx.fetch_one(conn, 0, net::FetchIntent::kLatencyCritical));
  EXPECT_TRUE(fx.fetch_one(conn, 1, net::FetchIntent::kBackground));
  const auto stats = conn.channel_stats();
  EXPECT_EQ(stats[0].requests, 1u);  // latency-critical rode the fast path
  EXPECT_EQ(stats[1].requests, 1u);  // background rode the slow path
}

}  // namespace
}  // namespace pan::proxy
