// Tests for the Path Policy Language: lexer, hop predicates, ACLs,
// sequences, requirements, parser, ordering, policy sets, and geofencing.
#include <gtest/gtest.h>

#include "ppl/geofence.hpp"
#include "util/rng.hpp"
#include "ppl/lexer.hpp"
#include "ppl/parser.hpp"

namespace pan::ppl {
namespace {

// Builds a synthetic path through the given (isd, asn) hops.
scion::Path make_path(const std::vector<std::pair<scion::Isd, scion::Asn>>& ases,
                      scion::PathMetadata meta = {}) {
  std::vector<scion::PathHop> hops;
  for (std::size_t i = 0; i < ases.size(); ++i) {
    scion::PathHop hop;
    hop.isd_as = scion::IsdAsn{ases[i].first, ases[i].second};
    hop.ingress = i == 0 ? 0 : static_cast<scion::IfaceId>(i);
    hop.egress = i + 1 == ases.size() ? 0 : static_cast<scion::IfaceId>(i + 1);
    hops.push_back(hop);
  }
  if (meta.mtu == 0) meta.mtu = 1500;
  if (meta.bandwidth_bps == 0) meta.bandwidth_bps = 1e9;
  return scion::Path{hops.front().isd_as, hops.back().isd_as, std::move(hops), meta,
                     scion::DataplanePath{}};
}

// ----------------------------------------------------------------- lexer --

TEST(LexerTest, TokenizesPolicyText) {
  const auto tokens = tokenize("policy \"x\" { order latency asc; }");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_EQ(t.size(), 9u);  // policy, "x", {, order, latency, asc, ;, }, EOF
  EXPECT_EQ(t[0].type, TokenType::kAtom);
  EXPECT_EQ(t[1].type, TokenType::kString);
  EXPECT_EQ(t[1].text, "x");
  EXPECT_EQ(t[2].type, TokenType::kLBrace);
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, CommentsAndPositions) {
  const auto tokens = tokenize("# comment line\npolicy {\n}");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "policy");
  EXPECT_EQ(tokens.value()[0].line, 2u);
}

TEST(LexerTest, CompareOperators) {
  const auto tokens = tokenize("<= >= < > == !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value().size(), 7u);
  for (std::size_t i = 0; i + 1 < tokens.value().size(); ++i) {
    EXPECT_EQ(tokens.value()[i].type, TokenType::kCompare);
  }
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(tokenize("\"unterminated").ok());
  EXPECT_FALSE(tokenize("!x").ok());
  EXPECT_FALSE(tokenize("policy @ {}").ok());
}

// ------------------------------------------------------------ predicates --

TEST(HopPredicateTest, ParseForms) {
  EXPECT_TRUE(HopPredicate::parse("*").ok());
  EXPECT_TRUE(HopPredicate::parse("0").ok());
  const auto isd_only = HopPredicate::parse("1");
  ASSERT_TRUE(isd_only.ok());
  EXPECT_EQ(isd_only.value().isd, 1);
  EXPECT_FALSE(isd_only.value().asn.has_value());

  const auto full = HopPredicate::parse("1-ff00:0:110");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().asn, 0xff00'0000'0110ULL);

  const auto with_ifs = HopPredicate::parse("1-64512#3.4");
  ASSERT_TRUE(with_ifs.ok());
  EXPECT_EQ(with_ifs.value().in_if, 3);
  EXPECT_EQ(with_ifs.value().out_if, 4);

  const auto wildcard_asn = HopPredicate::parse("2-*");
  ASSERT_TRUE(wildcard_asn.ok());
  EXPECT_EQ(wildcard_asn.value().isd, 2);
  EXPECT_FALSE(wildcard_asn.value().asn.has_value());
}

TEST(HopPredicateTest, ParseErrors) {
  EXPECT_FALSE(HopPredicate::parse("").ok());
  EXPECT_FALSE(HopPredicate::parse("abc-def").ok());
  EXPECT_FALSE(HopPredicate::parse("1-2#x").ok());
  EXPECT_FALSE(HopPredicate::parse("70000-1").ok());
}

TEST(HopPredicateTest, Matching) {
  scion::PathHop hop;
  hop.isd_as = scion::IsdAsn{1, 0x110};
  hop.ingress = 3;
  hop.egress = 4;
  EXPECT_TRUE(HopPredicate::parse("*").value().matches(hop));
  EXPECT_TRUE(HopPredicate::parse("1").value().matches(hop));
  EXPECT_TRUE(HopPredicate::parse("1-272").value().matches(hop));  // 0x110 = 272
  EXPECT_FALSE(HopPredicate::parse("2").value().matches(hop));
  EXPECT_FALSE(HopPredicate::parse("1-999").value().matches(hop));
  EXPECT_TRUE(HopPredicate::parse("1-272#3.4").value().matches(hop));
  EXPECT_FALSE(HopPredicate::parse("1-272#5.4").value().matches(hop));
  EXPECT_TRUE(HopPredicate::parse("1-272#0.4").value().matches(hop));  // 0 = any
}

TEST(HopPredicateTest, ToStringRoundTrip) {
  for (const char* text : {"*-*", "1-*", "1-64512", "2-ff00:0:110#3.4"}) {
    const auto pred = HopPredicate::parse(text);
    ASSERT_TRUE(pred.ok()) << text;
    const auto reparsed = HopPredicate::parse(pred.value().to_string());
    ASSERT_TRUE(reparsed.ok()) << pred.value().to_string();
    EXPECT_EQ(reparsed.value().to_string(), pred.value().to_string());
  }
}

// ------------------------------------------------------------------- acl --

TEST(AclTest, FirstMatchWinsDefaultDeny) {
  Acl acl;
  acl.entries.push_back({false, HopPredicate::parse("2").value()});
  acl.entries.push_back({true, HopPredicate::parse("*").value()});
  const auto good = make_path({{1, 1}, {1, 2}, {3, 3}});
  const auto bad = make_path({{1, 1}, {2, 9}, {3, 3}});
  EXPECT_TRUE(acl.permits(good));
  EXPECT_FALSE(acl.permits(bad));

  Acl no_catchall;
  no_catchall.entries.push_back({true, HopPredicate::parse("1").value()});
  EXPECT_FALSE(no_catchall.permits(good));  // hop in ISD 3 matches nothing
}

// -------------------------------------------------------------- sequence --

TEST(SequenceTest, ExactMatch) {
  const auto seq = Sequence::parse("1-1 1-2 2-3");
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(seq.value().matches(make_path({{1, 1}, {1, 2}, {2, 3}})));
  EXPECT_FALSE(seq.value().matches(make_path({{1, 1}, {2, 3}})));
  EXPECT_FALSE(seq.value().matches(make_path({{1, 1}, {1, 2}, {2, 3}, {2, 4}})));
}

TEST(SequenceTest, StarMatchesAnyMiddle) {
  const auto seq = Sequence::parse("1-1 * 2-3");
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(seq.value().matches(make_path({{1, 1}, {2, 3}})));
  EXPECT_TRUE(seq.value().matches(make_path({{1, 1}, {9, 9}, {2, 3}})));
  EXPECT_TRUE(seq.value().matches(make_path({{1, 1}, {8, 8}, {9, 9}, {2, 3}})));
  EXPECT_FALSE(seq.value().matches(make_path({{2, 3}, {1, 1}})));
}

TEST(SequenceTest, Quantifiers) {
  const auto plus = Sequence::parse("1-1 2-*+ 3-1");
  ASSERT_TRUE(plus.ok());
  EXPECT_FALSE(plus.value().matches(make_path({{1, 1}, {3, 1}})));
  EXPECT_TRUE(plus.value().matches(make_path({{1, 1}, {2, 5}, {3, 1}})));
  EXPECT_TRUE(plus.value().matches(make_path({{1, 1}, {2, 5}, {2, 6}, {3, 1}})));

  const auto optional = Sequence::parse("1-1 2-*? 3-1");
  ASSERT_TRUE(optional.ok());
  EXPECT_TRUE(optional.value().matches(make_path({{1, 1}, {3, 1}})));
  EXPECT_TRUE(optional.value().matches(make_path({{1, 1}, {2, 5}, {3, 1}})));
  EXPECT_FALSE(optional.value().matches(make_path({{1, 1}, {2, 5}, {2, 6}, {3, 1}})));

  const auto star = Sequence::parse("1-1 2-** 3-1");
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(star.value().matches(make_path({{1, 1}, {3, 1}})));
  EXPECT_TRUE(star.value().matches(make_path({{1, 1}, {2, 5}, {2, 6}, {3, 1}})));
}

TEST(SequenceTest, EmptyPatternRejected) {
  EXPECT_FALSE(Sequence::parse("").ok());
  EXPECT_FALSE(Sequence::parse("   ").ok());
}

// ---------------------------------------------------------- requirements --

TEST(RequirementTest, MetricsAndComparisons) {
  scion::PathMetadata meta;
  meta.latency = milliseconds(50);
  meta.co2_g_per_gb = 30;
  meta.mtu = 1400;
  const auto path = make_path({{1, 1}, {2, 2}}, meta);

  Requirement req;
  req.metric = Metric::kLatency;
  req.cmp = Cmp::kLe;
  req.value = static_cast<double>(milliseconds(50).nanos());
  EXPECT_TRUE(req.satisfied_by(path));
  req.cmp = Cmp::kLt;
  EXPECT_FALSE(req.satisfied_by(path));

  req.metric = Metric::kCo2;
  req.cmp = Cmp::kLe;
  req.value = 25;
  EXPECT_FALSE(req.satisfied_by(path));

  req.metric = Metric::kHops;
  req.cmp = Cmp::kEq;
  req.value = 1;  // one link between two hops
  EXPECT_TRUE(req.satisfied_by(path));
}

// ---------------------------------------------------------------- parser --

TEST(ParserTest, FullPolicy) {
  const auto policy = parse_policy(R"(
    policy "geofenced-low-latency" {
      acl {
        deny 3-*;          # never cross ISD 3
        allow *;
      }
      sequence "1-* * 2-*";
      require mtu >= 1400;
      require latency <= 80ms;
      order latency asc, co2 asc;
    }
  )");
  ASSERT_TRUE(policy.ok()) << policy.error();
  const Policy& p = policy.value();
  EXPECT_EQ(p.name, "geofenced-low-latency");
  ASSERT_TRUE(p.acl.has_value());
  EXPECT_EQ(p.acl->entries.size(), 2u);
  ASSERT_TRUE(p.sequence.has_value());
  EXPECT_EQ(p.sequence->elems.size(), 3u);
  ASSERT_EQ(p.requirements.size(), 2u);
  EXPECT_EQ(p.requirements[1].value, 80e6);  // 80 ms in ns
  ASSERT_EQ(p.ordering.size(), 2u);
  EXPECT_EQ(p.ordering[0].metric, Metric::kLatency);
  EXPECT_TRUE(p.ordering[1].ascending);
}

TEST(ParserTest, BooleanRequirementShorthand) {
  const auto policy = parse_policy("policy { require qos; require allied; }");
  ASSERT_TRUE(policy.ok()) << policy.error();
  EXPECT_EQ(policy.value().requirements.size(), 2u);
  EXPECT_EQ(policy.value().requirements[0].metric, Metric::kQos);
  EXPECT_EQ(policy.value().requirements[0].value, 1.0);
}

TEST(ParserTest, UnitParsing) {
  const auto policy = parse_policy(
      "policy { require bandwidth >= 1gbps; require jitter <= 2.5ms; require cost < 100; }");
  ASSERT_TRUE(policy.ok()) << policy.error();
  EXPECT_DOUBLE_EQ(policy.value().requirements[0].value, 1e9);
  EXPECT_DOUBLE_EQ(policy.value().requirements[1].value, 2.5e6);
  EXPECT_DOUBLE_EQ(policy.value().requirements[2].value, 100);
}

TEST(ParserTest, ErrorsCarryPositions) {
  const auto missing_semi = parse_policy("policy {\n  order latency asc\n}");
  ASSERT_FALSE(missing_semi.ok());
  EXPECT_NE(missing_semi.error().find("3:"), std::string::npos);

  EXPECT_FALSE(parse_policy("policy { acl { } }").ok());            // empty acl
  EXPECT_FALSE(parse_policy("policy { require warp >= 1; }").ok()); // unknown metric
  EXPECT_FALSE(parse_policy("policy { sequence 1-1; }").ok());      // unquoted
  EXPECT_FALSE(parse_policy("policy {").ok());                      // unterminated
  EXPECT_FALSE(parse_policy("nonsense").ok());
}

TEST(ParserTest, MultiplePolicies) {
  const auto policies = parse_policies(R"(
    policy "a" { order latency asc; }
    policy "b" { order co2 asc; }
  )");
  ASSERT_TRUE(policies.ok()) << policies.error();
  ASSERT_EQ(policies.value().size(), 2u);
  EXPECT_EQ(policies.value()[0].name, "a");
  EXPECT_EQ(policies.value()[1].name, "b");
}

TEST(ParserTest, ToStringRoundTrips) {
  const auto policy = parse_policy(R"(
    policy "rt" {
      acl { deny 3-*; allow *; }
      sequence "1-* * 2-*";
      require mtu >= 1400;
      order latency asc;
    }
  )");
  ASSERT_TRUE(policy.ok());
  const std::string printed = policy.value().to_string();
  const auto reparsed = parse_policy(printed);
  ASSERT_TRUE(reparsed.ok()) << printed << "\n" << reparsed.error();
  EXPECT_EQ(reparsed.value().to_string(), printed);
}

// ------------------------------------------------------------ evaluation --

TEST(PolicyTest, ApplyFiltersAndSorts) {
  scion::PathMetadata fast;
  fast.latency = milliseconds(10);
  fast.co2_g_per_gb = 90;
  scion::PathMetadata slow_green;
  slow_green.latency = milliseconds(40);
  slow_green.co2_g_per_gb = 10;
  scion::PathMetadata banned;
  banned.latency = milliseconds(5);
  banned.co2_g_per_gb = 5;

  std::vector<scion::Path> paths;
  paths.push_back(make_path({{1, 1}, {2, 2}}, fast));
  paths.push_back(make_path({{1, 1}, {1, 5}, {2, 2}}, slow_green));
  paths.push_back(make_path({{1, 1}, {3, 9}, {2, 2}}, banned));

  const auto latency_policy = parse_policy(
      "policy { acl { deny 3-*; allow *; } order latency asc; }");
  ASSERT_TRUE(latency_policy.ok());
  auto by_latency = latency_policy.value().apply(paths);
  ASSERT_EQ(by_latency.size(), 2u);
  EXPECT_EQ(by_latency[0].meta().latency.nanos(), milliseconds(10).nanos());

  const auto green_policy = parse_policy(
      "policy { acl { deny 3-*; allow *; } order co2 asc; }");
  ASSERT_TRUE(green_policy.ok());
  auto by_co2 = green_policy.value().apply(paths);
  ASSERT_EQ(by_co2.size(), 2u);
  EXPECT_EQ(by_co2[0].meta().co2_g_per_gb, 10);
}

TEST(PolicySetTest, ConjunctionAndCombinedOrdering) {
  scion::PathMetadata green_far;
  green_far.latency = milliseconds(60);
  green_far.co2_g_per_gb = 10;
  scion::PathMetadata green_near;
  green_near.latency = milliseconds(20);
  green_near.co2_g_per_gb = 10;
  scion::PathMetadata dirty;
  dirty.latency = milliseconds(5);
  dirty.co2_g_per_gb = 80;

  std::vector<scion::Path> paths;
  paths.push_back(make_path({{1, 1}, {2, 2}}, green_far));
  paths.push_back(make_path({{1, 1}, {2, 7}}, green_near));
  paths.push_back(make_path({{1, 1}, {3, 3}, {2, 2}}, dirty));

  PolicySet set;
  set.add(parse_policy("policy { acl { deny 3-*; allow *; } order co2 asc; }").value());
  set.add(parse_policy("policy { order latency asc; }").value());

  const auto result = set.apply(paths);
  ASSERT_EQ(result.size(), 2u);
  // co2 ties between the two green paths; latency breaks the tie.
  EXPECT_EQ(result[0].meta().latency.nanos(), milliseconds(20).nanos());
}

// ------------------------------------------------------- round-trip fuzz --

/// Generates a random valid policy AST, prints it, reparses it, and checks
/// the fixed point: to_string(parse(to_string(p))) == to_string(p).
class PolicyRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyRoundTrip, PrintParsePrintIsStable) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Policy policy;
    policy.name = "rt" + std::to_string(trial);
    if (rng.chance(0.7)) {
      Acl acl;
      const std::size_t entries = 1 + rng.next_below(4);
      for (std::size_t i = 0; i < entries; ++i) {
        AclEntry entry;
        entry.allow = rng.chance(0.5);
        if (rng.chance(0.5)) entry.predicate.isd = static_cast<scion::Isd>(1 + rng.next_below(9));
        if (rng.chance(0.5)) entry.predicate.asn = 1 + rng.next_below(100000);
        if (rng.chance(0.2)) entry.predicate.in_if = static_cast<scion::IfaceId>(rng.next_below(64));
        acl.entries.push_back(entry);
      }
      acl.entries.push_back(AclEntry{true, HopPredicate{}});  // catch-all
      policy.acl = std::move(acl);
    }
    if (rng.chance(0.5)) {
      Sequence seq;
      const std::size_t elems = 1 + rng.next_below(4);
      for (std::size_t i = 0; i < elems; ++i) {
        SequenceElem elem;
        if (rng.chance(0.6)) elem.predicate.isd = static_cast<scion::Isd>(1 + rng.next_below(9));
        if (rng.chance(0.4)) elem.predicate.asn = 1 + rng.next_below(100000);
        elem.quantifier = static_cast<Quantifier>(rng.next_below(4));
        seq.elems.push_back(elem);
      }
      policy.sequence = std::move(seq);
    }
    const std::size_t reqs = rng.next_below(3);
    for (std::size_t i = 0; i < reqs; ++i) {
      Requirement req;
      req.metric = static_cast<Metric>(rng.next_below(9));  // numeric metrics only
      req.cmp = static_cast<Cmp>(rng.next_below(6));
      req.value = static_cast<double>(rng.next_below(1'000'000));
      policy.requirements.push_back(req);
    }
    const std::size_t orders = rng.next_below(3);
    for (std::size_t i = 0; i < orders; ++i) {
      OrderKey key;
      key.metric = static_cast<Metric>(rng.next_below(9));
      key.ascending = rng.chance(0.5);
      policy.ordering.push_back(key);
    }

    const std::string printed = policy.to_string();
    const auto reparsed = parse_policy(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << "\n" << reparsed.error();
    EXPECT_EQ(reparsed.value().to_string(), printed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyRoundTrip, ::testing::Range<std::uint64_t>(1, 7));

// -------------------------------------------------------------- geofence --

TEST(GeofenceTest, BlocklistAndAllowlist) {
  Geofence block;
  block.mode = GeofenceMode::kBlocklist;
  block.isds = {3};
  EXPECT_TRUE(block.permits(make_path({{1, 1}, {2, 2}})));
  EXPECT_FALSE(block.permits(make_path({{1, 1}, {3, 5}, {2, 2}})));

  Geofence allow;
  allow.mode = GeofenceMode::kAllowlist;
  allow.isds = {1, 2};
  EXPECT_TRUE(allow.permits(make_path({{1, 1}, {2, 2}})));
  EXPECT_FALSE(allow.permits(make_path({{1, 1}, {4, 4}, {2, 2}})));
}

TEST(GeofenceTest, CompiledPolicyAgreesWithDirectEvaluation) {
  Rng rng(3);
  for (int mode = 0; mode < 2; ++mode) {
    Geofence fence;
    fence.mode = mode == 0 ? GeofenceMode::kBlocklist : GeofenceMode::kAllowlist;
    fence.isds = {2, 4};
    const Policy compiled = fence.compile("fence");
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::pair<scion::Isd, scion::Asn>> ases;
      const std::size_t n = 2 + rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i) {
        ases.emplace_back(static_cast<scion::Isd>(1 + rng.next_below(5)), 100 + i);
      }
      const auto path = make_path(ases);
      EXPECT_EQ(fence.permits(path), compiled.permits(path))
          << fence.to_string() << " vs compiled, path " << path.to_string();
    }
  }
}

TEST(GeofenceTest, ToStringMentionsIsds) {
  Geofence fence;
  fence.isds = {1, 3};
  EXPECT_EQ(fence.to_string(), "block ISDs {1, 3}");
}

}  // namespace
}  // namespace pan::ppl
