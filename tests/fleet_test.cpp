// ProxyCluster fleet tests: consistent-hash routing, crash failover (idle and
// mid-flight), fail-closed shedding within the deadline budget, drain
// stickiness + handoff, warm vs cold replica-restart, breaker state handoff,
// /skip/fleet JSON robustness under hostile names, the 405 method gates,
// retry-jitter divergence between replicas, learn-broadcast/invalidation, and
// a randomized chaos interleaving property suite.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "proxy/cluster.hpp"
#include "util/rng.hpp"

namespace pan::browser {
namespace {

std::string body_of(const proxy::ProxyResult& result) {
  return std::string(reinterpret_cast<const char*>(result.response.body.data()),
                     result.response.body.size());
}

struct FleetFixture {
  std::unique_ptr<World> world;
  std::unique_ptr<FleetSession> session;

  explicit FleetFixture(proxy::ClusterConfig config = {}) {
    world = make_local_world();
    world->site("scion-fs.local")->add_text("/", "scion page");
    world->site("tcpip-fs.local")->add_text("/", "legacy page");
    session = std::make_unique<FleetSession>(*world, std::move(config));
  }

  [[nodiscard]] proxy::ProxyCluster& cluster() { return session->cluster(); }
  [[nodiscard]] sim::Simulator& sim() { return world->sim(); }

  proxy::ProxyResult fetch(const std::string& url, bool strict = false) {
    return session->fetch(url, strict);
  }

  /// Like fetch() but with an explicit absolute deadline and a custom method.
  proxy::ProxyResult fetch_with(const std::string& target, bool strict,
                                TimePoint deadline, const std::string& method = "GET") {
    http::HttpRequest request;
    request.method = method;
    request.target = target;
    proxy::ProxyRequestOptions options;
    options.strict = strict;
    options.deadline = deadline;
    proxy::ProxyResult out;
    bool done = false;
    cluster().fetch(std::move(request), options, [&](proxy::ProxyResult r) {
      out = std::move(r);
      done = true;
    });
    sim().run_until_condition([&] { return done; }, sim().now() + seconds(120));
    EXPECT_TRUE(done) << target;
    return out;
  }

  /// Hosts a native-SCION site with no DNS footprint at all: reachable over
  /// SCION but detectable only through the learned Strict-SCION cache.
  void add_hidden_site(const std::string& domain, std::uint16_t port) {
    SiteOptions options;
    options.legacy = false;
    options.native_scion = true;
    options.advertise_scion_txt = false;
    options.port = port;
    world->add_site(world->topology().host_by_name("scion-fs"), domain, options)
        .add_text("/", "hidden page");
  }

  [[nodiscard]] scion::ScionAddr scion_fs_addr() {
    scion::Topology& topo = world->topology();
    return topo.scion_addr(topo.host_by_name("scion-fs"));
  }
};

TEST(Fleet, RoutesConsistentlyAndSpreadsOrigins) {
  FleetFixture fix;
  proxy::ProxyCluster& cluster = fix.cluster();
  ASSERT_EQ(cluster.replica_count(), 4u);

  const std::string owner = cluster.owner_of("scion-fs.local");
  ASSERT_FALSE(owner.empty());
  EXPECT_EQ(cluster.owner_of("scion-fs.local"), owner);  // stable

  const proxy::ProxyResult result = fix.fetch("http://scion-fs.local/");
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kScion);
  EXPECT_EQ(body_of(result), "scion page");

  // Consistent hashing actually shards: synthetic origins land on more than
  // one replica.
  std::set<std::string> owners;
  for (int i = 0; i < 32; ++i) {
    owners.insert(cluster.owner_of("origin-" + std::to_string(i) + ".example"));
  }
  EXPECT_GE(owners.size(), 2u);
}

TEST(Fleet, CrashRehashesAndRoutesAround) {
  FleetFixture fix;
  proxy::ProxyCluster& cluster = fix.cluster();

  EXPECT_EQ(fix.fetch("http://scion-fs.local/").response.status, 200);
  const std::string owner = cluster.owner_of("scion-fs.local");

  cluster.crash_replica(owner);
  EXPECT_EQ(cluster.replica_health(owner), proxy::ReplicaHealth::kDown);
  EXPECT_EQ(cluster.replica(owner), nullptr);

  const std::string successor = cluster.owner_of("scion-fs.local");
  EXPECT_FALSE(successor.empty());
  EXPECT_NE(successor, owner);

  const proxy::ProxyResult result = fix.fetch("http://scion-fs.local/", /*strict=*/true);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kScion);
  EXPECT_EQ(cluster.stats().crashes, 1u);
  EXPECT_GE(cluster.stats().handoffs, 1u);
}

TEST(Fleet, CrashMidFlightFailsOverWithinDeadline) {
  FleetFixture fix;
  proxy::ProxyCluster& cluster = fix.cluster();
  const std::string owner = cluster.owner_of("scion-fs.local");

  // Kill the owner while the request is still in DNS/detection (the world's
  // resolver takes ~4ms; 500us is safely mid-flight).
  fix.sim().schedule_after(microseconds(500),
                           [&] { cluster.crash_replica(owner); });
  const TimePoint start = fix.sim().now();
  const proxy::ProxyResult result =
      fix.fetch_with("http://scion-fs.local/", /*strict=*/true, start + seconds(2));
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kScion);
  EXPECT_LE(fix.sim().now(), start + seconds(2));
  EXPECT_GE(cluster.stats().failovers, 1u);
}

TEST(Fleet, AllReplicasDownFailsClosedWithRetryAfter) {
  proxy::ClusterConfig config;
  config.replicas = 2;
  FleetFixture fix(std::move(config));
  proxy::ProxyCluster& cluster = fix.cluster();
  for (const std::string& name : cluster.replica_names()) cluster.crash_replica(name);

  const TimePoint start = fix.sim().now();
  const proxy::ProxyResult result =
      fix.fetch_with("http://scion-fs.local/", /*strict=*/true, start + seconds(2));
  EXPECT_EQ(result.response.status, 503);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kError);  // never kIp
  EXPECT_EQ(result.outcome, "fleet-shed");
  EXPECT_TRUE(result.response.headers.get("Retry-After").has_value());
  EXPECT_LE(fix.sim().now(), start + seconds(2));
  EXPECT_EQ(fix.cluster().stats().no_replica, 1u);
}

TEST(Fleet, HungReplicaIsHedgedAroundWithinDeadline) {
  proxy::ClusterConfig config;
  config.replicas = 2;
  FleetFixture fix(std::move(config));
  proxy::ProxyCluster& cluster = fix.cluster();
  const std::string owner = cluster.owner_of("scion-fs.local");
  cluster.set_replica_hung(owner, true);

  const TimePoint start = fix.sim().now();
  const proxy::ProxyResult result =
      fix.fetch_with("http://scion-fs.local/", /*strict=*/true, start + seconds(2));
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kScion);
  // The hedge waited out failover_timeout on the wedged owner, then won well
  // inside the deadline.
  EXPECT_GE(fix.sim().now(), start + cluster.config().failover_timeout);
  EXPECT_LE(fix.sim().now(), start + seconds(2));
  EXPECT_GE(cluster.stats().failovers, 1u);
}

TEST(Fleet, HungReplicaGoesDownViaProbesThenRecovers) {
  proxy::ClusterConfig config;
  config.replicas = 2;
  FleetFixture fix(std::move(config));
  proxy::ProxyCluster& cluster = fix.cluster();
  const std::string victim = cluster.replica_names()[0];

  cluster.set_replica_hung(victim, true);
  // probe_miss_down=3 at 250ms probe spacing (+200ms timeout) => down well
  // inside 2s.
  fix.sim().run_until(fix.sim().now() + seconds(2));
  EXPECT_EQ(cluster.replica_health(victim), proxy::ReplicaHealth::kDown);
  EXPECT_GE(cluster.stats().probe_misses, 3u);

  // The ring routes every origin around a down replica.
  for (int i = 0; i < 16; ++i) {
    EXPECT_NE(cluster.owner_of("key-" + std::to_string(i)), victim);
  }

  cluster.set_replica_hung(victim, false);
  fix.sim().run_until(fix.sim().now() + seconds(2));
  EXPECT_EQ(cluster.replica_health(victim), proxy::ReplicaHealth::kHealthy);
}

TEST(Fleet, DrainIsStickyThenHandsOff) {
  FleetFixture fix;
  proxy::ProxyCluster& cluster = fix.cluster();

  EXPECT_EQ(fix.fetch("http://scion-fs.local/").response.status, 200);
  const std::string owner = cluster.owner_of("scion-fs.local");
  cluster.drain_replica(owner);
  EXPECT_EQ(cluster.replica_health(owner), proxy::ReplicaHealth::kDraining);
  EXPECT_EQ(cluster.stats().drains, 1u);

  // During the grace period the owned origin sticks to the draining replica;
  // new origins avoid it.
  EXPECT_EQ(cluster.owner_of("scion-fs.local"), owner);
  EXPECT_EQ(fix.fetch("http://scion-fs.local/").response.status, 200);
  for (int i = 0; i < 16; ++i) {
    EXPECT_NE(cluster.owner_of("fresh-" + std::to_string(i) + ".example"), owner);
  }

  // After drain_grace ownership is handed off.
  fix.sim().run_until(fix.sim().now() + cluster.config().drain_grace + milliseconds(100));
  const std::string successor = cluster.owner_of("scion-fs.local");
  EXPECT_FALSE(successor.empty());
  EXPECT_NE(successor, owner);
  EXPECT_EQ(fix.fetch("http://scion-fs.local/").response.status, 200);

  cluster.undrain_replica(owner);
  EXPECT_EQ(cluster.replica_health(owner), proxy::ReplicaHealth::kHealthy);
}

TEST(Fleet, LearnBroadcastTeachesAllReplicas) {
  FleetFixture fix;
  fix.add_hidden_site("hidden.local", 81);
  proxy::ProxyCluster& cluster = fix.cluster();

  cluster.replica("rep-0")->detector().learn("hidden.local", fix.scion_fs_addr(),
                                             seconds(3600));
  for (const std::string& name : cluster.replica_names()) {
    EXPECT_EQ(cluster.replica(name)->detector().learned_size(), 1u) << name;
  }
  EXPECT_GE(cluster.stats().cache_broadcasts, 1u);

  // Any replica can now serve the learned-only origin strictly over SCION —
  // there is no DNS record to find it by.
  const proxy::ProxyResult result = fix.fetch("http://hidden.local:81/", /*strict=*/true);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kScion);
  EXPECT_EQ(body_of(result), "hidden page");
}

TEST(Fleet, WithdrawalBroadcastInvalidatesAllReplicas) {
  FleetFixture fix;
  proxy::ProxyCluster& cluster = fix.cluster();
  proxy::SkipProxy* first = cluster.replica("rep-0");
  first->detector().learn("hidden.local", fix.scion_fs_addr(), seconds(3600));
  ASSERT_EQ(cluster.replica("rep-3")->detector().learned_size(), 1u);

  first->detector().learn("hidden.local", fix.scion_fs_addr(), Duration::zero());
  for (const std::string& name : cluster.replica_names()) {
    EXPECT_EQ(cluster.replica(name)->detector().learned_size(), 0u) << name;
  }
  EXPECT_GE(cluster.stats().cache_invalidations, 1u);
}

TEST(Fleet, WarmRestartRestoresLearnedCache) {
  FleetFixture fix;
  fix.add_hidden_site("hidden.local", 81);
  proxy::ProxyCluster& cluster = fix.cluster();
  cluster.replica("rep-0")->detector().learn("hidden.local", fix.scion_fs_addr(),
                                             seconds(3600));
  ASSERT_EQ(fix.fetch("http://hidden.local:81/", true).response.status, 200);
  const std::string owner = cluster.owner_of("hidden.local:81");

  // Let the prober take warm snapshots, then bounce the owner.
  fix.sim().run_until(fix.sim().now() + milliseconds(600));
  cluster.restart_replica(owner);
  EXPECT_EQ(cluster.stats().restarts_warm, 1u);
  EXPECT_EQ(cluster.replica(owner)->detector().learned_size(), 1u);

  const proxy::ProxyResult result = fix.fetch("http://hidden.local:81/", /*strict=*/true);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kScion);
}

TEST(Fleet, ColdRestartFailsClosedOnLearnedOnlyOrigin) {
  proxy::ClusterConfig config;
  config.replicas = 1;  // no peer to re-teach the cold process
  config.warm_handoff = false;
  FleetFixture fix(std::move(config));
  fix.add_hidden_site("hidden.local", 81);
  proxy::ProxyCluster& cluster = fix.cluster();

  cluster.replica("rep-0")->detector().learn("hidden.local", fix.scion_fs_addr(),
                                             seconds(3600));
  ASSERT_EQ(fix.fetch("http://hidden.local:81/", true).response.status, 200);

  fix.sim().run_until(fix.sim().now() + milliseconds(600));
  cluster.restart_replica("rep-0");
  EXPECT_EQ(cluster.stats().restarts_cold, 1u);
  EXPECT_EQ(cluster.replica("rep-0")->detector().learned_size(), 0u);

  // The learned pin is gone and there is no DNS trail: strict fails closed —
  // an honest 5xx, never a downgrade to IP.
  const proxy::ProxyResult result = fix.fetch("http://hidden.local:81/", /*strict=*/true);
  EXPECT_GE(result.response.status, 500);
  EXPECT_NE(result.transport, proxy::TransportUsed::kIp);
  EXPECT_NE(result.transport, proxy::TransportUsed::kScion);
}

TEST(Fleet, WarmRestartRestoresBreakerState) {
  proxy::ClusterConfig config;
  config.replicas = 2;
  FleetFixture fix(std::move(config));
  proxy::ProxyCluster& cluster = fix.cluster();

  proxy::SkipProxy* proxy = cluster.replica("rep-0");
  for (int i = 0; i < 4; ++i) proxy->breaker().record_failure("sick.example:443");
  ASSERT_TRUE(proxy->breaker().is_open("sick.example:443"));

  // The prober ships the snapshot; the bounced process inherits the open
  // breaker instead of re-probing an origin the fleet knows is sick.
  fix.sim().run_until(fix.sim().now() + milliseconds(600));
  cluster.restart_replica("rep-0");
  EXPECT_TRUE(cluster.replica("rep-0")->breaker().is_open("sick.example:443"));
}

TEST(Fleet, FleetEndpointEscapesHostileNames) {
  proxy::ClusterConfig config;
  config.replicas = 2;
  config.replica_name_prefix = "re\"p\\";  // hostile: quote + backslash
  FleetFixture fix(std::move(config));

  // Park a hostile origin key in the ownership table (the fetch itself may
  // fail; the key still lands in /skip/fleet's owners dump).
  fix.fetch("ev\"il.local", /*strict=*/false);

  const proxy::ProxyResult result = fix.fetch("/skip/fleet");
  EXPECT_EQ(result.response.status, 200);
  const std::string body = body_of(result);
  // json_quote'd forms present; raw unescaped quotes absent.
  EXPECT_NE(body.find("\"re\\\"p\\\\0\""), std::string::npos) << body;
  EXPECT_NE(body.find("ev\\\"il.local"), std::string::npos) << body;
  EXPECT_EQ(body.find("\"ev\"il.local\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"replicas\""), std::string::npos);
  EXPECT_NE(body.find("\"owners\""), std::string::npos);
  EXPECT_NE(body.find("\"stats\""), std::string::npos);
}

TEST(Fleet, MethodGatesOnControlEndpoints) {
  FleetFixture fix;
  const TimePoint deadline = fix.sim().now() + seconds(5);

  // The cluster's own endpoint.
  const proxy::ProxyResult fleet_post = fix.fetch_with("/skip/fleet", false, deadline, "POST");
  EXPECT_EQ(fleet_post.response.status, 405);
  EXPECT_EQ(fleet_post.response.headers.get("Allow").value_or(""), "GET");

  // Forwarded to a replica: known endpoint, wrong method.
  const proxy::ProxyResult metrics_post =
      fix.fetch_with("/skip/metrics", false, deadline, "POST");
  EXPECT_EQ(metrics_post.response.status, 405);
  EXPECT_EQ(metrics_post.response.headers.get("Allow").value_or(""), "GET");

  // Unknown paths are still 404, whatever the method.
  EXPECT_EQ(fix.fetch_with("/skip/nonexistent", false, deadline, "POST").response.status,
            404);

  // The happy paths still work through the forwarder.
  EXPECT_EQ(fix.fetch("/skip/metrics").response.status, 200);
  const proxy::ProxyResult ping = fix.fetch("/skip/ping");
  EXPECT_EQ(ping.response.status, 200);
  EXPECT_NE(body_of(ping).find("\"ok\":true"), std::string::npos);
}

TEST(Fleet, FleetMetricsMergesReplicaRegistries) {
  FleetFixture fix;
  // Drive traffic so replicas accumulate real counters and histograms.
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(fix.fetch("http://scion-fs.local/").response.status, 200);
  }

  const proxy::ProxyResult result = fix.fetch("/skip/fleet/metrics");
  ASSERT_EQ(result.response.status, 200);
  EXPECT_EQ(result.response.headers.get("Content-Type").value_or(""), "application/json");
  const std::string body = body_of(result);
  EXPECT_NE(body.find("\"replicas\""), std::string::npos);
  EXPECT_NE(body.find("\"fleet\""), std::string::npos);
  EXPECT_NE(body.find("\"generation\""), std::string::npos);
  EXPECT_NE(body.find("proxy.request_total"), std::string::npos);

  // The merged registry really is the sum of the per-replica ones.
  proxy::ProxyCluster& cluster = fix.cluster();
  cluster.refresh_fleet_metrics();
  obs::MetricsRegistry merged;
  cluster.fleet_metrics().build_merged(merged);
  std::uint64_t per_replica_sum = 0;
  for (const std::string name : {"rep-0", "rep-1", "rep-2", "rep-3"}) {
    per_replica_sum += cluster.replica(name)->metrics().counter_value("proxy.requests");
  }
  EXPECT_GT(per_replica_sum, 0u);
  EXPECT_EQ(merged.counter_value("proxy.requests"), per_replica_sum);

  // The merged request histogram pools every replica's samples.
  const obs::Histogram* hist = merged.find_histogram("proxy.request_total");
  ASSERT_NE(hist, nullptr);
  std::uint64_t hist_count = 0;
  for (const std::string name : {"rep-0", "rep-1", "rep-2", "rep-3"}) {
    const obs::Histogram* h =
        cluster.replica(name)->metrics().find_histogram("proxy.request_total");
    if (h != nullptr) hist_count += h->count();
  }
  EXPECT_EQ(hist->count(), hist_count);

  // ?prefix= filters both the fleet view and the per-replica drill-downs.
  const proxy::ProxyResult filtered = fix.fetch("/skip/fleet/metrics?prefix=proxy.phase.");
  ASSERT_EQ(filtered.response.status, 200);
  const std::string filtered_body = body_of(filtered);
  EXPECT_NE(filtered_body.find("proxy.phase."), std::string::npos);
  EXPECT_EQ(filtered_body.find("\"proxy.requests\""), std::string::npos);
}

TEST(Fleet, FleetMetricsSurviveRestartWithoutSteppingBackward) {
  FleetFixture fix;
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(fix.fetch("http://scion-fs.local/").response.status, 200);
  }
  proxy::ProxyCluster& cluster = fix.cluster();
  cluster.refresh_fleet_metrics();
  obs::MetricsRegistry before;
  cluster.fleet_metrics().build_merged(before);
  const std::uint64_t requests_before = before.counter_value("proxy.requests");
  ASSERT_GT(requests_before, 0u);

  // Bounce every replica: each fresh process restarts its registry at zero.
  for (const std::string name : {"rep-0", "rep-1", "rep-2", "rep-3"}) {
    cluster.restart_replica(name);
  }
  cluster.refresh_fleet_metrics();
  EXPECT_GE(cluster.fleet_metrics().generation_folds(), 4u);

  obs::MetricsRegistry after;
  cluster.fleet_metrics().build_merged(after);
  // The folded bases keep the dead generations' counts: monotonic, so any
  // windowed rate computed over the fleet view never goes negative.
  EXPECT_GE(after.counter_value("proxy.requests"), requests_before);

  // And new traffic keeps accumulating on top.
  ASSERT_EQ(fix.fetch("http://scion-fs.local/").response.status, 200);
  cluster.refresh_fleet_metrics();
  obs::MetricsRegistry later;
  cluster.fleet_metrics().build_merged(later);
  EXPECT_GT(later.counter_value("proxy.requests"), requests_before);
}

TEST(Fleet, FleetPromExpositionCarriesFleetScope) {
  FleetFixture fix;
  ASSERT_EQ(fix.fetch("http://scion-fs.local/").response.status, 200);
  const proxy::ProxyResult result = fix.fetch("/skip/fleet/metrics.prom");
  ASSERT_EQ(result.response.status, 200);
  EXPECT_EQ(result.response.headers.get("Content-Type").value_or(""),
            "text/plain; version=0.0.4");
  const std::string body = body_of(result);
  EXPECT_NE(body.find("# TYPE pan_proxy_requests counter"), std::string::npos);
  EXPECT_NE(body.find("scope=\"fleet\""), std::string::npos);
  EXPECT_NE(body.find("pan_proxy_request_total_bucket"), std::string::npos);
}

TEST(Fleet, FleetMetricsWindowQueryAndErrors) {
  FleetFixture fix;
  ASSERT_EQ(fix.fetch("http://scion-fs.local/").response.status, 200);
  // Let the probe heartbeat tick the cluster's time-series store.
  fix.sim().run_until(fix.sim().now() + seconds(2));

  const proxy::ProxyResult windowed = fix.fetch("/skip/fleet/metrics?window=1000");
  ASSERT_EQ(windowed.response.status, 200);
  const std::string body = body_of(windowed);
  EXPECT_NE(body.find("\"interval_ms\""), std::string::npos);
  EXPECT_NE(body.find("\"rate_per_s\""), std::string::npos);

  EXPECT_EQ(fix.fetch("/skip/fleet/metrics?window=banana").response.status, 400);
  EXPECT_EQ(fix.fetch("/skip/fleet/unknown").response.status, 404);

  const TimePoint deadline = fix.sim().now() + seconds(5);
  const proxy::ProxyResult post =
      fix.fetch_with("/skip/fleet/metrics", false, deadline, "POST");
  EXPECT_EQ(post.response.status, 405);
}

TEST(Fleet, RetryJitterStreamsDivergeAcrossReplicas) {
  proxy::ClusterConfig config;
  config.replicas = 2;
  FleetFixture fix(std::move(config));
  proxy::ProxyCluster& cluster = fix.cluster();

  // Both replicas share one ProxyConfig (and thus retry_jitter_seed); the
  // per-instance salt must still decorrelate their retry backoff streams or
  // a fleet-wide path flap retries in lockstep.
  Rng& a = cluster.replica("rep-0")->retry_rng();
  Rng& b = cluster.replica("rep-1")->retry_rng();
  std::vector<Duration> da, db;
  for (int i = 0; i < 8; ++i) {
    da.push_back(a.jittered(milliseconds(40), 0.5));
    db.push_back(b.jittered(milliseconds(40), 0.5));
  }
  EXPECT_NE(da, db);
}

TEST(Fleet, RandomChaosInterleavingsKeepGuarantees) {
  for (const std::uint64_t seed : {11ull, 29ull, 83ull}) {
    auto world = make_local_world();
    world->site("scion-fs.local")->add_text("/", "scion page");
    world->site("tcpip-fs.local")->add_text("/", "legacy page");
    FleetSession session(*world);
    proxy::ProxyCluster& cluster = session.cluster();
    sim::Simulator& sim = world->sim();
    Rng rng(seed);
    const std::vector<std::string> names = cluster.replica_names();

    struct Probe {
      TimePoint deadline;
      TimePoint completed_at;
      bool strict = false;
      bool done = false;
      proxy::ProxyResult result;
    };
    std::vector<std::shared_ptr<Probe>> probes;

    auto launch = [&](bool strict) {
      auto probe = std::make_shared<Probe>();
      probe->strict = strict;
      probe->deadline = sim.now() + seconds(2);
      http::HttpRequest request;
      request.method = "GET";
      request.target = strict ? "http://scion-fs.local/" : "http://tcpip-fs.local/";
      proxy::ProxyRequestOptions options;
      options.strict = strict;
      options.deadline = probe->deadline;
      cluster.fetch(std::move(request), options, [probe, &sim](proxy::ProxyResult r) {
        probe->done = true;
        probe->completed_at = sim.now();
        probe->result = std::move(r);
      });
      probes.push_back(std::move(probe));
    };

    for (int op = 0; op < 48; ++op) {
      const std::string& name = names[rng.next_below(names.size())];
      switch (rng.next_below(12)) {
        case 0: cluster.crash_replica(name); break;
        case 1: cluster.revive_replica(name); break;
        case 2: cluster.restart_replica(name); break;
        case 3: cluster.set_replica_hung(name, true); break;
        case 4: cluster.set_replica_hung(name, false); break;
        case 5: cluster.drain_replica(name); break;
        case 6: cluster.undrain_replica(name); break;
        default: launch(rng.chance(0.5)); break;
      }
      sim.run_until(sim.now() + microseconds(rng.next_below(200'000)));
    }

    // Quiet the chaos, let probes and revivals settle the fleet.
    for (const std::string& name : names) {
      cluster.revive_replica(name);
      cluster.set_replica_hung(name, false);
      cluster.undrain_replica(name);
    }
    sim.run_until(sim.now() + seconds(5));

    for (const auto& probe : probes) {
      ASSERT_TRUE(probe->done) << "seed " << seed;
      // Every request resolves inside its deadline budget (the replica's own
      // 504 deadline timer is the latest possible answer).
      EXPECT_LE(probe->completed_at, probe->deadline + milliseconds(1)) << "seed " << seed;
      if (probe->strict) {
        // Strict pins never downgrade: either SCION succeeded or the fleet
        // answered an honest 5xx.
        EXPECT_NE(probe->result.transport, proxy::TransportUsed::kIp) << "seed " << seed;
        if (probe->result.response.status == 200) {
          EXPECT_EQ(probe->result.transport, proxy::TransportUsed::kScion) << "seed " << seed;
        } else {
          EXPECT_GE(probe->result.response.status, 500) << "seed " << seed;
        }
      }
    }

    for (const std::string& name : names) {
      EXPECT_EQ(cluster.replica_health(name), proxy::ReplicaHealth::kHealthy)
          << "seed " << seed << " " << name;
    }
    const proxy::ProxyResult after = session.fetch("http://scion-fs.local/", true);
    EXPECT_EQ(after.response.status, 200) << "seed " << seed;
    EXPECT_EQ(after.transport, proxy::TransportUsed::kScion) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pan::browser
