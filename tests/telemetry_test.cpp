// End-to-end telemetry tests: cross-hop trace propagation (SKIP proxy ->
// reverse proxy) assembling one connected span tree in a shared collector,
// single-hop traces for legacy/ablated requests, the /skip/debug flight
// recorder after a link cut, SLO burn-rate alerting through /skip/health,
// and JSON robustness of the internal endpoints under hostile names.
#include <gtest/gtest.h>

#include <set>

#include "core/page.hpp"
#include "core/scenarios.hpp"
#include "obs/collector.hpp"

namespace pan::browser {
namespace {

std::string body_of(const proxy::ProxyResult& result) {
  return std::string(reinterpret_cast<const char*>(result.response.body.data()),
                     result.response.body.size());
}

struct TelemetryFixture {
  obs::TraceCollector collector;  // shared across both proxy hops
  std::unique_ptr<World> world;
  std::unique_ptr<ClientSession> session;

  explicit TelemetryFixture(bool remote, proxy::ProxyConfig proxy_config = {}) {
    WorldConfig world_config;
    world_config.reverse_proxy.collector = &collector;
    world = remote ? make_remote_world(world_config) : make_local_world(world_config);
    proxy_config.collector = &collector;
    session = std::make_unique<ClientSession>(*world, proxy_config);
  }

  proxy::ProxyResult fetch(const std::string& url, bool strict = false) {
    http::HttpRequest request;
    request.target = url;
    proxy::ProxyRequestOptions options;
    options.strict = strict;
    proxy::ProxyResult out;
    bool done = false;
    session->proxy().fetch(request, options, [&](proxy::ProxyResult r) {
      out = std::move(r);
      done = true;
    });
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(60));
    EXPECT_TRUE(done) << url;
    return out;
  }
};

/// Structural lint of one trace: exactly one root, every parent resolvable,
/// span ids unique, no negative durations.
void expect_connected_tree(const obs::TraceRecord& record) {
  std::set<std::uint64_t> ids;
  std::size_t roots = 0;
  for (const obs::CollectedSpan& span : record.spans) {
    EXPECT_TRUE(ids.insert(span.span_id).second)
        << "duplicate span id " << span.span_id;
    EXPECT_GE(span.duration, Duration::zero()) << span.name;
    if (span.parent_id == 0) ++roots;
  }
  EXPECT_EQ(roots, 1u);
  for (const obs::CollectedSpan& span : record.spans) {
    if (span.parent_id == 0) continue;
    EXPECT_TRUE(ids.contains(span.parent_id))
        << span.name << " orphaned under missing parent " << span.parent_id;
  }
}

TEST(CrossHopTracing, StrictRemoteLoadYieldsOneConnectedTwoHopTree) {
  TelemetryFixture fx(/*remote=*/true);
  fx.world->site("www.far.example")->add_text("/x", "traced");

  const proxy::ProxyResult result = fx.fetch("http://www.far.example/x", /*strict=*/true);
  ASSERT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kScion);
  EXPECT_EQ(result.outcome, "ok");

  const obs::TraceRecord* record = fx.collector.find(result.trace_id);
  ASSERT_NE(record, nullptr);
  expect_connected_tree(*record);

  // Both hops contributed: hop-1 (client process) and hop-2 (reverse proxy)
  // span ids under one trace id.
  std::set<std::uint64_t> hops;
  bool saw_revproxy = false;
  for (const obs::CollectedSpan& span : record->spans) {
    hops.insert(span.span_id >> 56);
    saw_revproxy = saw_revproxy || span.component == "revproxy";
  }
  EXPECT_TRUE(hops.contains(1u));
  EXPECT_TRUE(hops.contains(2u));
  EXPECT_TRUE(saw_revproxy);

  // The reverse proxy's relay span parents under the client hop's fetch span.
  const obs::CollectedSpan* relay = nullptr;
  for (const obs::CollectedSpan& span : record->spans) {
    if (span.name == "relay") relay = &span;
  }
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->parent_id >> 56, 1u);

  // The root span carries the path annotations the scenario promises.
  const obs::CollectedSpan& root = record->spans.front();
  EXPECT_EQ(root.name, "request");
  bool saw_path = false;
  bool saw_isd_seq = false;
  for (const auto& [key, value] : root.attrs) {
    if (key == "path") saw_path = !value.empty();
    if (key == "isd_seq") saw_isd_seq = !value.empty();
  }
  EXPECT_TRUE(saw_path);
  EXPECT_TRUE(saw_isd_seq);

  // The Chrome export of this trace is non-trivial and names both threads.
  const std::string chrome = obs::TraceCollector::chrome_trace_json(*record);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("revproxy"), std::string::npos);
}

TEST(CrossHopTracing, LegacyRequestYieldsWellFormedSingleHopTrace) {
  TelemetryFixture fx(/*remote=*/false);
  fx.world->site("tcpip-fs.local")->add_text("/y", "legacy");

  const proxy::ProxyResult result = fx.fetch("http://tcpip-fs.local/y");
  ASSERT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kIp);

  const obs::TraceRecord* record = fx.collector.find(result.trace_id);
  ASSERT_NE(record, nullptr);
  expect_connected_tree(*record);
  for (const obs::CollectedSpan& span : record->spans) {
    EXPECT_EQ(span.span_id >> 56, 1u) << span.name;  // single hop only
    EXPECT_NE(span.component, "revproxy");
  }
  EXPECT_EQ(record->outcome, "ok");
}

TEST(FlightRecorderEndpoint, DebugShowsQuarantineAndBreakerAfterLinkCut) {
  // Both inter-ISD links die: the first strict SCION attempt to the far site
  // times out (later ones fail fast once SCMP marks the paths dead), so the
  // failure machinery (path quarantine, then the per-origin breaker tripping)
  // leaves breadcrumbs in the flight recorder, and /skip/debug replays the
  // sequence.
  proxy::ProxyConfig config;
  config.breaker_threshold = 1;
  config.attempt_timeout = milliseconds(300);
  TelemetryFixture fx(/*remote=*/true, config);
  fx.world->site("www.far.example")->add_text("/x", "unreachable");
  ASSERT_TRUE(fx.world
                  ->schedule_chaos(
                      "at=0ms link-down core-1 core-2a\n"
                      "at=0ms link-down core-1 core-2b")
                  .ok());

  for (int i = 0; i < 3; ++i) {
    const proxy::ProxyResult result =
        fx.fetch("http://www.far.example/x", /*strict=*/true);
    EXPECT_GE(result.response.status, 500);
  }

  const proxy::ProxyResult debug = fx.fetch("/skip/debug");
  ASSERT_EQ(debug.response.status, 200);
  const std::string body = body_of(debug);
  EXPECT_NE(body.find("\"events\":["), std::string::npos);
  // Fault application, path quarantine, and the breaker trip all show up,
  // and the quarantine precedes the trip (the ring preserves order).
  EXPECT_NE(body.find("\"apply\""), std::string::npos);
  EXPECT_NE(body.find("\"quarantine\""), std::string::npos);
  EXPECT_NE(body.find("\"trip\""), std::string::npos);
  EXPECT_LT(body.find("\"quarantine\""), body.find("\"trip\""));
  EXPECT_NE(body.find("\"collector\":"), std::string::npos);
  EXPECT_NE(body.find("\"slo\":"), std::string::npos);
}

TEST(SloEndpoint, AvailabilityAlertFiresUnderErrorBurnAndClears) {
  TelemetryFixture fx(/*remote=*/false);
  fx.world->site("scion-fs.local")->add_text("/ok", "fine");

  // Baseline: healthy traffic only — no objective may fire.
  for (int i = 0; i < 12; ++i) fx.fetch("http://scion-fs.local/ok");
  const proxy::ProxyResult baseline = fx.fetch("/skip/health");
  ASSERT_EQ(baseline.response.status, 200);
  EXPECT_NE(body_of(baseline).find("\"name\":\"availability\",\"firing\":false"),
            std::string::npos);

  // Burn: a stream of failing requests dominates the window.
  for (int i = 0; i < 30; ++i) fx.fetch("http://dead.local/x");
  const proxy::ProxyResult burning = fx.fetch("/skip/health");
  EXPECT_NE(body_of(burning).find("\"name\":\"availability\",\"firing\":true"),
            std::string::npos);
  EXPECT_GE(fx.session->proxy().metrics().counter_value("slo.availability.fired"), 1u);

  // Recovery: healthy traffic while sim time walks past the short window;
  // the alert must clear.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 12; ++i) fx.fetch("http://scion-fs.local/ok");
    fx.world->sim().run_until(fx.world->sim().now() + seconds(1));
    fx.fetch("/skip/health");
  }
  const proxy::ProxyResult recovered = fx.fetch("/skip/health");
  EXPECT_NE(body_of(recovered).find("\"name\":\"availability\",\"firing\":false"),
            std::string::npos);
  EXPECT_GE(fx.session->proxy().metrics().counter_value("slo.availability.cleared"), 1u);
}

TEST(InternalEndpoints, HostileMetricNamesCannotBreakTheJson) {
  TelemetryFixture fx(/*remote=*/false);
  fx.world->site("scion-fs.local")->add_text("/z", "ok");
  fx.fetch("http://scion-fs.local/z");
  // A counter whose name embeds quote/backslash/newline must come back
  // escaped from every JSON endpoint that renders names.
  fx.session->proxy().metrics().counter("evil\"name\\x\n").inc();

  const proxy::ProxyResult metrics = fx.fetch("/skip/metrics");
  ASSERT_EQ(metrics.response.status, 200);
  const std::string metrics_body = body_of(metrics);
  EXPECT_NE(metrics_body.find("evil\\\"name\\\\x\\n"), std::string::npos);
  EXPECT_EQ(metrics_body.find("evil\"name"), std::string::npos);

  // /skip/health and /skip/pool render origin keys and fingerprints through
  // the same escaping helper; at minimum they must stay well-shaped.
  const proxy::ProxyResult health = fx.fetch("/skip/health");
  ASSERT_EQ(health.response.status, 200);
  const std::string health_body = body_of(health);
  ASSERT_FALSE(health_body.empty());
  EXPECT_EQ(health_body.front(), '{');
  EXPECT_EQ(health_body.back(), '}');
  const proxy::ProxyResult pool = fx.fetch("/skip/pool");
  ASSERT_EQ(pool.response.status, 200);
}

TEST(InternalEndpoints, TraceEndpointsServeRetainedTraces) {
  TelemetryFixture fx(/*remote=*/false);
  fx.world->site("scion-fs.local")->add_text("/t", "traced");
  const proxy::ProxyResult result = fx.fetch("http://scion-fs.local/t");
  ASSERT_EQ(result.response.status, 200);

  const proxy::ProxyResult jsonl = fx.fetch("/skip/traces");
  ASSERT_EQ(jsonl.response.status, 200);
  EXPECT_NE(body_of(jsonl).find("\"trace\":"), std::string::npos);

  const proxy::ProxyResult chrome =
      fx.fetch("/skip/trace/" + std::to_string(result.trace_id));
  ASSERT_EQ(chrome.response.status, 200);
  EXPECT_NE(body_of(chrome).find("\"traceEvents\""), std::string::npos);

  const proxy::ProxyResult missing = fx.fetch("/skip/trace/999999");
  EXPECT_EQ(missing.response.status, 404);
}

}  // namespace
}  // namespace pan::browser
