// Unit tests for the discrete-event simulator and timers.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace pan::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(milliseconds(3), [&] { order.push_back(3); });
  sim.schedule_after(milliseconds(1), [&] { order.push_back(1); });
  sim.schedule_after(milliseconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(milliseconds(7), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.nanos(), milliseconds(7).nanos());
  EXPECT_EQ(sim.now().nanos(), milliseconds(7).nanos());
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(milliseconds(1), [&] {
    sim.schedule_after(milliseconds(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().nanos(), milliseconds(2).nanos());
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(milliseconds(-5), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().nanos(), 0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelUnknownIdIsSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kInvalidEventId));
  EXPECT_FALSE(sim.cancel(9999));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(milliseconds(1), [&] { ++fired; });
  sim.schedule_after(milliseconds(10), [&] { ++fired; });
  sim.run_until(TimePoint{milliseconds(5).nanos()});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().nanos(), milliseconds(5).nanos());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.schedule_after(milliseconds(1), [] {});
  sim.run();
  EXPECT_EQ(sim.now().nanos(), milliseconds(1).nanos());
  sim.run_for(milliseconds(4));
  EXPECT_EQ(sim.now().nanos(), milliseconds(5).nanos());
}

TEST(SimulatorTest, RunUntilConditionStopsEarly) {
  Simulator sim;
  int counter = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(milliseconds(i + 1), [&] { ++counter; });
  }
  const bool met = sim.run_until_condition([&] { return counter == 3; },
                                           TimePoint{seconds(1).nanos()});
  EXPECT_TRUE(met);
  EXPECT_EQ(counter, 3);
}

TEST(SimulatorTest, RunUntilConditionFailsOnDrain) {
  Simulator sim;
  const bool met = sim.run_until_condition([] { return false; },
                                           TimePoint{seconds(1).nanos()});
  EXPECT_FALSE(met);
}

TEST(SimulatorTest, PendingEventsAccountsForCancellations) {
  Simulator sim;
  const EventId a = sim.schedule_after(milliseconds(1), [] {});
  sim.schedule_after(milliseconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_after(milliseconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

// ---------------------------------------------------------------- timer --

TEST(TimerTest, FiresOnce) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.arm(milliseconds(5));
  EXPECT_TRUE(timer.pending());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.pending());
}

TEST(TimerTest, RearmReplacesDeadline) {
  Simulator sim;
  TimePoint fired_at;
  Timer timer(sim, [&] { fired_at = sim.now(); });
  timer.arm(milliseconds(5));
  timer.arm(milliseconds(20));
  sim.run();
  EXPECT_EQ(fired_at.nanos(), milliseconds(20).nanos());
}

TEST(TimerTest, ArmIfIdleDoesNotReplace) {
  Simulator sim;
  TimePoint fired_at;
  Timer timer(sim, [&] { fired_at = sim.now(); });
  timer.arm(milliseconds(5));
  timer.arm_if_idle(milliseconds(20));
  sim.run();
  EXPECT_EQ(fired_at.nanos(), milliseconds(5).nanos());
}

TEST(TimerTest, CancelStopsFiring) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.arm(milliseconds(5));
  timer.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, DestructionCancelsSafely) {
  Simulator sim;
  int fired = 0;
  {
    Timer timer(sim, [&] { ++fired; });
    timer.arm(milliseconds(5));
  }
  sim.run();  // must not crash or fire
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, RearmFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] {
    if (++fired < 3) timer.arm(milliseconds(1));
  });
  timer.arm(milliseconds(1));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<std::int64_t> times;
  PeriodicTimer timer(sim, [&] { times.push_back(sim.now().nanos()); });
  timer.start(milliseconds(1), milliseconds(2));
  sim.run_until(TimePoint{milliseconds(8).nanos()});
  timer.stop();
  ASSERT_GE(times.size(), 4u);
  EXPECT_EQ(times[0], milliseconds(1).nanos());
  EXPECT_EQ(times[1], milliseconds(3).nanos());
  EXPECT_EQ(times[2], milliseconds(5).nanos());
}

TEST(PeriodicTimerTest, StopHalts) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(sim, [&] { ++fired; });
  timer.start(milliseconds(1), milliseconds(1));
  sim.run_until(TimePoint{milliseconds(3).nanos() + 500});
  timer.stop();
  sim.run_until(TimePoint{milliseconds(10).nanos()});
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimerTest, DestructionSafe) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTimer timer(sim, [&] { ++fired; });
    timer.start(milliseconds(1), milliseconds(1));
    sim.run_until(TimePoint{milliseconds(1).nanos()});
  }
  sim.run_until(TimePoint{milliseconds(10).nanos()});
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTimerTest, StopFromCallback) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(sim, [&] {
    if (++fired == 2) timer.stop();
  });
  timer.start(milliseconds(1), milliseconds(1));
  sim.run_until(TimePoint{milliseconds(10).nanos()});
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace pan::sim
