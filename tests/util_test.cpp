// Unit tests for src/util: time types, RNG, strings, bytes, stats, Result.
#include <gtest/gtest.h>

#include <set>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/types.hpp"

namespace pan {
namespace {

// ---------------------------------------------------------------- types --

TEST(DurationTest, ArithmeticAndConversions) {
  const Duration d = milliseconds(2) + microseconds(500);
  EXPECT_EQ(d.nanos(), 2'500'000);
  EXPECT_DOUBLE_EQ(d.millis(), 2.5);
  EXPECT_EQ((d * 2).nanos(), 5'000'000);
  EXPECT_EQ((d / 2).nanos(), 1'250'000);
  EXPECT_EQ((-d).nanos(), -2'500'000);
  EXPECT_LT(milliseconds(1), milliseconds(2));
}

TEST(DurationTest, ScaledRoundsTowardZero) {
  EXPECT_EQ(milliseconds(10).scaled(0.5).nanos(), 5'000'000);
  EXPECT_EQ(nanoseconds(3).scaled(0.5).nanos(), 1);
}

TEST(TimePointTest, DifferenceAndOffsets) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + seconds(1);
  EXPECT_EQ((t1 - t0).nanos(), 1'000'000'000);
  EXPECT_EQ((t1 - milliseconds(200)).nanos(), 800'000'000);
  EXPECT_GT(t1, t0);
}

TEST(TypesFormatTest, AdaptiveUnits) {
  EXPECT_EQ(to_string(nanoseconds(370)), "370ns");
  EXPECT_EQ(to_string(microseconds(12)), "12.00us");
  EXPECT_EQ(to_string(milliseconds(1) + microseconds(250)), "1.250ms");
  EXPECT_EQ(to_string(seconds(2)), "2.000s");
}

// ------------------------------------------------------------------ rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextInIsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.25);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.next_normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, JitteredWithinBounds) {
  Rng rng(17);
  const Duration base = milliseconds(100);
  for (int i = 0; i < 500; ++i) {
    const Duration d = rng.jittered(base, 0.1);
    EXPECT_GE(d.nanos(), 90'000'000);
    EXPECT_LE(d.nanos(), 110'000'000);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(3);
  Rng childa = parent.fork(1);
  Rng childb = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (childa.next_u64() == childb.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// -------------------------------------------------------------- strings --

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = strings::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitTrimmedDropsEmpties) {
  const auto parts = strings::split_trimmed(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(strings::trim("  x  "), "x");
  EXPECT_EQ(strings::trim("\t\r\n"), "");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("a"), "a");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(strings::to_lower("AbC"), "abc");
  EXPECT_TRUE(strings::iequals("Content-Length", "content-length"));
  EXPECT_FALSE(strings::iequals("a", "ab"));
  EXPECT_TRUE(strings::starts_with("http://x", "http://"));
  EXPECT_FALSE(strings::starts_with("ht", "http://"));
  EXPECT_TRUE(strings::ends_with("file.png", ".png"));
}

TEST(StringsTest, ParseU64) {
  EXPECT_EQ(strings::parse_u64("0").value(), 0u);
  EXPECT_EQ(strings::parse_u64("18446744073709551615").value(), UINT64_MAX);
  EXPECT_FALSE(strings::parse_u64("18446744073709551616").ok());  // overflow
  EXPECT_FALSE(strings::parse_u64("").ok());
  EXPECT_FALSE(strings::parse_u64("12x").ok());
  EXPECT_FALSE(strings::parse_u64("-1").ok());
}

TEST(StringsTest, ParseHex) {
  EXPECT_EQ(strings::parse_hex_u64("ff00").value(), 0xff00u);
  EXPECT_EQ(strings::parse_hex_u64("DEAD").value(), 0xdeadu);
  EXPECT_FALSE(strings::parse_hex_u64("xyz").ok());
  EXPECT_FALSE(strings::parse_hex_u64("").ok());
  EXPECT_FALSE(strings::parse_hex_u64("11112222333344445").ok());  // >16 digits
}

TEST(StringsTest, Format) {
  EXPECT_EQ(strings::format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strings::format("%05.1f", 2.25), "002.2");
}

// ---------------------------------------------------------------- bytes --

TEST(BytesTest, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  w.lp_str("hello");
  w.lp_bytes(Bytes{1, 2, 3});
  const Bytes buf = std::move(w).take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.lp_str(), "hello");
  EXPECT_EQ(r.lp_bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.complete());
}

TEST(BytesTest, BigEndianOrder) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(BytesTest, ReaderUnderrunSetsStickyFailure) {
  const Bytes buf{1, 2};
  ByteReader r(buf);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.u8(), 0u);  // still failed, no UB
  EXPECT_FALSE(r.complete());
}

TEST(BytesTest, CompleteRequiresFullConsumption) {
  const Bytes buf{1, 2, 3};
  ByteReader r(buf);
  r.u8();
  EXPECT_FALSE(r.complete());
  r.skip(2);
  EXPECT_TRUE(r.complete());
}

TEST(BytesTest, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u8(9);
  w.patch_u16(0, 0xBEEF);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u16(), 0xBEEF);
}

TEST(BytesTest, HexEncoding) {
  EXPECT_EQ(to_hex(Bytes{0x00, 0xff, 0x1a}), "00ff1a");
  EXPECT_EQ(to_hex(Bytes{}), "");
}

TEST(BytesTest, StringConversionRoundTrip) {
  const Bytes b = from_string("abc");
  EXPECT_EQ(to_string_view_copy(b), "abc");
}

// ---------------------------------------------------------------- stats --

TEST(StatsTest, BoxStatsKnownValues) {
  const BoxStats s = box_stats({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
}

TEST(StatsTest, BoxStatsInterpolates) {
  const BoxStats s = box_stats({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_EQ(box_stats({}).count, 0u);
  const BoxStats s = box_stats({7});
  EXPECT_DOUBLE_EQ(s.min, 7);
  EXPECT_DOUBLE_EQ(s.median, 7);
  EXPECT_DOUBLE_EQ(s.max, 7);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
}

TEST(StatsTest, PercentileMatchesSorted) {
  const std::vector<double> samples{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(samples, 0), 1);
  EXPECT_DOUBLE_EQ(percentile(samples, 50), 5);
  EXPECT_DOUBLE_EQ(percentile(samples, 100), 9);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  RunningStats r;
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) r.add(x);
  const BoxStats b = box_stats(xs);
  EXPECT_DOUBLE_EQ(r.mean(), b.mean);
  EXPECT_NEAR(r.stddev(), b.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(r.min(), 2);
  EXPECT_DOUBLE_EQ(r.max(), 9);
  EXPECT_EQ(r.count(), xs.size());
}

TEST(StatsTest, AsciiBoxRowPlacesMarkers) {
  BoxStats s;
  s.count = 5;
  s.min = 0;
  s.q1 = 25;
  s.median = 50;
  s.q3 = 75;
  s.max = 100;
  const std::string row = ascii_box_row(s, 0, 100, 41);
  EXPECT_EQ(row.size(), 41u);
  EXPECT_EQ(row.front(), '|');
  EXPECT_EQ(row.back(), '|');
  EXPECT_EQ(row[20], '#');
  EXPECT_EQ(row[10], '[');
  EXPECT_EQ(row[30], ']');
}

/// Property sweep: quartile invariants hold for arbitrary samples.
class BoxStatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoxStatsProperty, OrderingInvariants) {
  Rng rng(GetParam());
  std::vector<double> samples;
  const std::size_t n = 1 + rng.next_below(200);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(rng.next_normal(50, 25));
  }
  const BoxStats s = box_stats(samples);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
  EXPECT_GE(s.mean, s.min);
  EXPECT_LE(s.mean, s.max);
  EXPECT_EQ(s.count, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxStatsProperty, ::testing::Range<std::uint64_t>(1, 25));

// --------------------------------------------------------------- result --

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(ok.value_or(9), 5);

  Result<int> err = Err("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), "nope");
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(ResultTest, TakeMoves) {
  Result<std::string> r = std::string("abc");
  const std::string s = std::move(r).take();
  EXPECT_EQ(s, "abc");
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status bad = Err("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "boom");
}

}  // namespace
}  // namespace pan
