// Tests for SCMP error reporting, path revocation, and failover: link
// failures and expired hop fields must produce reports that travel back to
// the source, and the SKIP proxy must steer around the broken interface —
// including migrating live QUIC connections.
#include <gtest/gtest.h>

#include "core/scenarios.hpp"
#include "scion/scmp.hpp"

namespace pan {
namespace {

using browser::make_remote_world;
using browser::World;

TEST(ScmpMessageTest, SerializeParseRoundTrip) {
  scion::ScmpMessage msg;
  msg.type = scion::ScmpType::kLinkDown;
  msg.origin_as = scion::IsdAsn{1, 0x110};
  msg.interface = 3;
  msg.original_dst = scion::ScionAddr{scion::IsdAsn{2, 0x211}, net::IpAddr{0x0a000001}};
  msg.original_dst_port = 443;
  const auto parsed = scion::ScmpMessage::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().type, msg.type);
  EXPECT_EQ(parsed.value().origin_as, msg.origin_as);
  EXPECT_EQ(parsed.value().interface, 3);
  EXPECT_EQ(parsed.value().original_dst, msg.original_dst);
  EXPECT_EQ(parsed.value().original_dst_port, 443);
}

TEST(ScmpMessageTest, RejectsGarbage) {
  EXPECT_FALSE(scion::ScmpMessage::parse(Bytes{}).ok());
  EXPECT_FALSE(scion::ScmpMessage::parse(Bytes{0x63, 0x01}).ok());
  scion::ScmpMessage msg;
  Bytes wire = msg.serialize();
  wire.push_back(0x00);  // trailing junk
  EXPECT_FALSE(scion::ScmpMessage::parse(wire).ok());
}

TEST(ReversedPrefixTest, PrefixDeliversBackToSource) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  const auto client = world->client;
  const auto server = topo.host_by_name("far-www");
  const auto paths = topo.daemon_for(client).query_now(topo.as_of(server));
  ASSERT_FALSE(paths.empty());
  const scion::DataplanePath& forward = paths.front().dataplane();

  // The prefix ending at the last hop of the last segment, reversed, must
  // equal the full reversed path.
  const std::size_t last_seg = forward.segments.size() - 1;
  const std::size_t last_hop = forward.segments[last_seg].length() - 1;
  const scion::DataplanePath full = forward.reversed_prefix(last_seg, last_hop);
  EXPECT_EQ(full.total_hops(), forward.reversed().total_hops());

  // A mid-path prefix has fewer hops and still starts/ends correctly.
  const scion::DataplanePath mid = forward.reversed_prefix(0, 0);
  EXPECT_EQ(mid.total_hops(), 1u);
}

struct FailoverWorld {
  std::unique_ptr<World> world = make_remote_world();
  scion::HostId server;
  net::NodeId c1_node;

  FailoverWorld() {
    auto& topo = world->topology();
    server = topo.host_by_name("far-www");
  }

  /// Takes down the core-1 <-> core-2b link (the fast detour used by the
  /// best path). Returns the (AS, egress interface) as seen from core-1.
  std::pair<scion::IsdAsn, scion::IfaceId> kill_fast_link() {
    auto& topo = world->topology();
    // Find it via the best path's hop at core-1.
    const auto paths = topo.daemon_for(world->client).query_now(topo.as_of(server));
    const scion::Path& best = paths.front();
    const scion::IsdAsn c1 = topo.as_by_name("core-1");
    for (const scion::PathHop& hop : best.hops()) {
      if (hop.isd_as == c1) {
        // The egress interface id maps to the router's net interface.
        const net::IfId net_if = scion::BorderRouter::to_net_if(hop.egress);
        // core-1's router node: find by sending via any path — instead use
        // the topology helper: the BR owns the router; we reach the network
        // through the host. Take the link down from core-1's side.
        // Topology does not expose router nodes, so walk the network: the
        // node name is "br-core-1".
        auto& network = topo.network();
        for (net::NodeId node = 0; node < network.node_count(); ++node) {
          if (network.node_name(node) == "br-core-1") {
            network.set_link_up(node, net_if, false);
            return {c1, hop.egress};
          }
        }
      }
    }
    ADD_FAILURE() << "fast link not found";
    return {scion::IsdAsn{}, 0};
  }
};

TEST(ScmpTest, LinkDownGeneratesReportToSource) {
  FailoverWorld fx;
  auto& topo = fx.world->topology();
  const auto paths = topo.daemon_for(fx.world->client).query_now(topo.as_of(fx.server));
  ASSERT_FALSE(paths.empty());
  fx.kill_fast_link();

  scion::ScionStack& stack = topo.scion_stack(fx.world->client);
  std::vector<scion::ScmpMessage> reports;
  const auto sub = stack.subscribe_scmp(
      [&](const scion::ScmpMessage& m) { reports.push_back(m); });
  auto socket = stack.bind(0, nullptr);
  socket->send_to(scion::ScionEndpoint{topo.scion_addr(fx.server), 9000},
                  paths.front().dataplane(), from_string("probe"));
  fx.world->sim().run();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].type, scion::ScmpType::kLinkDown);
  EXPECT_EQ(reports[0].origin_as, topo.as_by_name("core-1"));
  EXPECT_NE(reports[0].interface, scion::kNoIface);
  EXPECT_EQ(reports[0].original_dst.ia, topo.as_of(fx.server));
  stack.unsubscribe_scmp(sub);
}

TEST(ScmpTest, ExpiredHopGeneratesReport) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  const auto server = topo.host_by_name("far-www");
  const auto paths = topo.daemon_for(world->client).query_now(topo.as_of(server));
  topo.set_data_plane_time(1'000'000 + 24 * 3600 + 1);  // past expiry

  scion::ScionStack& stack = topo.scion_stack(world->client);
  std::vector<scion::ScmpMessage> reports;
  stack.subscribe_scmp([&](const scion::ScmpMessage& m) { reports.push_back(m); });
  auto socket = stack.bind(0, nullptr);
  socket->send_to(scion::ScionEndpoint{topo.scion_addr(server), 9000},
                  paths.front().dataplane(), from_string("probe"));
  world->sim().run();
  ASSERT_GE(reports.size(), 1u);
  EXPECT_EQ(reports[0].type, scion::ScmpType::kExpiredHop);
}

TEST(ScmpTest, NoReportLoopsForScmpPackets) {
  // Kill the link *toward the client* after the packet passed: the SCMP
  // report itself cannot be forwarded, and that failure must not generate
  // another report. We simulate by killing the client's access... simpler:
  // kill the first inter-AS link; the source's own BR generates the report
  // and delivers it locally; total SCMP per probe is exactly one.
  FailoverWorld fx;
  auto& topo = fx.world->topology();
  const auto paths = topo.daemon_for(fx.world->client).query_now(topo.as_of(fx.server));
  fx.kill_fast_link();
  scion::ScionStack& stack = topo.scion_stack(fx.world->client);
  int reports = 0;
  stack.subscribe_scmp([&](const scion::ScmpMessage&) { ++reports; });
  auto socket = stack.bind(0, nullptr);
  for (int i = 0; i < 3; ++i) {
    socket->send_to(scion::ScionEndpoint{topo.scion_addr(fx.server), 9000},
                    paths.front().dataplane(), from_string("p"));
  }
  fx.world->sim().run();
  EXPECT_EQ(reports, 3);
  std::uint64_t scmp_sent = 0;
  for (const auto ia : topo.all_ases()) {
    scmp_sent += topo.border_router_stats(ia).scmp_sent;
  }
  EXPECT_EQ(scmp_sent, 3u);
}

TEST(ScmpTest, ProxyRevokesAndFailsOverNewRequests) {
  FailoverWorld fx;
  fx.world->site("www.far.example")->add_text("/a", "A");
  fx.world->site("www.far.example")->add_text("/b", "B");
  auto& topo = fx.world->topology();

  dns::Resolver resolver(fx.world->sim(), fx.world->zone(), {});
  proxy::SkipProxy proxy(fx.world->sim(), topo.host(fx.world->client),
                         topo.scion_stack(fx.world->client),
                         topo.daemon_for(fx.world->client), resolver, {});
  const auto fetch = [&](const char* target) {
    http::HttpRequest request;
    request.target = target;
    proxy::ProxyResult out;
    bool done = false;
    proxy.fetch(request, {}, [&](proxy::ProxyResult r) {
      out = std::move(r);
      done = true;
    });
    fx.world->sim().run_until_condition([&] { return done; },
                                        fx.world->sim().now() + seconds(120));
    EXPECT_TRUE(done);
    return out;
  };

  // Warm fetch over the fast path.
  const auto first = fetch("http://www.far.example/a");
  EXPECT_EQ(first.transport, proxy::TransportUsed::kScion);

  // Break the fast link. The next request initially heads down the broken
  // path; the SCMP report arrives, the proxy revokes + migrates, and QUIC
  // loss recovery redelivers over the alternate path.
  const auto [bad_as, bad_if] = fx.kill_fast_link();
  const auto second = fetch("http://www.far.example/b");
  EXPECT_EQ(second.transport, proxy::TransportUsed::kScion);
  EXPECT_EQ(to_string_view_copy(second.response.body), "B");
  EXPECT_NE(second.path_fingerprint, first.path_fingerprint);
  EXPECT_GT(proxy.stats().scmp_reports, 0u);
  EXPECT_GE(proxy.selector().active_revocations(), 1u);

  // The revoked path is excluded from selection.
  const auto paths = topo.daemon_for(fx.world->client)
                         .query_now(topo.as_by_name("server-as"));
  for (const auto& p : paths) {
    if (p.uses_interface(bad_as, bad_if)) {
      EXPECT_TRUE(proxy.selector().is_revoked(p));
    }
  }
}

TEST(ScmpTest, RevocationExpiresAndPathReturns) {
  FailoverWorld fx;
  auto& topo = fx.world->topology();
  dns::Resolver resolver(fx.world->sim(), fx.world->zone(), {});
  proxy::ProxyConfig config;
  config.revocation_ttl = seconds(5);
  proxy::SkipProxy proxy(fx.world->sim(), topo.host(fx.world->client),
                         topo.scion_stack(fx.world->client),
                         topo.daemon_for(fx.world->client), resolver, config);
  const auto [bad_as, bad_if] = fx.kill_fast_link();
  proxy.selector().revoke(bad_as, bad_if, config.revocation_ttl);
  EXPECT_EQ(proxy.selector().active_revocations(), 1u);
  fx.world->sim().run_until(fx.world->sim().now() + seconds(6));
  EXPECT_EQ(proxy.selector().active_revocations(), 0u);
}

TEST(ScmpTest, MidTransferLinkFailureMigratesLiveConnection) {
  FailoverWorld fx;
  auto& site = *fx.world->site("www.far.example");
  site.add_blob("/big.bin", 400'000);
  auto& topo = fx.world->topology();

  dns::Resolver resolver(fx.world->sim(), fx.world->zone(), {});
  proxy::SkipProxy proxy(fx.world->sim(), topo.host(fx.world->client),
                         topo.scion_stack(fx.world->client),
                         topo.daemon_for(fx.world->client), resolver, {});
  http::HttpRequest request;
  request.target = "http://www.far.example/big.bin";
  proxy::ProxyResult out;
  bool done = false;
  proxy.fetch(request, {}, [&](proxy::ProxyResult r) {
    out = std::move(r);
    done = true;
  });
  // Let the transfer get going, then cut the link mid-flight.
  fx.world->sim().run_until(fx.world->sim().now() + milliseconds(150));
  ASSERT_FALSE(done);
  fx.kill_fast_link();
  fx.world->sim().run_until_condition([&] { return done; },
                                      fx.world->sim().now() + seconds(120));
  ASSERT_TRUE(done);
  EXPECT_EQ(out.transport, proxy::TransportUsed::kScion);
  EXPECT_EQ(out.response.body.size(), 400'000u);
  EXPECT_GE(proxy.stats().scmp_reroutes, 1u);
}

}  // namespace
}  // namespace pan
