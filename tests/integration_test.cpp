// Cross-module integration tests: full page loads through browser ->
// extension -> SKIP proxy -> QUIC/SCION or TCP/IP -> file servers / reverse
// proxies, checking the paper's qualitative results end to end.
#include <gtest/gtest.h>

#include "core/scenarios.hpp"
#include "http/file_server.hpp"
#include "ppl/parser.hpp"

namespace pan::browser {
namespace {

std::vector<std::string> publish_page(http::FileServer& fs, const std::string& prefix,
                                      int resources, std::size_t bytes_each) {
  std::vector<std::string> urls;
  for (int i = 0; i < resources; ++i) {
    const std::string path = "/" + prefix + std::to_string(i) + ".bin";
    fs.add_blob(path, bytes_each);
    urls.push_back(path);
  }
  fs.add_text("/", render_document(urls));
  return urls;
}

TEST(IntegrationTest, Figure3OrderingHoldsInLocalWorld) {
  // The paper's local-setup finding: SCION-only and mixed loads through the
  // extension+proxy pay an overhead vs. the BGP/IP-only baseline; the
  // strict-SCION run (blocked legacy resources never fetched) is fastest.
  auto world = make_local_world();
  auto& scion_fs = *world->site("scion-fs.local");
  auto& tcpip_fs = *world->site("tcpip-fs.local");

  // SCION-only page.
  publish_page(scion_fs, "s", 6, 20'000);
  // Mixed page: doc + 1 resource on SCION FS, 5 on the TCP/IP FS.
  std::vector<std::string> mixed;
  scion_fs.add_blob("/mixed0.bin", 20'000);
  mixed.push_back("/mixed0.bin");
  for (int i = 1; i < 6; ++i) {
    const std::string path = "/m" + std::to_string(i) + ".bin";
    tcpip_fs.add_blob(path, 20'000);
    mixed.push_back("http://tcpip-fs.local" + path);
  }
  scion_fs.add_text("/mixed", render_document(mixed));
  // Baseline page on the TCP/IP FS.
  publish_page(tcpip_fs, "b", 6, 20'000);

  const PageLoadResult scion_only = ClientSession(*world).load("http://scion-fs.local/");
  const PageLoadResult mixed_load = ClientSession(*world).load("http://scion-fs.local/mixed");
  ClientSession strict_session(*world);
  strict_session.extension().set_mode(OperationMode::kStrict);
  const PageLoadResult strict = strict_session.load("http://scion-fs.local/mixed");
  const PageLoadResult baseline = DirectSession(*world).load("http://tcpip-fs.local/");

  ASSERT_TRUE(scion_only.ok);
  ASSERT_TRUE(mixed_load.ok);
  ASSERT_TRUE(baseline.ok);
  EXPECT_EQ(strict.blocked, 5u);

  // Orderings (generous epsilon; exact numbers are the bench's job).
  EXPECT_GT(scion_only.plt.nanos(), baseline.plt.nanos());
  EXPECT_GT(mixed_load.plt.nanos(), baseline.plt.nanos());
  EXPECT_LT(strict.plt.nanos(), mixed_load.plt.nanos());
}

TEST(IntegrationTest, Figure5ScionWinsForDistantSingleOrigin) {
  auto world = make_remote_world();
  publish_page(*world->site("www.far.example"), "r", 5, 30'000);
  const PageLoadResult over_scion = ClientSession(*world).load("http://www.far.example/");
  const PageLoadResult over_ip = DirectSession(*world).load("http://www.far.example/");
  ASSERT_TRUE(over_scion.ok);
  ASSERT_TRUE(over_ip.ok);
  EXPECT_EQ(over_scion.over_scion, over_scion.resources.size());
  // SCION's latency-optimized path beats the BGP route decisively.
  EXPECT_LT(over_scion.plt.nanos() * 3, over_ip.plt.nanos() * 2);
}

TEST(IntegrationTest, Figure6NearPageSmallOverhead) {
  auto world = make_remote_world();
  publish_page(*world->site("www.near.example"), "n", 5, 30'000);
  const PageLoadResult over_scion = ClientSession(*world).load("http://www.near.example/");
  const PageLoadResult over_ip = DirectSession(*world).load("http://www.near.example/");
  ASSERT_TRUE(over_scion.ok);
  ASSERT_TRUE(over_ip.ok);
  // Paths are equivalent; the extension+proxy must cost only a small
  // overhead (well under 2x).
  EXPECT_LT(over_scion.plt.nanos(), over_ip.plt.nanos() * 2);
}

TEST(IntegrationTest, ContentIntegrityThroughReverseProxy) {
  auto world = make_remote_world();
  auto& fs = *world->site("www.far.example");
  fs.add_blob("/blob.bin", 60'000);
  fs.add_text("/", render_document({"/blob.bin"}));
  ClientSession session(*world);
  const PageLoadResult result = session.load("http://www.far.example/");
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.resources.size(), 2u);
  EXPECT_EQ(result.resources[1].bytes, 60'000u);
  EXPECT_EQ(result.resources[1].transport, proxy::TransportUsed::kScion);
}

TEST(IntegrationTest, GeofencedBrowsingAvoidsBlockedIsdOpportunistically) {
  auto world = make_remote_world();
  publish_page(*world->site("www.far.example"), "g", 3, 10'000);
  ClientSession session(*world);
  // Block nothing relevant: ISD 3 does not exist on any path.
  ppl::Geofence fence;
  fence.mode = ppl::GeofenceMode::kBlocklist;
  fence.isds = {3};
  session.extension().set_geofence(fence);
  const PageLoadResult result = session.load("http://www.far.example/");
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.fully_policy_compliant);
}

TEST(IntegrationTest, GeofenceForcesDetourAroundBlockedCoreAs) {
  auto world = make_remote_world();
  publish_page(*world->site("www.far.example"), "g", 3, 10'000);
  auto& topo = world->topology();

  // Baseline: best path goes through core-2b (the fast detour).
  ClientSession free_session(*world);
  const PageLoadResult free_load = free_session.load("http://www.far.example/");
  ASSERT_TRUE(free_load.ok);
  bool used_c2b = false;
  for (const auto& [fp, usage] : free_session.proxy().selector().usage()) {
    if (usage.description.find(topo.as_by_name("core-2b").to_string()) != std::string::npos) {
      used_c2b = true;
    }
  }
  EXPECT_TRUE(used_c2b);

  // Policy: avoid core-2b entirely -> longer but compliant path.
  ClientSession fenced_session(*world);
  fenced_session.extension().set_policies(ppl::PolicySet{
      {ppl::parse_policy("policy { acl { deny 2-ff00:0:220; allow *; } }").value()}});
  const PageLoadResult fenced_load = fenced_session.load("http://www.far.example/");
  ASSERT_TRUE(fenced_load.ok);
  EXPECT_TRUE(fenced_load.fully_policy_compliant);
  for (const auto& [fp, usage] : fenced_session.proxy().selector().usage()) {
    EXPECT_EQ(usage.description.find(topo.as_by_name("core-2b").to_string()),
              std::string::npos);
  }
  EXPECT_GT(fenced_load.plt.nanos(), free_load.plt.nanos());
}

TEST(IntegrationTest, Co2OrderedPolicyPicksGreenestPath) {
  auto world = make_remote_world();
  publish_page(*world->site("www.far.example"), "c", 2, 5'000);
  auto& topo = world->topology();
  ClientSession session(*world);
  session.extension().set_policies(
      ppl::PolicySet{{ppl::parse_policy("policy { order co2 asc; }").value()}});
  const PageLoadResult result = session.load("http://www.far.example/");
  ASSERT_TRUE(result.ok);
  // Greenest route is via core-2b (10+... gCO2) rather than the 30g direct link.
  const auto paths = topo.daemon_for(world->client).query_now(topo.as_by_name("server-as"));
  double best_co2 = 1e18;
  for (const auto& p : paths) best_co2 = std::min(best_co2, p.meta().co2_g_per_gb);
  for (const auto& [fp, usage] : session.proxy().selector().usage()) {
    (void)fp;
    EXPECT_GT(usage.requests, 0u);
  }
  // The used path's fingerprint matches the greenest candidate.
  const auto& usage = session.proxy().selector().usage();
  ASSERT_FALSE(usage.empty());
  bool used_greenest = false;
  for (const auto& p : paths) {
    if (p.meta().co2_g_per_gb == best_co2 && usage.contains(p.fingerprint())) {
      used_greenest = true;
    }
  }
  EXPECT_TRUE(used_greenest);
}

TEST(IntegrationTest, DaemonCacheWarmupSpeedsUpSecondLoad) {
  auto world = make_remote_world();
  publish_page(*world->site("www.far.example"), "w", 2, 5'000);
  ClientSession session(*world);
  const PageLoadResult cold = session.load("http://www.far.example/");
  const PageLoadResult warm = session.load("http://www.far.example/");
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(warm.ok);
  // Warm load reuses DNS + daemon caches + the QUIC connection.
  EXPECT_LT(warm.plt.nanos(), cold.plt.nanos());
}

TEST(IntegrationTest, PathMigrationMidConnection) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  const auto far_www = topo.host_by_name("far-www");
  auto& fs = *world->site("www.far.example");
  fs.add_blob("/a", 2'000);
  fs.add_blob("/b", 2'000);

  const auto paths = topo.daemon_for(world->client).query_now(topo.as_of(far_www));
  ASSERT_GE(paths.size(), 2u);
  http::ScionHttpConnection conn(topo.scion_stack(world->client),
                                 scion::ScionEndpoint{topo.scion_addr(far_www), 80},
                                 paths[0].dataplane());
  // far-www runs a legacy server only; talk to its reverse proxy instead.
  // Use the native-scion test shape: fetch via rp host.
  const auto rp = topo.host_by_name("far-rp1");
  http::ScionHttpConnection rp_conn(topo.scion_stack(world->client),
                                    scion::ScionEndpoint{topo.scion_addr(rp), 80},
                                    paths.size() > 1 ? paths[0].dataplane()
                                                     : paths[0].dataplane());
  http::HttpRequest req;
  req.target = "/a";
  req.headers.set("Host", "www.far.example");
  int done = 0;
  rp_conn.fetch(req, [&](Result<http::HttpResponse> r) {
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r.value().body.size(), 2'000u);
    ++done;
  });
  world->sim().run_until_condition([&] { return done == 1; },
                                   world->sim().now() + seconds(30));
  ASSERT_EQ(done, 1);

  // Migrate to the second-best path and fetch again on the same connection.
  const auto rp_paths = topo.daemon_for(world->client).query_now(topo.as_of(rp));
  ASSERT_GE(rp_paths.size(), 2u);
  rp_conn.set_path(rp_paths[1].dataplane());
  req.target = "/b";
  rp_conn.fetch(req, [&](Result<http::HttpResponse> r) {
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r.value().body.size(), 2'000u);
    ++done;
  });
  world->sim().run_until_condition([&] { return done == 2; },
                                   world->sim().now() + seconds(30));
  EXPECT_EQ(done, 2);
}

TEST(IntegrationTest, ManyTrialsAreDeterministicPerSeed) {
  const auto run_once = [] {
    auto world = make_remote_world();
    publish_page(*world->site("www.far.example"), "d", 4, 15'000);
    return ClientSession(*world).load("http://www.far.example/").plt.nanos();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(IntegrationTest, LossyRemoteWorldStillCompletes) {
  WorldConfig config;
  config.link_jitter = 0.1;
  auto world = make_remote_world(config);
  // Inject loss by fetching many resources (stress) — the FIFO+recovery
  // machinery must still deliver every byte.
  publish_page(*world->site("www.far.example"), "l", 10, 25'000);
  const PageLoadResult result = ClientSession(*world).load("http://www.far.example/");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.resources.size(), 11u);
}

}  // namespace
}  // namespace pan::browser
