// Tests for the extension features beyond the paper's prototype (its stated
// future work): multipath HTTP, server<->browser path negotiation, path
// performance feedback, and control-plane refresh (re-beaconing + hop-field
// expiry).
#include <gtest/gtest.h>

#include "core/scenarios.hpp"
#include "crypto/sha256.hpp"
#include "http/file_server.hpp"
#include "http/multipath.hpp"
#include "ppl/parser.hpp"
#include "proxy/negotiation.hpp"

namespace pan {
namespace {

using browser::make_remote_world;
using browser::World;

// ----------------------------------------------------------- negotiation --

TEST(NegotiationTest, ParsePathPreference) {
  const auto keys = proxy::parse_path_preference("co2 asc, latency");
  ASSERT_TRUE(keys.ok()) << keys.error();
  ASSERT_EQ(keys.value().size(), 2u);
  EXPECT_EQ(keys.value()[0].metric, ppl::Metric::kCo2);
  EXPECT_TRUE(keys.value()[0].ascending);
  EXPECT_EQ(keys.value()[1].metric, ppl::Metric::kLatency);

  const auto desc = proxy::parse_path_preference("bandwidth desc");
  ASSERT_TRUE(desc.ok());
  EXPECT_FALSE(desc.value()[0].ascending);
}

TEST(NegotiationTest, ParseErrors) {
  EXPECT_FALSE(proxy::parse_path_preference("").ok());
  EXPECT_FALSE(proxy::parse_path_preference("warp asc").ok());
  EXPECT_FALSE(proxy::parse_path_preference("latency sideways").ok());
  EXPECT_FALSE(proxy::parse_path_preference("latency asc extra").ok());
}

TEST(NegotiationTest, SerializeRoundTrip) {
  const auto keys = proxy::parse_path_preference("co2 asc, latency desc").take();
  const std::string text = proxy::serialize_path_preference(keys);
  const auto reparsed = proxy::parse_path_preference(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(proxy::serialize_path_preference(reparsed.value()), text);
}

struct NegotiationFixture {
  std::unique_ptr<World> world = make_remote_world();
  std::unique_ptr<dns::Resolver> resolver;
  std::unique_ptr<proxy::SkipProxy> proxy;

  NegotiationFixture() {
    auto& topo = world->topology();
    resolver = std::make_unique<dns::Resolver>(world->sim(), world->zone(),
                                               dns::ResolverConfig{});
    proxy = std::make_unique<proxy::SkipProxy>(world->sim(), topo.host(world->client),
                                               topo.scion_stack(world->client),
                                               topo.daemon_for(world->client), *resolver);
  }

  proxy::ProxyResult fetch(const std::string& url) {
    http::HttpRequest request;
    request.target = url;
    proxy::ProxyResult out;
    bool done = false;
    proxy->fetch(request, {}, [&](proxy::ProxyResult r) {
      out = std::move(r);
      done = true;
    });
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(60));
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(NegotiationTest, ServerPreferenceSteersSubsequentRequests) {
  NegotiationFixture fx;
  auto& site = *fx.world->site("www.far.example");
  site.set_extra_header("Path-Preference", "co2 asc");
  site.add_text("/a", "first");
  site.add_text("/b", "second");

  // First request: no preference known yet -> fastest path (30 ms, dirty).
  const auto first = fx.fetch("http://www.far.example/a");
  EXPECT_EQ(first.transport, proxy::TransportUsed::kScion);
  ASSERT_TRUE(fx.proxy->origin_preferences().contains("www.far.example"));

  // Second request: the server's green preference now applies.
  const auto second = fx.fetch("http://www.far.example/b");
  EXPECT_EQ(second.transport, proxy::TransportUsed::kScion);
  EXPECT_NE(second.path_fingerprint, first.path_fingerprint);

  auto& topo = fx.world->topology();
  const auto paths = topo.daemon_for(fx.world->client)
                         .query_now(topo.as_by_name("server-as"));
  double best_co2 = 1e18;
  std::string greenest;
  for (const auto& p : paths) {
    if (p.meta().co2_g_per_gb < best_co2) {
      best_co2 = p.meta().co2_g_per_gb;
      greenest = p.fingerprint();
    }
  }
  EXPECT_EQ(second.path_fingerprint, greenest);
}

TEST(NegotiationTest, UserPolicyOutranksServerPreference) {
  NegotiationFixture fx;
  auto& site = *fx.world->site("www.far.example");
  site.set_extra_header("Path-Preference", "co2 asc");
  site.add_text("/a", "x");
  site.add_text("/b", "y");
  // User explicitly wants latency.
  fx.proxy->set_policies(
      ppl::PolicySet{{ppl::parse_policy("policy { order latency asc; }").value()}});
  const auto first = fx.fetch("http://www.far.example/a");
  const auto second = fx.fetch("http://www.far.example/b");
  // Both requests stay on the latency-optimal path despite the server's ask.
  EXPECT_EQ(second.path_fingerprint, first.path_fingerprint);
}

TEST(NegotiationTest, MalformedPreferenceIgnored) {
  NegotiationFixture fx;
  auto& site = *fx.world->site("www.far.example");
  site.set_extra_header("Path-Preference", "warp-speed yes");
  site.add_text("/a", "x");
  fx.fetch("http://www.far.example/a");
  EXPECT_FALSE(fx.proxy->origin_preferences().contains("www.far.example"));
}

TEST(NegotiationTest, ReverseProxyCanInjectPreference) {
  // A world where the reverse proxy injects the preference on behalf of the
  // backend operator.
  auto world = std::make_unique<World>(browser::WorldConfig{});
  auto& topo = world->topology();
  scion::AsSpec core;
  core.name = "core";
  core.ia = scion::IsdAsn{1, 0x110};
  core.core = true;
  topo.add_as(core);
  world->client = topo.add_host("core", "client");
  const auto backend = topo.add_host("core", "backend");
  const auto rp_host = topo.add_host("core", "rp");
  topo.finalize();
  auto& fs = world->add_site(backend, "site.example",
                             browser::SiteOptions{.legacy = true, .native_scion = false});
  fs.add_text("/x", "content");
  proxy::ReverseProxyConfig rp_config;
  rp_config.inject_path_preference = "latency asc";
  world->add_reverse_proxy(rp_host, "site.example", backend, rp_config);

  dns::Resolver resolver(world->sim(), world->zone(), {});
  proxy::SkipProxy skip(world->sim(), topo.host(world->client),
                        topo.scion_stack(world->client), topo.daemon_for(world->client),
                        resolver);
  http::HttpRequest request;
  request.target = "http://site.example/x";
  bool done = false;
  skip.fetch(request, {}, [&](proxy::ProxyResult r) {
    EXPECT_EQ(r.transport, proxy::TransportUsed::kScion);
    done = true;
  });
  world->sim().run_until_condition([&] { return done; }, world->sim().now() + seconds(30));
  ASSERT_TRUE(done);
  EXPECT_TRUE(skip.origin_preferences().contains("site.example"));
}

// ------------------------------------------------------------- feedback --

TEST(FeedbackTest, ObservedRttRecordedPerPath) {
  NegotiationFixture fx;
  fx.world->site("www.far.example")->add_blob("/blob.bin", 40'000);
  fx.fetch("http://www.far.example/blob.bin");
  const auto& usage = fx.proxy->selector().usage();
  ASSERT_EQ(usage.size(), 1u);
  const proxy::PathUsage& u = usage.begin()->second;
  EXPECT_GT(u.observed_rtt.nanos(), 0);
  // The 30ms path: observed RTT should be in the right ballpark.
  EXPECT_NEAR(u.observed_rtt.millis(), 60.0, 30.0);
  EXPECT_GT(u.last_used.nanos(), 0);
}

// ------------------------------------------------------------ multipath --

struct MultipathFixture {
  std::unique_ptr<World> world;
  scion::HostId rp;
  std::vector<scion::Path> paths;

  MultipathFixture() {
    browser::WorldConfig config;
    config.seed = 9;
    world = make_remote_world(config);
    auto& site = *world->site("www.far.example");
    for (int i = 0; i < 8; ++i) {
      site.add_blob("/obj" + std::to_string(i) + ".bin", 20'000);
    }
    auto& topo = world->topology();
    rp = topo.host_by_name("far-rp1");
    for (const auto& p : topo.daemon_for(world->client).query_now(topo.as_of(rp))) {
      if (p.link_count() == 3) paths.push_back(p);  // the disjoint pair
    }
  }

  [[nodiscard]] http::MultipathScionConnection make_conn(
      http::MultipathConfig config = {}) {
    auto& topo = world->topology();
    return http::MultipathScionConnection(
        topo.scion_stack(world->client),
        scion::ScionEndpoint{topo.scion_addr(rp), 80}, paths, config);
  }

  int fetch_all(http::MultipathScionConnection& conn, int count) {
    int done = 0;
    for (int i = 0; i < count; ++i) {
      http::HttpRequest req;
      req.target = "/obj" + std::to_string(i) + ".bin";
      req.headers.set("Host", "www.far.example");
      conn.fetch(req, [&](Result<http::HttpResponse> r) {
        if (r.ok() && r.value().ok()) ++done;
      });
    }
    world->sim().run_until_condition([&] { return done == count; },
                                     world->sim().now() + seconds(120));
    return done;
  }
};

TEST(MultipathTest, FetchesSpreadAcrossChannels) {
  MultipathFixture fx;
  ASSERT_EQ(fx.paths.size(), 2u);
  http::MultipathConfig config;
  config.schedule = http::MultipathConfig::Schedule::kRoundRobin;
  auto conn = fx.make_conn(config);
  EXPECT_EQ(fx.fetch_all(conn, 8), 8);
  const auto stats = conn.channel_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].requests, 4u);
  EXPECT_EQ(stats[1].requests, 4u);
  EXPECT_GT(stats[0].bytes, 0u);
  EXPECT_GT(stats[1].bytes, 0u);
}

TEST(MultipathTest, WeightedLatencyPrefersFastPath) {
  MultipathFixture fx;
  http::MultipathConfig config;
  config.schedule = http::MultipathConfig::Schedule::kWeightedLatency;
  auto conn = fx.make_conn(config);
  EXPECT_EQ(fx.fetch_all(conn, 8), 8);
  const auto stats = conn.channel_stats();
  // paths[0] is the 30ms path (daemon order); it must carry more requests.
  EXPECT_GT(stats[0].requests, stats[1].requests);
}

TEST(MultipathTest, FailoverToSurvivingChannel) {
  MultipathFixture fx;
  auto conn = fx.make_conn();
  // Kill channel 0's transport; fetches must succeed via channel 1.
  conn.channel_transport(0).close("induced failure");
  EXPECT_EQ(fx.fetch_all(conn, 4), 4);
  const auto stats = conn.channel_stats();
  EXPECT_EQ(stats[0].requests + stats[1].requests, 4u);
  EXPECT_EQ(stats[1].requests, 4u);
}

TEST(MultipathTest, AllChannelsDeadErrors) {
  MultipathFixture fx;
  auto conn = fx.make_conn();
  conn.channel_transport(0).close("dead");
  conn.channel_transport(1).close("dead");
  bool errored = false;
  http::HttpRequest req;
  req.target = "/obj0.bin";
  req.headers.set("Host", "www.far.example");
  conn.fetch(req, [&](Result<http::HttpResponse> r) { errored = !r.ok(); });
  fx.world->sim().run_for(seconds(1));
  EXPECT_TRUE(errored);
}

/// Multipath must deliver every object intact even when both paths lose
/// packets.
class MultipathLoss : public ::testing::TestWithParam<double> {};

TEST_P(MultipathLoss, LossyChannelsStillDeliverIntact) {
  browser::WorldConfig config;
  config.seed = 17;
  config.inter_as_loss = GetParam();
  auto world = make_remote_world(config);
  auto& site = *world->site("www.far.example");
  for (int i = 0; i < 6; ++i) {
    site.add_blob("/obj" + std::to_string(i) + ".bin", 15'000);
  }
  auto& topo = world->topology();
  const auto rp = topo.host_by_name("far-rp1");
  std::vector<scion::Path> paths;
  for (const auto& p : topo.daemon_for(world->client).query_now(topo.as_of(rp))) {
    if (p.link_count() == 3) paths.push_back(p);
  }
  ASSERT_EQ(paths.size(), 2u);

  http::MultipathScionConnection conn(topo.scion_stack(world->client),
                                      scion::ScionEndpoint{topo.scion_addr(rp), 80}, paths);
  int done = 0;
  bool intact = true;
  for (int i = 0; i < 6; ++i) {
    http::HttpRequest req;
    req.target = "/obj" + std::to_string(i) + ".bin";
    req.headers.set("Host", "www.far.example");
    const Bytes expected = http::generate_blob(
        15'000, [&] {
          const auto tag = crypto::sha256("/obj" + std::to_string(i) + ".bin");
          std::uint64_t seed = 0;
          for (int b = 0; b < 8; ++b) seed = (seed << 8) | tag[static_cast<std::size_t>(b)];
          return seed;
        }());
    conn.fetch(req, [&, expected](Result<http::HttpResponse> r) {
      if (!r.ok() || r.value().body != expected) intact = false;
      ++done;
    });
  }
  world->sim().run_until_condition([&] { return done == 6; },
                                   world->sim().now() + seconds(300));
  EXPECT_EQ(done, 6);
  EXPECT_TRUE(intact);
  if (GetParam() > 0) {
    EXPECT_GT(topo.network().drop_totals().loss, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, MultipathLoss, ::testing::Values(0.0, 0.03));

// --------------------------------------------------- rebeacon and expiry --

TEST(RebeaconTest, ExpiredHopFieldsDropped) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  const auto server = topo.host_by_name("far-www");
  const auto paths = topo.daemon_for(world->client).query_now(topo.as_of(server));
  ASSERT_FALSE(paths.empty());

  std::string got;
  auto socket = topo.scion_stack(server).bind(
      9000, [&](const scion::ScionEndpoint&, const scion::DataplanePath&, net::PacketView payload) {
        got = to_string_view_copy(payload.span());
      });
  auto client = topo.scion_stack(world->client).bind(0, nullptr);

  // Advance the data-plane clock beyond beacon_ts + hop expiry (24h).
  topo.set_data_plane_time(1'000'000 + 24 * 3600 + 1);
  client->send_to(scion::ScionEndpoint{topo.scion_addr(server), 9000},
                  paths.front().dataplane(), from_string("stale"));
  world->sim().run();
  EXPECT_EQ(got, "");
  std::uint64_t expired_drops = 0;
  for (const auto ia : topo.all_ases()) {
    expired_drops += topo.border_router_stats(ia).drop_expired;
  }
  EXPECT_GE(expired_drops, 1u);

  // Re-beacon with a fresh timestamp: new paths work under the same clock.
  topo.rebeacon(1'000'000 + 24 * 3600);
  const auto fresh = topo.daemon_for(world->client).query_now(topo.as_of(server));
  ASSERT_FALSE(fresh.empty());
  client->send_to(scion::ScionEndpoint{topo.scion_addr(server), 9000},
                  fresh.front().dataplane(), from_string("fresh"));
  world->sim().run();
  EXPECT_EQ(got, "fresh");
}

TEST(RebeaconTest, DaemonCachesFlushOnRebeacon) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  scion::Daemon& daemon = topo.daemon_for(world->client);
  bool done = false;
  daemon.query(topo.as_by_name("server-as"), [&](std::vector<scion::Path>) { done = true; });
  world->sim().run();
  ASSERT_TRUE(done);
  EXPECT_EQ(daemon.cache_misses(), 1u);

  topo.rebeacon(2'000'000);
  bool done2 = false;
  std::uint32_t seen_ts = 0;
  daemon.query(topo.as_by_name("server-as"), [&](std::vector<scion::Path> paths) {
    done2 = true;
    ASSERT_FALSE(paths.empty());
    seen_ts = paths.front().dataplane().segments.front().origin_ts;
  });
  world->sim().run();
  ASSERT_TRUE(done2);
  EXPECT_EQ(daemon.cache_misses(), 2u);  // cache was flushed
  EXPECT_EQ(seen_ts, 2'000'000u);        // fresh segments
}

TEST(RebeaconTest, OldPathsRejectedAfterKeyEpochChange) {
  // Paths carrying the old timestamp fail MAC verification once beacons are
  // re-originated (the MAC input includes the origination timestamp, so the
  // data plane cleanly distinguishes epochs).
  auto world = make_remote_world();
  auto& topo = world->topology();
  const auto server = topo.host_by_name("far-www");
  const auto old_paths = topo.daemon_for(world->client).query_now(topo.as_of(server));
  topo.rebeacon(3'000'000);

  // Old dataplane paths still verify (MAC covers ts, key unchanged) — expiry
  // is what retires them. Fresh paths must carry the new timestamp.
  const auto fresh = topo.daemon_for(world->client).query_now(topo.as_of(server));
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh.front().dataplane().segments.front().origin_ts, 3'000'000u);
  ASSERT_FALSE(old_paths.empty());
  EXPECT_NE(old_paths.front().dataplane().segments.front().origin_ts, 3'000'000u);
}

}  // namespace
}  // namespace pan
