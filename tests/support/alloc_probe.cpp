#include "support/alloc_probe.hpp"

#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define PAN_ALLOC_PROBE_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PAN_ALLOC_PROBE_DISABLED 1
#endif
#endif

namespace {
std::uint64_t g_allocations = 0;
}  // namespace

namespace pan::testsupport {

std::uint64_t allocation_count() { return g_allocations; }

bool alloc_probe_active() {
#ifdef PAN_ALLOC_PROBE_DISABLED
  return false;
#else
  return true;
#endif
}

}  // namespace pan::testsupport

#ifndef PAN_ALLOC_PROBE_DISABLED

namespace {

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();
  return p;
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size == 0 ? 1 : size) != 0) {
    std::abort();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) { return counted_alloc(size, align); }
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // PAN_ALLOC_PROBE_DISABLED
