// Counting allocator probe: a replacement global operator new/delete that
// counts every heap allocation in the process. Link tests/support/
// alloc_probe.cpp into a target (via the pan_alloc_probe library) to
// activate; zero-allocation assertions then read allocation_count() deltas.
//
// Under AddressSanitizer the replacement operators are compiled out (ASan
// owns the allocator and its new/delete interceptors must stay in place), so
// callers must gate assertions on alloc_probe_active().
#pragma once

#include <cstdint>

namespace pan::testsupport {

/// Total global operator-new calls since process start (0 when inactive).
[[nodiscard]] std::uint64_t allocation_count();

/// True when the counting operators are actually installed (false under
/// sanitizers).
[[nodiscard]] bool alloc_probe_active();

}  // namespace pan::testsupport
