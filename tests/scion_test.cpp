// Tests for the SCION substrate: control plane (PKI, beaconing, segments,
// path combination) and data plane (headers, hop-field MACs, border-router
// forwarding, host sockets).
#include <gtest/gtest.h>

#include <unordered_set>

#include "scion/topology.hpp"

namespace pan::scion {
namespace {

/// Two-ISD topology used across the suite:
///
///   ISD 1: core c1 --- leaf a, leaf b (children of c1)
///   ISD 2: core c2a, c2b; leaf d (child of both cores)
///   core links: c1--c2a (80ms), c1--c2b (25ms), c2a--c2b (5ms)
struct Fixture {
  sim::Simulator sim;
  TopologyConfig config;
  std::unique_ptr<Topology> topo;
  HostId host_a;
  HostId host_a2;
  HostId host_d;

  explicit Fixture(bool sign = true) {
    config.seed = 7;
    config.sign_beacons = sign;
    config.verify_beacons = sign;
    topo = std::make_unique<Topology>(sim, config);

    const auto add = [&](const char* name, Isd isd, Asn asn, bool core) {
      AsSpec spec;
      spec.name = name;
      spec.ia = IsdAsn{isd, asn};
      spec.core = core;
      spec.meta.country = isd == 1 ? "CH" : "US";
      spec.meta.ethics_rating = 80;
      topo->add_as(spec);
    };
    add("c1", 1, 0x110, true);
    add("a", 1, 0x111, false);
    add("b", 1, 0x112, false);
    add("c2a", 2, 0x210, true);
    add("c2b", 2, 0x220, true);
    add("d", 2, 0x211, false);

    const auto link = [&](const char* x, const char* y, LinkType type, std::int64_t ms,
                          double co2) {
      AsLinkSpec spec;
      spec.a = x;
      spec.b = y;
      spec.type = type;
      spec.params.latency = milliseconds(ms);
      spec.params.bandwidth_bps = 1e9;
      spec.params.mtu = 1500;
      spec.co2_g_per_gb = co2;
      spec.cost_per_gb = 10;
      topo->add_link(spec);
    };
    link("c1", "c2a", LinkType::kCore, 80, 30);
    link("c1", "c2b", LinkType::kCore, 25, 10);
    link("c2a", "c2b", LinkType::kCore, 5, 5);
    link("c1", "a", LinkType::kParentChild, 2, 4);
    link("c1", "b", LinkType::kParentChild, 3, 4);
    link("c2a", "d", LinkType::kParentChild, 2, 4);
    link("c2b", "d", LinkType::kParentChild, 3, 4);

    host_a = topo->add_host("a", "host-a");
    host_a2 = topo->add_host("a", "host-a2");
    host_d = topo->add_host("d", "host-d");
    topo->finalize();
  }

  [[nodiscard]] IsdAsn ia(const char* name) const { return topo->as_by_name(name); }
};

// ------------------------------------------------------------ hopfield --

TEST(HopFieldTest, MacVerifies) {
  ForwardingKey key(16, 0x11);
  HopField hf;
  hf.isd_as = IsdAsn{1, 0x110};
  hf.in_if = 3;
  hf.out_if = 7;
  hf.expiry_s = 3600;
  seal_hop_field(hf, 1000, key);
  EXPECT_TRUE(verify_hop_field(hf, 1000, key));
}

TEST(HopFieldTest, MacIsDirectionNormalized) {
  // Reversing a segment swaps in/out; the MAC must stay valid.
  ForwardingKey key(16, 0x11);
  HopField hf;
  hf.isd_as = IsdAsn{1, 0x110};
  hf.in_if = 3;
  hf.out_if = 7;
  seal_hop_field(hf, 1000, key);
  HopField swapped = hf;
  std::swap(swapped.in_if, swapped.out_if);
  EXPECT_TRUE(verify_hop_field(swapped, 1000, key));
}

TEST(HopFieldTest, TamperingBreaksMac) {
  ForwardingKey key(16, 0x11);
  HopField hf;
  hf.isd_as = IsdAsn{1, 0x110};
  hf.in_if = 3;
  hf.out_if = 7;
  hf.expiry_s = 3600;
  seal_hop_field(hf, 1000, key);

  HopField wrong_as = hf;
  wrong_as.isd_as = IsdAsn{1, 0x999};
  EXPECT_FALSE(verify_hop_field(wrong_as, 1000, key));

  HopField wrong_if = hf;
  wrong_if.out_if = 9;
  EXPECT_FALSE(verify_hop_field(wrong_if, 1000, key));

  HopField wrong_expiry = hf;
  wrong_expiry.expiry_s = 7200;
  EXPECT_FALSE(verify_hop_field(wrong_expiry, 1000, key));

  EXPECT_FALSE(verify_hop_field(hf, 1001, key));  // wrong timestamp

  ForwardingKey other_key(16, 0x22);
  EXPECT_FALSE(verify_hop_field(hf, 1000, other_key));
}

TEST(HopFieldTest, SerializeRoundTrip) {
  ForwardingKey key(16, 0x33);
  HopField hf;
  hf.isd_as = IsdAsn{3, 0xff00'0000'0333ULL};
  hf.in_if = 12;
  hf.out_if = 0;
  hf.expiry_s = 999;
  seal_hop_field(hf, 5, key);
  ByteWriter w;
  serialize_hop_field(w, hf);
  ByteReader r(w.bytes());
  const HopField parsed = parse_hop_field(r);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(parsed, hf);
}

// ------------------------------------------------------------------ pki --

TEST(PkiTest, CertificateChainValidates) {
  Fixture fx;
  const TrustStore& trust = fx.topo->trust_store();
  for (const IsdAsn ia : fx.topo->all_ases()) {
    EXPECT_NE(trust.verified_key(ia), nullptr) << ia.to_string();
  }
}

TEST(PkiTest, ForeignIssuerRejected) {
  Rng rng(1);
  const auto subject_kp = crypto::generate_keypair(rng);
  const auto rogue_kp = crypto::generate_keypair(rng);
  TrustStore trust;
  Trc trc;
  trc.isd = 1;
  Rng rng2(2);
  const auto core_kp = crypto::generate_keypair(rng2);
  trc.core_keys[IsdAsn{1, 0x110}] = core_kp.public_key;
  trust.add_trc(trc);
  // Issued by a key that is not in the TRC.
  const AsCertificate bad = issue_certificate(IsdAsn{1, 0x111}, subject_kp.public_key,
                                              IsdAsn{1, 0x110}, rogue_kp.private_key);
  trust.add_certificate(bad);
  EXPECT_FALSE(trust.validate_certificate(bad));
  EXPECT_EQ(trust.verified_key(IsdAsn{1, 0x111}), nullptr);
}

TEST(PkiTest, MissingTrcRejected) {
  Rng rng(1);
  const auto kp = crypto::generate_keypair(rng);
  TrustStore trust;
  const AsCertificate cert =
      issue_certificate(IsdAsn{9, 1}, kp.public_key, IsdAsn{9, 1}, kp.private_key);
  EXPECT_FALSE(trust.validate_certificate(cert));
}

// ------------------------------------------------------------- beacons --

TEST(BeaconingTest, SegmentsRegistered) {
  Fixture fx;
  const PathServerInfra& infra = fx.topo->path_infra();
  EXPECT_GT(infra.core_segment_count(), 0u);
  EXPECT_GT(infra.down_segment_count(), 0u);
  // Leaf ASes have down segments from their cores.
  EXPECT_FALSE(infra.down_segments(fx.ia("a")).empty());
  EXPECT_FALSE(infra.down_segments(fx.ia("d")).empty());
  // d is dual-homed: segments from both ISD-2 cores.
  std::unordered_set<std::uint64_t> origins;
  for (const PathSegment& seg : infra.down_segments(fx.ia("d"))) {
    origins.insert(seg.origin.packed());
  }
  EXPECT_EQ(origins.size(), 2u);
}

TEST(BeaconingTest, SegmentsVerifyAgainstTrustStore) {
  Fixture fx;
  for (const PathSegment& seg : fx.topo->path_infra().down_segments(fx.ia("d"))) {
    EXPECT_TRUE(verify_segment(seg, fx.topo->trust_store()));
  }
}

TEST(BeaconingTest, TamperedSegmentFailsVerification) {
  Fixture fx;
  PathSegment seg = fx.topo->path_infra().down_segments(fx.ia("d")).front();
  seg.entries.back().ingress_link.co2_g_per_gb += 1;  // greenwashing attempt
  EXPECT_FALSE(verify_segment(seg, fx.topo->trust_store()));
}

TEST(BeaconingTest, ReorderedSegmentFailsVerification) {
  Fixture fx;
  PathSegment seg = fx.topo->path_infra().down_segments(fx.ia("d")).front();
  ASSERT_GE(seg.entries.size(), 2u);
  // An attacker reorders the AS entries: the chained signatures (and the
  // origin check) must catch it.
  std::reverse(seg.entries.begin(), seg.entries.end());
  EXPECT_FALSE(verify_segment(seg, fx.topo->trust_store()));
}

TEST(BeaconingTest, PrefixOfSegmentStillVerifiesButEndsElsewhere) {
  // Dropping the last entry leaves a validly signed (shorter) chain — the
  // chain itself cannot prevent truncation; consumers must check that the
  // segment ends where they need it to (the daemon's combiner does).
  Fixture fx;
  PathSegment seg = fx.topo->path_infra().down_segments(fx.ia("d")).front();
  ASSERT_GE(seg.entries.size(), 2u);
  const IsdAsn original_last = seg.last_as();
  seg.entries.pop_back();
  EXPECT_TRUE(verify_segment(seg, fx.topo->trust_store()));
  EXPECT_NE(seg.last_as(), original_last);
}

TEST(BeaconingTest, CoreSegmentsConnectCores) {
  Fixture fx;
  const auto segs = fx.topo->path_infra().core_segments(fx.ia("c2b"), fx.ia("c1"));
  EXPECT_FALSE(segs.empty());
  for (const PathSegment* seg : segs) {
    EXPECT_EQ(seg->origin, fx.ia("c2b"));
    EXPECT_EQ(seg->last_as(), fx.ia("c1"));
  }
}

// ---------------------------------------------------------------- paths --

TEST(DaemonTest, FindsInterIsdPaths) {
  Fixture fx;
  Daemon& daemon = fx.topo->daemon(fx.ia("a"));
  const std::vector<Path> paths = daemon.query_now(fx.ia("d"));
  ASSERT_FALSE(paths.empty());
  for (const Path& p : paths) {
    EXPECT_EQ(p.src(), fx.ia("a"));
    EXPECT_EQ(p.dst(), fx.ia("d"));
    EXPECT_EQ(p.hops().front().isd_as, fx.ia("a"));
    EXPECT_EQ(p.hops().back().isd_as, fx.ia("d"));
    // Loop-free.
    std::unordered_set<std::uint64_t> seen;
    for (const PathHop& hop : p.hops()) {
      EXPECT_TRUE(seen.insert(hop.isd_as.packed()).second);
    }
  }
}

TEST(DaemonTest, PathsSortedByLatency) {
  Fixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].meta().latency, paths[i].meta().latency);
  }
  // Best path takes the 25ms detour core link: a->c1->c2b->d = 2+25+3.
  EXPECT_EQ(paths.front().meta().latency.nanos(), milliseconds(30).nanos());
}

TEST(DaemonTest, MetadataAggregation) {
  Fixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  const Path& best = paths.front();
  EXPECT_EQ(best.link_count(), 3u);
  EXPECT_DOUBLE_EQ(best.meta().co2_g_per_gb, 4 + 10 + 4);  // a-c1 + c1-c2b + c2b-d
  EXPECT_DOUBLE_EQ(best.meta().cost_per_gb, 30);
  EXPECT_EQ(best.meta().mtu, 1500u);
  EXPECT_DOUBLE_EQ(best.meta().bandwidth_bps, 1e9);
  const auto countries = best.countries();
  ASSERT_EQ(countries.size(), 2u);
  EXPECT_EQ(countries[0], "CH");
  EXPECT_EQ(countries[1], "US");
}

TEST(DaemonTest, IntraIsdPath) {
  Fixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("b"));
  ASSERT_FALSE(paths.empty());
  // a -> c1 -> b: 2 links, same ISD, no core segment needed.
  EXPECT_EQ(paths.front().link_count(), 2u);
  EXPECT_EQ(paths.front().meta().latency.nanos(), milliseconds(5).nanos());
}

TEST(DaemonTest, LocalPathForOwnAs) {
  Fixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("a"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths.front().is_local());
}

TEST(DaemonTest, AsyncQueryCachesAndCostsLatency) {
  Fixture fx;
  Daemon& daemon = fx.topo->daemon(fx.ia("a"));
  bool first_done = false;
  const TimePoint t0 = fx.sim.now();
  daemon.query(fx.ia("d"), [&](std::vector<Path> paths) {
    EXPECT_FALSE(paths.empty());
    first_done = true;
    EXPECT_EQ((fx.sim.now() - t0).nanos(), fx.config.daemon.lookup_latency.nanos());
  });
  fx.sim.run();
  EXPECT_TRUE(first_done);
  EXPECT_EQ(daemon.cache_misses(), 1u);

  bool second_done = false;
  const TimePoint t1 = fx.sim.now();
  daemon.query(fx.ia("d"), [&](std::vector<Path>) {
    second_done = true;
    EXPECT_EQ(fx.sim.now(), t1);  // cache hit: same event
  });
  EXPECT_TRUE(second_done);
  EXPECT_EQ(daemon.cache_hits(), 1u);
}

TEST(PathTest, ReversalFlipsSegmentsAndDirections) {
  Fixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  const DataplanePath& forward = paths.front().dataplane();
  const DataplanePath reversed = forward.reversed();
  ASSERT_EQ(reversed.segments.size(), forward.segments.size());
  EXPECT_EQ(reversed.total_hops(), forward.total_hops());
  for (std::size_t i = 0; i < forward.segments.size(); ++i) {
    const auto& f = forward.segments[i];
    const auto& r = reversed.segments[reversed.segments.size() - 1 - i];
    EXPECT_NE(f.reversed, r.reversed);
    EXPECT_EQ(f.hops.size(), r.hops.size());
  }
  // Double reversal is the identity on traversal semantics.
  const DataplanePath twice = reversed.reversed();
  for (std::size_t i = 0; i < forward.segments.size(); ++i) {
    EXPECT_EQ(twice.segments[i].reversed, forward.segments[i].reversed);
  }
}

TEST(PathTest, FingerprintDistinguishesPaths) {
  Fixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  std::unordered_set<std::string> fingerprints;
  for (const Path& p : paths) {
    EXPECT_TRUE(fingerprints.insert(p.fingerprint()).second) << p.to_string();
  }
}

TEST(PathTest, ContainsQueries) {
  Fixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  const Path& best = paths.front();
  EXPECT_TRUE(best.contains_as(fx.ia("c1")));
  EXPECT_TRUE(best.contains_isd(2));
  EXPECT_FALSE(best.contains_as(fx.ia("b")));
}

// --------------------------------------------------------------- header --

TEST(HeaderTest, SerializeParseRoundTrip) {
  Fixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  ScionHeader header;
  header.src = ScionAddr{fx.ia("a"), net::IpAddr{0x01020304}};
  header.dst = ScionAddr{fx.ia("d"), net::IpAddr{0x05060708}};
  header.src_port = 1234;
  header.dst_port = 80;
  header.path = paths.front().dataplane();
  header.cur_seg = 0;
  header.cur_hop = 0;
  const Bytes payload = from_string("hello scion");
  const Bytes wire = serialize_scion_packet(header, payload);
  EXPECT_EQ(wire.size(), scion_header_size(header.path) + payload.size());

  const auto parsed = parse_scion_packet(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header.src.ia, header.src.ia);
  EXPECT_EQ(parsed.value().header.dst.host, header.dst.host);
  EXPECT_EQ(parsed.value().header.src_port, 1234);
  EXPECT_EQ(parsed.value().header.dst_port, 80);
  EXPECT_EQ(parsed.value().header.path.segments.size(), header.path.segments.size());
  EXPECT_EQ(parsed.value().payload_bytes(), payload);
}

TEST(HeaderTest, CursorPatch) {
  ScionHeader header;
  header.path.segments.push_back(DataplaneSegment{false, 1, {HopField{}}});
  Bytes wire = serialize_scion_packet(header, {});
  patch_cursor(wire, 1, 2);
  const auto parsed = parse_scion_packet(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header.cur_seg, 1);
  EXPECT_EQ(parsed.value().header.cur_hop, 2);
}

TEST(HeaderTest, RejectsBadMagicAndTruncation) {
  EXPECT_FALSE(parse_scion_packet(Bytes{0x00, 0x01}).ok());
  ScionHeader header;
  const Bytes wire = serialize_scion_packet(header, {});
  Bytes truncated(wire.begin(), wire.begin() + 10);
  EXPECT_FALSE(parse_scion_packet(truncated).ok());
}

// ------------------------------------------------------------ dataplane --

struct PingPong {
  Fixture fx;
  std::unique_ptr<ScionSocket> server;
  std::unique_ptr<ScionSocket> client;
  std::string server_got;
  std::string client_got;

  PingPong() {
    ScionStack& server_stack = fx.topo->scion_stack(fx.host_d);
    server = server_stack.bind(
        9000, [this](const ScionEndpoint& from, const DataplanePath& reply, net::PacketView payload) {
          server_got = to_string_view_copy(payload.span());
          server->send_to(from, reply, from_string("pong"));
        });
    ScionStack& client_stack = fx.topo->scion_stack(fx.host_a);
    client = client_stack.bind(
        0, [this](const ScionEndpoint&, const DataplanePath&, net::PacketView payload) {
          client_got = to_string_view_copy(payload.span());
        });
  }
};

TEST(DataplaneTest, EndToEndPingPong) {
  PingPong world;
  const auto paths = world.fx.topo->daemon(world.fx.ia("a")).query_now(world.fx.ia("d"));
  world.client->send_to(ScionEndpoint{world.fx.topo->scion_addr(world.fx.host_d), 9000},
                        paths.front().dataplane(), from_string("ping"));
  world.fx.sim.run();
  EXPECT_EQ(world.server_got, "ping");
  EXPECT_EQ(world.client_got, "pong");
  // Round trip over the 30ms path plus processing: ~60ms.
  EXPECT_GT(world.fx.sim.now().nanos(), milliseconds(59).nanos());
  EXPECT_LT(world.fx.sim.now().nanos(), milliseconds(70).nanos());
}

TEST(DataplaneTest, EveryCandidatePathWorks) {
  Fixture fx;
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  for (const Path& path : paths) {
    PingPong world;  // fresh world per path to keep counters clean
    const auto fresh =
        world.fx.topo->daemon(world.fx.ia("a")).query_now(world.fx.ia("d"));
    // Match by fingerprint in the fresh world.
    const Path* chosen = nullptr;
    for (const Path& candidate : fresh) {
      if (candidate.fingerprint() == path.fingerprint()) chosen = &candidate;
    }
    ASSERT_NE(chosen, nullptr);
    world.client->send_to(ScionEndpoint{world.fx.topo->scion_addr(world.fx.host_d), 9000},
                          chosen->dataplane(), from_string("ping"));
    world.fx.sim.run();
    EXPECT_EQ(world.client_got, "pong") << chosen->to_string();
  }
}

TEST(DataplaneTest, IntraAsDelivery) {
  Fixture fx;
  ScionStack& stack_a = fx.topo->scion_stack(fx.host_a);
  ScionStack& stack_a2 = fx.topo->scion_stack(fx.host_a2);
  std::string got;
  auto server = stack_a2.bind(9001, [&](const ScionEndpoint&, const DataplanePath& reply,
                                        net::PacketView payload) {
    got = to_string_view_copy(payload.span());
    EXPECT_TRUE(reply.empty());
  });
  auto client = stack_a.bind(0, nullptr);
  client->send_to(ScionEndpoint{fx.topo->scion_addr(fx.host_a2), 9001}, DataplanePath{},
                  from_string("local"));
  fx.sim.run();
  EXPECT_EQ(got, "local");
}

TEST(DataplaneTest, ForgedHopFieldDropped) {
  PingPong world;
  auto paths = world.fx.topo->daemon(world.fx.ia("a")).query_now(world.fx.ia("d"));
  DataplanePath forged = paths.front().dataplane();
  // A host tries to reroute by rewriting an interface without the AS key.
  forged.segments.back().hops.back().in_if ^= 0x3;
  world.client->send_to(ScionEndpoint{world.fx.topo->scion_addr(world.fx.host_d), 9000},
                        forged, from_string("evil"));
  world.fx.sim.run();
  EXPECT_EQ(world.server_got, "");
  std::uint64_t mac_drops = 0;
  for (const IsdAsn ia : world.fx.topo->all_ases()) {
    mac_drops += world.fx.topo->border_router_stats(ia).drop_mac;
  }
  EXPECT_GE(mac_drops, 1u);
}

TEST(DataplaneTest, SpoofedPathWithoutKeysDropped) {
  PingPong world;
  // Craft a plausible-looking one-segment path with zero MACs.
  DataplaneSegment seg;
  seg.origin_ts = 1'000'000;
  for (const char* name : {"a", "c1", "c2b", "d"}) {
    HopField hf;
    hf.isd_as = world.fx.ia(name);
    hf.in_if = 1;
    hf.out_if = 2;
    hf.expiry_s = 24 * 3600;
    seg.hops.push_back(hf);
  }
  seg.hops.front().in_if = 0;
  seg.hops.back().out_if = 0;
  DataplanePath forged;
  forged.segments.push_back(seg);
  world.client->send_to(ScionEndpoint{world.fx.topo->scion_addr(world.fx.host_d), 9000},
                        forged, from_string("evil"));
  world.fx.sim.run();
  EXPECT_EQ(world.server_got, "");
}

TEST(DataplaneTest, UnsignedTopologyStillForwards) {
  // sign_beacons=false: control plane skips signatures (fast setup mode);
  // the data plane MACs still work.
  Fixture fx(/*sign=*/false);
  ScionStack& stack_a = fx.topo->scion_stack(fx.host_a);
  ScionStack& stack_d = fx.topo->scion_stack(fx.host_d);
  std::string got;
  auto server = stack_d.bind(9000, [&](const ScionEndpoint&, const DataplanePath&,
                                       net::PacketView payload) { got = to_string_view_copy(payload.span()); });
  auto client = stack_a.bind(0, nullptr);
  const auto paths = fx.topo->daemon(fx.ia("a")).query_now(fx.ia("d"));
  ASSERT_FALSE(paths.empty());
  client->send_to(ScionEndpoint{fx.topo->scion_addr(fx.host_d), 9000},
                  paths.front().dataplane(), from_string("x"));
  fx.sim.run();
  EXPECT_EQ(got, "x");
}

TEST(TopologyTest, ValidationErrors) {
  sim::Simulator sim;
  Topology topo(sim);
  AsSpec spec;
  spec.name = "x";
  spec.ia = IsdAsn{1, 1};
  spec.core = true;
  topo.add_as(spec);
  EXPECT_THROW(topo.add_as(spec), std::invalid_argument);  // duplicate
  AsLinkSpec link;
  link.a = "x";
  link.b = "nope";
  EXPECT_THROW(topo.add_link(link), std::invalid_argument);
  link.b = "x";
  EXPECT_THROW(topo.add_link(link), std::invalid_argument);  // self link

  AsSpec leaf;
  leaf.name = "leaf";
  leaf.ia = IsdAsn{2, 2};
  leaf.core = false;
  topo.add_as(leaf);
  AsLinkSpec cross;
  cross.a = "x";
  cross.b = "leaf";
  cross.type = LinkType::kParentChild;
  EXPECT_THROW(topo.add_link(cross), std::invalid_argument);  // cross-ISD parent-child
  AsLinkSpec core_to_leaf;
  core_to_leaf.a = "x";
  core_to_leaf.b = "leaf";
  core_to_leaf.type = LinkType::kCore;
  EXPECT_THROW(topo.add_link(core_to_leaf), std::invalid_argument);  // leaf on core link
}

TEST(TopologyTest, LegacyRoutingFollowsFewestAsHops) {
  Fixture fx;
  // Legacy ping from a-host to d-host: BGP-like route goes via c2a (3 AS
  // hops, 84ms one-way) even though the SCION detour is faster.
  net::Host& src = fx.topo->host(fx.host_a);
  net::Host& dst = fx.topo->host(fx.host_d);
  TimePoint received_at;
  auto server = dst.udp_bind(7000, [&](const net::Endpoint&, net::PacketView) {
    received_at = fx.sim.now();
  });
  auto client = src.udp_bind(0, nullptr);
  client->send_to(net::Endpoint{dst.address(), 7000}, from_string("x"));
  fx.sim.run();
  // 2 + 80 + 2 ms inter-AS plus access links.
  EXPECT_GT(received_at.nanos(), milliseconds(84).nanos());
  EXPECT_LT(received_at.nanos(), milliseconds(86).nanos());
}

}  // namespace
}  // namespace pan::scion
