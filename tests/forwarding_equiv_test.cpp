// Golden forwarding equivalence: the zero-copy border-router pipeline
// (lazy ScionHeaderView + in-place cursor patch) must be byte-for-byte
// indistinguishable on the wire from the legacy eager-reparse pipeline, on
// random topologies, across multi-hop forwards, SCMP error origination, and
// both traversal directions. Plus the two performance contracts the refactor
// makes: zero heap allocations on the steady-state hop path, and zero
// signature re-verifications when re-beaconing an unchanged topology.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/trace.hpp"
#include "scion/border_router.hpp"
#include "scion/header.hpp"
#include "scion/topo_gen.hpp"
#include "support/alloc_probe.hpp"

namespace pan::scion {
namespace {

// ------------------------------------------------- wire-level equivalence --

/// Snapshot of every SCION packet event the network tracer sees: event kind,
/// link endpoints, and the full wire bytes of the packet at that moment.
struct WireLog {
  struct Entry {
    net::TraceEvent::Kind kind;
    net::NodeId from = 0;
    net::NodeId to = 0;
    Bytes bytes;
  };
  std::vector<Entry> entries;

  [[nodiscard]] net::TraceFn tracer() {
    return [this](const net::TraceEvent& e) {
      if (e.packet == nullptr || e.proto != net::Protocol::kScion) return;
      entries.push_back(Entry{e.kind, e.from, e.to, e.packet->payload.to_bytes()});
    };
  }
};

struct DriveResult {
  WireLog log;
  int delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t scmp_sent = 0;
};

/// Builds the seed's random world with the requested router pipeline and
/// drives identical traffic through it: every path between the first and
/// last leaf, both directions, then an expired-hop SCMP round. Returns the
/// complete wire log.
DriveResult drive(std::uint64_t seed, bool legacy_reparse) {
  sim::Simulator sim;
  TopoGenParams params;
  params.seed = seed;
  params.border_router.legacy_reparse = legacy_reparse;
  GeneratedTopology world = generate_topology(sim, params);
  Topology& topo = *world.topo;

  DriveResult result;
  topo.network().set_tracer(result.log.tracer());

  const HostId front = world.hosts.front();
  const HostId back = world.hosts.back();
  auto sink_back = topo.scion_stack(back).bind(
      7000, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView) {
        ++result.delivered;
      });
  auto sink_front = topo.scion_stack(front).bind(
      7000, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView) {
        ++result.delivered;
      });
  auto client_front = topo.scion_stack(front).bind(0, nullptr);
  auto client_back = topo.scion_stack(back).bind(0, nullptr);

  const auto forward_paths = topo.daemon_for(front).query_now(topo.as_of(back));
  const auto return_paths = topo.daemon_for(back).query_now(topo.as_of(front));
  EXPECT_FALSE(forward_paths.empty());
  EXPECT_FALSE(return_paths.empty());
  int n = 0;
  for (const Path& path : forward_paths) {
    client_front->send_to(ScionEndpoint{topo.scion_addr(back), 7000}, path.dataplane(),
                          from_string("fwd-" + std::to_string(n++)));
  }
  for (const Path& path : return_paths) {
    client_back->send_to(ScionEndpoint{topo.scion_addr(front), 7000}, path.dataplane(),
                         from_string("rev-" + std::to_string(n++)));
  }
  sim.run();

  // Expired hop fields: routers drop and originate SCMP back to the source —
  // the origination path (single-pass header+SCMP serialization vs the
  // legacy flow) must also be byte-identical.
  topo.set_data_plane_time(2'000'000 + 24 * 3600);
  client_front->send_to(ScionEndpoint{topo.scion_addr(back), 7000},
                        forward_paths.front().dataplane(), from_string("expired"));
  sim.run();

  for (const IsdAsn ia : topo.all_ases()) {
    const BorderRouterStats& stats = topo.border_router_stats(ia);
    result.forwarded += stats.forwarded;
    result.scmp_sent += stats.scmp_sent;
  }
  topo.network().set_tracer(nullptr);
  return result;
}

class ForwardingEquivalence : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ForwardingEquivalence, ::testing::Range<std::uint64_t>(1, 7));

TEST_P(ForwardingEquivalence, ZeroCopyMatchesLegacyByteForByte) {
  const DriveResult zero_copy = drive(GetParam(), /*legacy_reparse=*/false);
  const DriveResult legacy = drive(GetParam(), /*legacy_reparse=*/true);

  // Same deliveries, same hop-by-hop forwarding work, same SCMP reports.
  EXPECT_GT(zero_copy.delivered, 0);
  EXPECT_EQ(zero_copy.delivered, legacy.delivered);
  EXPECT_GT(zero_copy.forwarded, 0u);
  EXPECT_EQ(zero_copy.forwarded, legacy.forwarded);
  EXPECT_GT(zero_copy.scmp_sent, 0u);
  EXPECT_EQ(zero_copy.scmp_sent, legacy.scmp_sent);

  // Identical wire behaviour: every traced SCION packet event matches in
  // order, endpoints, and full packet bytes.
  ASSERT_EQ(zero_copy.log.entries.size(), legacy.log.entries.size());
  for (std::size_t i = 0; i < zero_copy.log.entries.size(); ++i) {
    const WireLog::Entry& a = zero_copy.log.entries[i];
    const WireLog::Entry& b = legacy.log.entries[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.from, b.from) << "event " << i;
    EXPECT_EQ(a.to, b.to) << "event " << i;
    ASSERT_EQ(a.bytes, b.bytes) << "wire bytes diverge at event " << i;
  }
}

// --------------------------------------------------- zero-allocation path --

TEST(ZeroCopyDataPlane, SteadyStateHopPathDoesNotAllocate) {
  const ForwardingKey key = from_string("zero-alloc-forwarding-key");
  constexpr std::uint32_t kTs = 1'000'000;

  ScionHeader header;
  header.src = ScionAddr{IsdAsn{1, 0x110}, net::IpAddr{7}};
  header.dst = ScionAddr{IsdAsn{1, 0x112}, net::IpAddr{9}};
  DataplaneSegment seg;
  seg.origin_ts = kTs;
  const IsdAsn transit{1, 0x111};
  const std::array<std::array<IfaceId, 2>, 3> ifaces = {{{kNoIface, 1}, {1, 2}, {2, kNoIface}}};
  for (int h = 0; h < 3; ++h) {
    HopField hf;
    hf.isd_as = h == 0 ? header.src.ia : (h == 1 ? transit : header.dst.ia);
    hf.in_if = ifaces[static_cast<std::size_t>(h)][0];
    hf.out_if = ifaces[static_cast<std::size_t>(h)][1];
    hf.expiry_s = 24 * 3600;
    seal_hop_field(hf, kTs, key);
    seg.hops.push_back(hf);
  }
  header.path.segments.push_back(seg);
  header.cur_seg = 0;
  header.cur_hop = 1;  // the transit AS's hop
  const Bytes wire = serialize_scion_packet(header, from_string("steady-state payload"));

  // The decision the transit router makes for this packet, forever. Routers
  // hold a precomputed HmacKey for their forwarding key; model that here.
  BorderRouterConfig config;
  const crypto::HmacKey mac_key(key);
  const HopDecision warm = decide_hop(wire, transit, mac_key, config);
  ASSERT_EQ(warm.action, HopDecision::Action::kForward);
  EXPECT_EQ(warm.egress, 2);
  EXPECT_EQ(warm.next_hop, 2);

  if (!testsupport::alloc_probe_active()) {
    GTEST_SKIP() << "counting allocator disabled under sanitizers";
  }

  // Parse + hop decode + MAC verify + cursor advance, 10k times: zero heap
  // allocations. Storage is uniquely owned, so patch_cursor patches in place.
  net::PacketView packet{Bytes(wire)};
  (void)packet.mutable_span();  // ensure unique storage before measuring
  std::uint64_t forwards = 0;
  const std::uint64_t before = testsupport::allocation_count();
  for (int i = 0; i < 10'000; ++i) {
    const HopDecision d = decide_hop(packet.span(), transit, mac_key, config);
    if (d.action == HopDecision::Action::kForward) ++forwards;
    patch_cursor(packet, d.next_seg, header.cur_hop);  // keep cursor on our hop
  }
  const std::uint64_t after = testsupport::allocation_count();
  EXPECT_EQ(after, before) << "hop path allocated " << (after - before) << " times";
  EXPECT_EQ(forwards, 10'000u);
}

// ----------------------------------------------- beacon verification memo --

struct SignedWorld {
  sim::Simulator sim;
  std::unique_ptr<Topology> topo;

  SignedWorld() {
    TopologyConfig config;
    config.seed = 7;
    topo = std::make_unique<Topology>(sim, config);  // sign + verify default on
    AsSpec core1{"core1", IsdAsn{1, 0x110}, true, {}};
    AsSpec core2{"core2", IsdAsn{1, 0x120}, true, {}};
    AsSpec leaf1{"leaf1", IsdAsn{1, 0x111}, false, {}};
    AsSpec leaf2{"leaf2", IsdAsn{1, 0x121}, false, {}};
    for (const auto& spec : {core1, core2, leaf1, leaf2}) topo->add_as(spec);
    AsLinkSpec core_link{"core1", "core2", LinkType::kCore, {}, 20.0, 10.0};
    AsLinkSpec down1{"core1", "leaf1", LinkType::kParentChild, {}, 20.0, 10.0};
    AsLinkSpec down2{"core2", "leaf2", LinkType::kParentChild, {}, 20.0, 10.0};
    for (const auto& spec : {core_link, down1, down2}) topo->add_link(spec);
    topo->finalize();
  }
};

TEST(BeaconVerificationMemo, RebeaconOverUnchangedTopologyNeverReverifies) {
  SignedWorld world;
  Topology& topo = *world.topo;

  const std::uint64_t initial_verifications = topo.beacon_verifications();
  const std::uint64_t initial_hits = topo.beacon_memo_hits();
  EXPECT_GT(initial_verifications, 0u);
  const std::size_t segments = topo.path_infra().segment_count();
  EXPECT_GT(segments, 0u);

  // Unchanged topology, unchanged timestamp: every rebuilt segment is
  // byte-identical to an already-verified one — zero re-verifications, one
  // memo hit per registered segment.
  topo.rebeacon(1'000'000);
  EXPECT_EQ(topo.beacon_verifications(), initial_verifications);
  EXPECT_EQ(topo.beacon_memo_hits(), initial_hits + segments);
  EXPECT_EQ(topo.path_infra().segment_count(), segments);

  // A new timestamp re-seals and re-signs every hop: the content digests
  // change, so every segment must be verified afresh. Memoization must never
  // skip verification of genuinely new bytes.
  topo.rebeacon(1'000'600);
  EXPECT_EQ(topo.beacon_verifications(), 2 * initial_verifications);
  EXPECT_EQ(topo.beacon_memo_hits(), initial_hits + segments);

  // Certificate chains were validated once per AS ever — verified_key() is
  // memoized across all of the above.
  EXPECT_EQ(topo.trust_store().chain_validations(), topo.as_count());
}

}  // namespace
}  // namespace pan::scion
