// Tests for the browser-integration core: page model, extension semantics
// (strict pins, indicator), browser loads in both modes, and the Table 1
// layer model.
#include <gtest/gtest.h>

#include "core/layer_model.hpp"
#include "core/scenarios.hpp"

namespace pan::browser {
namespace {

// ------------------------------------------------------------------ page --

TEST(PageTest, RenderParseRoundTrip) {
  const std::vector<std::string> resources{"http://a.example/x", "/local.css"};
  const std::string body = render_document(resources);
  EXPECT_TRUE(is_page_document(body));
  EXPECT_EQ(parse_document(body), resources);
}

TEST(PageTest, NonDocumentHasNoResources) {
  EXPECT_FALSE(is_page_document("<html>hello</html>"));
  EXPECT_TRUE(parse_document("random bytes").empty());
  EXPECT_TRUE(parse_document("").empty());
}

TEST(PageTest, IgnoresMalformedLines) {
  const std::string body = std::string(kPageDoctype) + "\nres /a\ngarbage\nres \n";
  EXPECT_EQ(parse_document(body), std::vector<std::string>{"/a"});
}

TEST(PageTest, ResolveResourceUrls) {
  const http::Url base = http::parse_url("http://www.example.org/index").value();
  const auto absolute = resolve_resource_url(base, "http://cdn.example.org/x.png");
  ASSERT_TRUE(absolute.ok());
  EXPECT_EQ(absolute.value().host, "cdn.example.org");
  const auto relative = resolve_resource_url(base, "/style.css");
  ASSERT_TRUE(relative.ok());
  EXPECT_EQ(relative.value().host, "www.example.org");
  EXPECT_EQ(relative.value().path, "/style.css");
  EXPECT_FALSE(resolve_resource_url(base, "style.css").ok());
}

// ------------------------------------------------------------- extension --

struct ExtensionFixture {
  std::unique_ptr<World> world = make_local_world();
  std::unique_ptr<dns::Resolver> resolver;
  std::unique_ptr<proxy::SkipProxy> proxy;
  std::unique_ptr<BrowserExtension> ext;

  ExtensionFixture() {
    auto& topo = world->topology();
    resolver = std::make_unique<dns::Resolver>(world->sim(), world->zone(), dns::ResolverConfig{});
    proxy = std::make_unique<proxy::SkipProxy>(world->sim(), topo.host(world->client),
                                               topo.scion_stack(world->client),
                                               topo.daemon_for(world->client), *resolver);
    ext = std::make_unique<BrowserExtension>(world->sim(), *proxy);
  }
};

TEST(ExtensionTest, GlobalStrictMode) {
  ExtensionFixture fx;
  EXPECT_FALSE(fx.ext->strict_for("any.example"));
  fx.ext->set_mode(OperationMode::kStrict);
  EXPECT_TRUE(fx.ext->strict_for("any.example"));
}

TEST(ExtensionTest, PerSiteStrictOverride) {
  ExtensionFixture fx;
  fx.ext->set_site_strict("bank.example", true);
  EXPECT_TRUE(fx.ext->strict_for("bank.example"));
  EXPECT_FALSE(fx.ext->strict_for("other.example"));
}

TEST(ExtensionTest, LearnsAndExpiresStrictScionPins) {
  ExtensionFixture fx;
  http::HttpResponse response = http::make_response(200);
  http::set_strict_scion(response, http::StrictScionDirective{seconds(60)});
  fx.ext->observe_response("pinned.example", response);
  EXPECT_TRUE(fx.ext->has_pin("pinned.example"));
  EXPECT_TRUE(fx.ext->strict_for("pinned.example"));
  fx.world->sim().run_until(fx.world->sim().now() + seconds(61));
  EXPECT_FALSE(fx.ext->has_pin("pinned.example"));
  EXPECT_FALSE(fx.ext->strict_for("pinned.example"));
}

TEST(ExtensionTest, MaxAgeZeroClearsPin) {
  ExtensionFixture fx;
  http::HttpResponse pin = http::make_response(200);
  http::set_strict_scion(pin, http::StrictScionDirective{seconds(60)});
  fx.ext->observe_response("site.example", pin);
  EXPECT_TRUE(fx.ext->has_pin("site.example"));
  http::HttpResponse clear = http::make_response(200);
  http::set_strict_scion(clear, http::StrictScionDirective{seconds(0)});
  fx.ext->observe_response("site.example", clear);
  EXPECT_FALSE(fx.ext->has_pin("site.example"));
}

TEST(ExtensionTest, ResponsesWithoutHeaderDoNothing) {
  ExtensionFixture fx;
  fx.ext->observe_response("site.example", http::make_response(200));
  EXPECT_EQ(fx.ext->pin_count(), 0u);
}

TEST(ExtensionTest, IndicatorStates) {
  EXPECT_EQ(BrowserExtension::indicator(0, 0), IndicatorState::kNoScion);
  EXPECT_EQ(BrowserExtension::indicator(0, 5), IndicatorState::kNoScion);
  EXPECT_EQ(BrowserExtension::indicator(3, 5), IndicatorState::kSomeScion);
  EXPECT_EQ(BrowserExtension::indicator(5, 5), IndicatorState::kAllScion);
}

// --------------------------------------------------------------- browser --

TEST(BrowserTest, LoadsScionOnlyPage) {
  auto world = make_local_world();
  auto& fs = *world->site("scion-fs.local");
  fs.add_blob("/img.png", 5'000);
  fs.add_text("/", render_document({"/img.png"}));
  ClientSession session(*world);
  const PageLoadResult result = session.load("http://scion-fs.local/");
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.resources.size(), 2u);
  EXPECT_EQ(result.over_scion, 2u);
  EXPECT_EQ(result.indicator, IndicatorState::kAllScion);
  EXPECT_TRUE(result.fully_policy_compliant);
  EXPECT_GT(result.plt.nanos(), 0);
}

TEST(BrowserTest, MixedPageShowsSomeScion) {
  auto world = make_local_world();
  world->site("scion-fs.local")
      ->add_text("/", render_document({"http://tcpip-fs.local/style.css"}));
  world->site("tcpip-fs.local")->add_blob("/style.css", 2'000);
  ClientSession session(*world);
  const PageLoadResult result = session.load("http://scion-fs.local/");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.over_scion, 1u);
  EXPECT_EQ(result.over_ip, 1u);
  EXPECT_EQ(result.indicator, IndicatorState::kSomeScion);
  EXPECT_FALSE(result.fully_policy_compliant);
}

TEST(BrowserTest, StrictModeBlocksThirdPartyLegacyResources) {
  auto world = make_local_world();
  world->site("scion-fs.local")
      ->add_text("/", render_document({"http://tcpip-fs.local/style.css", "/ok.png"}));
  world->site("scion-fs.local")->add_blob("/ok.png", 1'000);
  world->site("tcpip-fs.local")->add_blob("/style.css", 2'000);
  ClientSession session(*world);
  session.extension().set_mode(OperationMode::kStrict);
  const PageLoadResult result = session.load("http://scion-fs.local/");
  EXPECT_TRUE(result.ok);          // nothing failed...
  EXPECT_FALSE(result.complete);   // ...but something was blocked
  EXPECT_EQ(result.blocked, 1u);
  EXPECT_EQ(result.over_scion, 2u);
}

TEST(BrowserTest, StrictModeFailsClosedForLegacyMainDocument) {
  auto world = make_local_world();
  world->site("tcpip-fs.local")->add_text("/", "legacy page");
  ClientSession session(*world);
  session.extension().set_mode(OperationMode::kStrict);
  const PageLoadResult result = session.load("http://tcpip-fs.local/");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.blocked, 1u);
}

TEST(BrowserTest, DirectModeBypassesProxyEntirely) {
  auto world = make_local_world();
  auto& fs = *world->site("tcpip-fs.local");
  fs.add_blob("/img.png", 5'000);
  fs.add_text("/", render_document({"/img.png"}));
  DirectSession session(*world);
  const PageLoadResult result = session.load("http://tcpip-fs.local/");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.over_ip, 2u);
  EXPECT_EQ(result.indicator, IndicatorState::kNoScion);
}

TEST(BrowserTest, DirectModeCannotReachScionOnlySite) {
  auto world = make_local_world();
  world->site("scion-fs.local")->add_text("/", "x");
  DirectSession session(*world);
  const PageLoadResult result = session.load("http://scion-fs.local/");
  EXPECT_FALSE(result.ok);  // no A record, no SCION stack without extension
}

TEST(BrowserTest, MissingResourceCountsAsFailed) {
  auto world = make_local_world();
  world->site("scion-fs.local")->add_text("/", render_document({"/ghost.png"}));
  ClientSession session(*world);
  const PageLoadResult result = session.load("http://scion-fs.local/");
  EXPECT_FALSE(result.ok);  // 404 resource
  EXPECT_EQ(result.failed, 1u);
}

TEST(BrowserTest, StrictScionPinUpgradesSubsequentLoads) {
  auto world = make_local_world();
  auto& fs = *world->site("scion-fs.local");
  fs.enable_strict_scion(seconds(600));
  fs.add_text("/", render_document({"http://tcpip-fs.local/style.css"}));
  world->site("tcpip-fs.local")->add_blob("/style.css", 100);
  ClientSession session(*world);
  // First load: opportunistic, legacy resource loads over IP.
  const PageLoadResult first = session.load("http://scion-fs.local/");
  EXPECT_TRUE(first.ok);
  EXPECT_EQ(first.over_ip, 1u);
  EXPECT_TRUE(session.extension().has_pin("scion-fs.local"));
  // Second load: the pin forces strict mode for this site -> block.
  const PageLoadResult second = session.load("http://scion-fs.local/");
  EXPECT_EQ(second.blocked, 1u);
  EXPECT_EQ(second.over_ip, 0u);
}

TEST(BrowserTest, ConcurrencyLimitRespected) {
  auto world = make_local_world();
  auto& fs = *world->site("scion-fs.local");
  std::vector<std::string> resources;
  for (int i = 0; i < 12; ++i) {
    const std::string path = "/r" + std::to_string(i);
    fs.add_blob(path, 100);
    resources.push_back(path);
  }
  fs.add_text("/", render_document(resources));
  BrowserConfig config;
  config.max_concurrent_fetches = 2;
  ClientSession session(*world, {}, config);
  const PageLoadResult result = session.load("http://scion-fs.local/");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.resources.size(), 13u);
}

// --------------------------------------------------------------- redirects --

TEST(RedirectTest, FollowsSameOriginRedirect) {
  auto world = make_local_world();
  auto& fs = *world->site("scion-fs.local");
  fs.add_redirect("/old", "/new", 301);
  fs.add_text("/new", "fresh content");
  ClientSession session(*world);
  const PageLoadResult result = session.load("http://scion-fs.local/old");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.resources[0].status, 200);
  EXPECT_EQ(result.resources[0].redirects, 1);
  EXPECT_EQ(result.resources[0].url, "http://scion-fs.local/new");
}

TEST(RedirectTest, CrossOriginMainDocumentRebasesRelativeResources) {
  auto world = make_local_world();
  // Legacy host redirects to the SCION host; the page there references a
  // relative resource that must resolve against the *new* origin.
  world->site("tcpip-fs.local")->add_redirect("/", "http://scion-fs.local/landing");
  auto& scion_fs = *world->site("scion-fs.local");
  scion_fs.add_text("/landing", render_document({"/style.css"}));
  scion_fs.add_blob("/style.css", 500);
  ClientSession session(*world);
  const PageLoadResult result = session.load("http://tcpip-fs.local/");
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.resources.size(), 2u);
  // Both the landed document and its relative resource came over SCION.
  EXPECT_EQ(result.over_scion, 2u);
  EXPECT_EQ(result.indicator, IndicatorState::kAllScion);
}

TEST(RedirectTest, RedirectLoopIsCapped) {
  auto world = make_local_world();
  auto& fs = *world->site("tcpip-fs.local");
  fs.add_redirect("/a", "/b");
  fs.add_redirect("/b", "/a");
  ClientSession session(*world);
  const PageLoadResult result = session.load("http://tcpip-fs.local/a");
  EXPECT_FALSE(result.ok);  // ends on a 3xx after the cap
  EXPECT_EQ(result.resources[0].redirects, kMaxRedirects);
  EXPECT_GE(result.resources[0].status, 300);
  EXPECT_LT(result.resources[0].status, 400);
}

TEST(RedirectTest, DirectModeFollowsRedirectsToo) {
  auto world = make_local_world();
  auto& fs = *world->site("tcpip-fs.local");
  fs.add_redirect("/old", "/new", 308);
  fs.add_text("/new", "x");
  DirectSession session(*world);
  const PageLoadResult result = session.load("http://tcpip-fs.local/old");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.resources[0].redirects, 1);
}

TEST(BrowserTest, PageTimeoutSettlesWithFailure) {
  auto world = make_local_world();
  auto& topo = world->topology();
  // A server that accepts requests but never answers.
  http::LegacyHttpServer black_hole(topo.host(topo.host_by_name("tcpip-fs")), 8080,
                                    [](const http::HttpRequest&, http::HttpServer::Respond) {
                                    });
  world->zone().add_a("hole.local", topo.ip(topo.host_by_name("tcpip-fs")));
  BrowserConfig config;
  config.page_timeout = seconds(2);
  ClientSession session(*world, {}, config);
  const PageLoadResult result = session.load("http://hole.local:8080/");
  EXPECT_FALSE(result.ok);
  // Settled by the page timeout, not the (longer) proxy timeout.
  EXPECT_GE(result.plt.nanos(), seconds(2).nanos());
  EXPECT_LT(result.plt.nanos(), seconds(3).nanos());
}

// ------------------------------------------------------------------ cache --

TEST(CacheTest, RevalidationServes304FromCache) {
  auto world = make_local_world();
  auto& fs = *world->site("scion-fs.local");
  fs.add_blob("/app.js", 40'000);
  fs.add_text("/", render_document({"/app.js"}));
  BrowserConfig config;
  config.enable_cache = true;
  ClientSession session(*world, {}, config);

  const PageLoadResult cold = session.load("http://scion-fs.local/");
  ASSERT_TRUE(cold.ok);
  EXPECT_FALSE(cold.resources[1].from_cache);
  EXPECT_EQ(cold.resources[1].bytes, 40'000u);

  const PageLoadResult warm = session.load("http://scion-fs.local/");
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.resources[0].from_cache);
  EXPECT_TRUE(warm.resources[1].from_cache);
  EXPECT_EQ(warm.resources[1].status, 304);
  EXPECT_EQ(warm.resources[1].bytes, 40'000u);  // cached body
  EXPECT_EQ(fs.revalidations(), 2u);
  // Revalidating transfers only headers: the warm load is faster.
  EXPECT_LT(warm.plt.nanos(), cold.plt.nanos());
}

TEST(CacheTest, ChangedContentRefetches) {
  auto world = make_local_world();
  auto& fs = *world->site("tcpip-fs.local");
  fs.add_text("/data", "version-1");
  BrowserConfig config;
  config.enable_cache = true;
  ClientSession session(*world, {}, config);
  const PageLoadResult first = session.load("http://tcpip-fs.local/data");
  ASSERT_TRUE(first.ok);
  fs.add_text("/data", "version-2!");  // content (and ETag) changes
  const PageLoadResult second = session.load("http://tcpip-fs.local/data");
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(second.resources[0].from_cache);
  EXPECT_EQ(second.resources[0].status, 200);
  EXPECT_EQ(second.resources[0].bytes, 10u);
  EXPECT_EQ(fs.revalidations(), 0u);
}

TEST(CacheTest, DisabledByDefault) {
  auto world = make_local_world();
  auto& fs = *world->site("tcpip-fs.local");
  fs.add_text("/data", "payload");
  ClientSession session(*world);
  session.load("http://tcpip-fs.local/data");
  const PageLoadResult second = session.load("http://tcpip-fs.local/data");
  EXPECT_FALSE(second.resources[0].from_cache);
  EXPECT_EQ(fs.revalidations(), 0u);
}

// ------------------------------------------------------------ layer model --

TEST(LayerModelTest, SampledPathsAreWellFormed) {
  Rng rng(1);
  const auto paths = sample_candidate_paths(rng, 10);
  ASSERT_EQ(paths.size(), 10u);
  for (const auto& p : paths) {
    EXPECT_GE(p.hops().size(), 2u);
    EXPECT_GT(p.meta().latency.nanos(), 0);
    EXPECT_GT(p.meta().bandwidth_bps, 0);
  }
}

TEST(LayerModelTest, OsAchievesTransportMetrics) {
  Rng rng(2);
  double sum = 0;
  for (int t = 0; t < 50; ++t) {
    const auto paths = sample_candidate_paths(rng, 12);
    const TaskContext ctx = sample_context(PanProperty::kLowLatency, rng);
    sum += select_and_score(Layer::kOs, PanProperty::kLowLatency, paths, ctx, rng).achievement;
  }
  EXPECT_GT(sum / 50, 0.95);
}

TEST(LayerModelTest, OsFailsGeofencing) {
  Rng rng(3);
  double os_sum = 0;
  double user_sum = 0;
  for (int t = 0; t < 100; ++t) {
    const auto paths = sample_candidate_paths(rng, 12);
    const TaskContext ctx = sample_context(PanProperty::kGeofencing, rng);
    os_sum += select_and_score(Layer::kOs, PanProperty::kGeofencing, paths, ctx, rng).achievement;
    user_sum +=
        select_and_score(Layer::kUser, PanProperty::kGeofencing, paths, ctx, rng).achievement;
  }
  EXPECT_GT(user_sum / 100, 0.99);  // user always achieves the fence
  EXPECT_LT(os_sum / 100, user_sum / 100 - 0.1);
}

TEST(LayerModelTest, OnionDecisionNeedsContext) {
  Rng rng(4);
  const auto paths = sample_candidate_paths(rng, 5);
  TaskContext ctx;
  ctx.privacy_sensitive = true;
  ctx.app_knows_privacy = true;
  EXPECT_EQ(select_and_score(Layer::kOs, PanProperty::kOnionRouting, paths, ctx, rng).achievement,
            0.0);
  EXPECT_EQ(
      select_and_score(Layer::kApp, PanProperty::kOnionRouting, paths, ctx, rng).achievement,
      1.0);
  EXPECT_EQ(
      select_and_score(Layer::kUser, PanProperty::kOnionRouting, paths, ctx, rng).achievement,
      1.0);
  ctx.app_knows_privacy = false;
  EXPECT_EQ(
      select_and_score(Layer::kApp, PanProperty::kOnionRouting, paths, ctx, rng).achievement,
      0.0);
}

TEST(LayerModelTest, UserCannotSeeAbstractedMetrics) {
  Rng rng(5);
  double user_sum = 0;
  double os_sum = 0;
  for (int t = 0; t < 100; ++t) {
    const auto paths = sample_candidate_paths(rng, 15);
    const TaskContext ctx = sample_context(PanProperty::kLossRate, rng);
    user_sum +=
        select_and_score(Layer::kUser, PanProperty::kLossRate, paths, ctx, rng).achievement;
    os_sum += select_and_score(Layer::kOs, PanProperty::kLossRate, paths, ctx, rng).achievement;
  }
  EXPECT_GT(os_sum / 100, 0.95);
  EXPECT_LT(user_sum / 100, os_sum / 100 - 0.1);
}

TEST(LayerModelTest, FullTableMatchesPaperNarrative) {
  const auto table = compute_table1(150, 42);
  ASSERT_EQ(table.size(), all_properties().size());
  const auto row = [&](PanProperty p) -> const Table1Row& {
    for (const auto& r : table) {
      if (r.property == p) return r;
    }
    ADD_FAILURE() << "missing row";
    return table.front();
  };
  // Performance/quality: OS and App strong.
  EXPECT_EQ(row(PanProperty::kLowLatency).os.glyph(), '@');
  EXPECT_EQ(row(PanProperty::kLowLatency).app.glyph(), '@');
  EXPECT_EQ(row(PanProperty::kLossRate).user.glyph() == '@', false);
  EXPECT_EQ(row(PanProperty::kPathMtu).os.glyph(), '@');
  // Privacy / ESG: user decisive.
  EXPECT_EQ(row(PanProperty::kGeofencing).user.glyph(), '@');
  EXPECT_NE(row(PanProperty::kGeofencing).os.glyph(), '@');
  EXPECT_EQ(row(PanProperty::kCarbonFootprint).user.glyph(), '@');
  EXPECT_EQ(row(PanProperty::kOnionRouting).os.glyph(), '.');
  EXPECT_EQ(row(PanProperty::kOnionRouting).user.glyph(), '@');
}

}  // namespace
}  // namespace pan::browser
