// Tests for the chaos subsystem (fault plan parser + injector) and the SKIP
// proxy's resilience layer built on top of it: alternate-path retry inside
// the deadline budget, path quarantine, the per-origin circuit breaker,
// graceful strict-mode degradation (503 + Retry-After), and the /skip/health
// introspection endpoint.
#include <gtest/gtest.h>

#include "core/page.hpp"
#include "core/scenarios.hpp"
#include "fault/injector.hpp"
#include "proxy/detector.hpp"

namespace pan::fault {
namespace {

using browser::ClientSession;
using browser::make_local_world;
using browser::make_remote_world;
using browser::World;

// ---------------------------------------------------------------- parser --

TEST(FaultPlanParser, ParsesFullGrammar) {
  const auto plan = parse_fault_plan(R"(
# chaos scenario exercising every fault kind
at=150ms dur=2s link-down core-1 core-2b
at=0ms dur=3s link-degrade core-1 core-2a loss=0.25 latency-factor=4 extra-latency=10ms
at=1s as-outage core-2b
at=0ms dur=5s path-server-stale
at=20ms dur=2s dns-brownout www.far.example mode=servfail delay=400ms
at=0ms dur=2s origin-reset www.far.example
at=0ms origin-slow-loris www.far.example
at=0ms origin-bad-strict-scion www.far.example
)");
  ASSERT_TRUE(plan.ok()) << plan.error();
  ASSERT_EQ(plan.value().size(), 8u);

  const FaultEvent& cut = plan.value().events[0];
  EXPECT_EQ(cut.kind, FaultKind::kLinkDown);
  EXPECT_EQ(cut.at, TimePoint{} + milliseconds(150));
  EXPECT_EQ(cut.duration, seconds(2));
  EXPECT_EQ(cut.a, "core-1");
  EXPECT_EQ(cut.b, "core-2b");

  const FaultEvent& degrade = plan.value().events[1];
  EXPECT_EQ(degrade.kind, FaultKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(degrade.loss, 0.25);
  EXPECT_DOUBLE_EQ(degrade.latency_factor, 4.0);
  EXPECT_EQ(degrade.extra_latency, milliseconds(10));

  const FaultEvent& outage = plan.value().events[2];
  EXPECT_EQ(outage.kind, FaultKind::kAsOutage);
  EXPECT_EQ(outage.a, "core-2b");
  EXPECT_EQ(outage.duration, Duration::zero());  // holds forever

  const FaultEvent& brownout = plan.value().events[4];
  EXPECT_EQ(brownout.kind, FaultKind::kDnsBrownout);
  EXPECT_TRUE(brownout.servfail);
  EXPECT_EQ(brownout.dns_delay, milliseconds(400));
}

TEST(FaultPlanParser, ParsesAccessVerbs) {
  const auto plan = parse_fault_plan(
      "at=1s dur=2s access-down browser\n"
      "at=3s dur=1s access-degrade browser-lte latency-factor=8 loss=0.2\n");
  ASSERT_TRUE(plan.ok()) << plan.error();
  ASSERT_EQ(plan.value().size(), 2u);

  const FaultEvent& down = plan.value().events[0];
  EXPECT_EQ(down.kind, FaultKind::kAccessDown);
  EXPECT_EQ(down.a, "browser");  // a host name, not an AS name
  EXPECT_EQ(down.duration, seconds(2));

  const FaultEvent& degrade = plan.value().events[1];
  EXPECT_EQ(degrade.kind, FaultKind::kAccessDegrade);
  EXPECT_EQ(degrade.a, "browser-lte");
  EXPECT_DOUBLE_EQ(degrade.latency_factor, 8.0);
  EXPECT_DOUBLE_EQ(degrade.loss, 0.2);
}

TEST(FaultPlanParser, RejectsBadAccessArity) {
  const auto missing = parse_fault_plan("at=0ms access-down");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().find("line 1"), std::string::npos);

  const auto extra = parse_fault_plan("at=0ms access-degrade browser browser-lte");
  ASSERT_FALSE(extra.ok());
  EXPECT_NE(extra.error().find("line 1"), std::string::npos);
}

TEST(FaultPlanParser, ParsesSurgeVerb) {
  const auto plan = parse_fault_plan(
      "at=0ms dur=4s surge www.far.example rate=160 conc=64\n"
      "at=5s dur=1s surge static.far.example\n");
  ASSERT_TRUE(plan.ok()) << plan.error();
  ASSERT_EQ(plan.value().size(), 2u);

  const FaultEvent& surge = plan.value().events[0];
  EXPECT_EQ(surge.kind, FaultKind::kSurge);
  EXPECT_EQ(surge.a, "www.far.example");
  EXPECT_EQ(surge.duration, seconds(4));
  EXPECT_DOUBLE_EQ(surge.surge_rate, 160.0);
  EXPECT_EQ(surge.surge_concurrency, 64u);

  // Options are optional and keep their defaults.
  const FaultEvent& defaulted = plan.value().events[1];
  EXPECT_DOUBLE_EQ(defaulted.surge_rate, 50.0);
  EXPECT_EQ(defaulted.surge_concurrency, 32u);
}

TEST(FaultPlanParser, RejectsBadSurgeOptions) {
  const auto zero_rate = parse_fault_plan("at=0ms dur=1s surge x rate=0");
  ASSERT_FALSE(zero_rate.ok());
  EXPECT_NE(zero_rate.error().find("line 1"), std::string::npos);

  const auto huge_rate = parse_fault_plan("at=0ms dur=1s surge x rate=1e9");
  EXPECT_FALSE(huge_rate.ok());

  const auto fractional_conc = parse_fault_plan("at=0ms dur=1s surge x conc=1.5");
  EXPECT_FALSE(fractional_conc.ok());

  const auto zero_conc = parse_fault_plan("at=0ms dur=1s surge x conc=0");
  EXPECT_FALSE(zero_conc.ok());
}

TEST(FaultPlanParser, ErrorsNameTheLine) {
  const auto missing_at = parse_fault_plan("link-down a b");
  ASSERT_FALSE(missing_at.ok());
  EXPECT_NE(missing_at.error().find("line 1"), std::string::npos);

  const auto bad_kind = parse_fault_plan("at=0ms dur=1s frobnicate a b");
  ASSERT_FALSE(bad_kind.ok());

  const auto bad_arity = parse_fault_plan("at=0ms link-down core-1");
  ASSERT_FALSE(bad_arity.ok());

  const auto second_line = parse_fault_plan("at=0ms as-outage core-1\nat=zzz as-outage x");
  ASSERT_FALSE(second_line.ok());
  EXPECT_NE(second_line.error().find("line 2"), std::string::npos);
}

TEST(FaultPlanParser, ParseDurationUnitsAndRejects) {
  EXPECT_EQ(parse_duration("250ms").value(), milliseconds(250));
  EXPECT_EQ(parse_duration("1.5s").value(), milliseconds(1500));
  EXPECT_EQ(parse_duration("40us").value(), microseconds(40));
  EXPECT_EQ(parse_duration("900ns").value(), nanoseconds(900));
  EXPECT_EQ(parse_duration("0").value(), Duration::zero());
  EXPECT_FALSE(parse_duration("").ok());
  EXPECT_FALSE(parse_duration("-5ms").ok());
  EXPECT_FALSE(parse_duration("5parsecs").ok());
  EXPECT_FALSE(parse_duration("ms").ok());
  EXPECT_FALSE(parse_duration("1e400s").ok());
}

// -------------------------------------------------------------- injector --

TEST(FaultInjector, LinkDownAppliesAndReverts) {
  auto world = make_remote_world();
  ASSERT_TRUE(world->schedule_chaos("at=10ms dur=50ms link-down core-1 core-2b").ok());

  net::Network& net = world->topology().network();
  const net::NodeId br = net.find_node("br-core-1");
  const net::NodeId peer = net.find_node("br-core-2b");
  ASSERT_NE(br, net::kInvalidNodeId);
  ASSERT_NE(peer, net::kInvalidNodeId);
  const auto link_up = [&] {
    for (net::IfId ifid = 0; ifid < net.interface_count(br); ++ifid) {
      if (net.neighbor(br, ifid) == peer) return net.link_up(br, ifid);
    }
    ADD_FAILURE() << "no core-1 <-> core-2b link";
    return true;
  };

  EXPECT_TRUE(link_up());
  world->sim().run_until(world->sim().now() + milliseconds(20));
  EXPECT_FALSE(link_up());
  EXPECT_EQ(world->injector().active_count(), 1u);
  EXPECT_EQ(world->injector().injected(), 1u);
  world->sim().run_until(world->sim().now() + milliseconds(60));
  EXPECT_TRUE(link_up());
  EXPECT_EQ(world->injector().active_count(), 0u);
  EXPECT_EQ(world->injector().reverted(), 1u);
}

TEST(FaultInjector, LinkDegradeRestoresOriginalParams) {
  auto world = make_remote_world();
  net::Network& net = world->topology().network();
  const net::NodeId br = net.find_node("br-core-1");
  const net::NodeId peer = net.find_node("br-core-2b");
  net::IfId ifid_on_br = 0;
  for (net::IfId ifid = 0; ifid < net.interface_count(br); ++ifid) {
    if (net.neighbor(br, ifid) == peer) ifid_on_br = ifid;
  }
  const Duration base_latency = net.link_at(br, ifid_on_br).params.latency;

  ASSERT_TRUE(world
                  ->schedule_chaos(
                      "at=0ms dur=100ms link-degrade core-1 core-2b loss=0.5 "
                      "latency-factor=3")
                  .ok());
  world->sim().run_until(world->sim().now() + milliseconds(10));
  EXPECT_DOUBLE_EQ(net.link_at(br, ifid_on_br).params.loss_rate, 0.5);
  EXPECT_EQ(net.link_at(br, ifid_on_br).params.latency, base_latency.scaled(3.0));
  world->sim().run_until(world->sim().now() + milliseconds(120));
  EXPECT_DOUBLE_EQ(net.link_at(br, ifid_on_br).params.loss_rate,
                   world->config().inter_as_loss);
  EXPECT_EQ(net.link_at(br, ifid_on_br).params.latency, base_latency);
}

TEST(FaultInjector, PathServerStaleServesCacheAndFailsMisses) {
  auto world = make_remote_world();
  scion::Topology& topo = world->topology();
  scion::Daemon& daemon = topo.daemon_for(world->client);
  const scion::IsdAsn server_as = topo.as_by_name("server-as");
  const scion::IsdAsn near_as = topo.as_by_name("near-as");

  // Warm the cache for server-as only.
  std::vector<scion::Path> warm;
  daemon.query(server_as, [&](std::vector<scion::Path> paths) { warm = std::move(paths); });
  world->sim().run();
  ASSERT_FALSE(warm.empty());

  ASSERT_TRUE(world->schedule_chaos("at=0ms dur=600s path-server-stale").ok());
  // Jump past the cache TTL (300 s) while the path server is still stale:
  // the expired entry must keep being served rather than re-fetched.
  world->sim().run_until(world->sim().now() + seconds(301));

  std::vector<scion::Path> stale;
  daemon.query(server_as, [&](std::vector<scion::Path> paths) { stale = std::move(paths); });
  EXPECT_FALSE(stale.empty());  // served synchronously from the stale cache
  EXPECT_GE(daemon.stale_serves(), 1u);

  std::vector<scion::Path> miss{scion::Path()};
  bool missed = false;
  daemon.query(near_as, [&](std::vector<scion::Path> paths) {
    miss = std::move(paths);
    missed = true;
  });
  world->sim().run_until(world->sim().now() + seconds(1));
  EXPECT_TRUE(missed);
  EXPECT_TRUE(miss.empty());  // cold queries fail while the path server is stale
  EXPECT_GE(daemon.frozen_failures(), 1u);
}

// ------------------------------------------------- DNS brownout semantics --

TEST(DnsBrownout, ServfailIsTransientNotNegativelyCached) {
  auto world = make_local_world();
  world->zone().add_a("flaky.example", net::IpAddr{42});
  dns::Resolver resolver(world->sim(), world->zone(),
                         dns::ResolverConfig{.lookup_latency = milliseconds(4)});
  world->injector().attach_resolver(resolver);
  ASSERT_TRUE(
      world->schedule_chaos("at=0ms dur=100ms dns-brownout flaky.example mode=servfail")
          .ok());
  world->sim().run_until(world->sim().now() + milliseconds(1));  // apply the fault

  Result<dns::RecordSet> first = Err("unset");
  resolver.resolve("flaky.example", [&](Result<dns::RecordSet> r) { first = std::move(r); });
  world->sim().run_until(world->sim().now() + milliseconds(50));
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.error().find("SERVFAIL"), std::string::npos);
  EXPECT_EQ(resolver.fault_errors(), 1u);

  // Brownout errors must NOT populate the negative cache: once the fault
  // lifts, the very next lookup succeeds.
  world->sim().run_until(world->sim().now() + milliseconds(100));
  Result<dns::RecordSet> second = Err("unset");
  resolver.resolve("flaky.example", [&](Result<dns::RecordSet> r) { second = std::move(r); });
  world->sim().run();
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second.value().a.front(), net::IpAddr{42});
}

TEST(DnsBrownout, TimeoutModeTakesQueryTimeoutNotLookupLatency) {
  auto world = make_local_world();
  world->zone().add_a("flaky.example", net::IpAddr{42});
  dns::Resolver resolver(world->sim(), world->zone(),
                         dns::ResolverConfig{.lookup_latency = milliseconds(4),
                                             .query_timeout = milliseconds(80)});
  world->injector().attach_resolver(resolver);
  ASSERT_TRUE(world->schedule_chaos("at=0ms dns-brownout flaky.example").ok());
  world->sim().run_until(world->sim().now() + milliseconds(1));  // apply the fault

  const TimePoint t0 = world->sim().now();
  Result<dns::RecordSet> out = Err("unset");
  bool done = false;
  resolver.resolve("flaky.example", [&](Result<dns::RecordSet> r) {
    out = std::move(r);
    done = true;
  });
  world->sim().run_until_condition([&] { return done; }, t0 + seconds(5));
  ASSERT_TRUE(done);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().find("timeout"), std::string::npos);
  EXPECT_EQ(world->sim().now() - t0, milliseconds(80));
}

TEST(DnsBrownout, NegativeTtlStillGovernsRealNxdomain) {
  // The distinction under test: NXDOMAIN (an authoritative "no such name")
  // is cached for negative_ttl even across a brownout window, while brownout
  // failures themselves never enter the cache.
  auto world = make_local_world();
  dns::Resolver resolver(world->sim(), world->zone(),
                         dns::ResolverConfig{.lookup_latency = milliseconds(4),
                                             .cache_ttl = seconds(300),
                                             .negative_ttl = milliseconds(200)});
  world->injector().attach_resolver(resolver);

  Result<dns::RecordSet> nx = Err("unset");
  resolver.resolve("late.example", [&](Result<dns::RecordSet> r) { nx = std::move(r); });
  world->sim().run();
  ASSERT_FALSE(nx.ok());  // NXDOMAIN, now negatively cached

  // The domain appears, but the negative entry still answers within its TTL.
  world->zone().add_a("late.example", net::IpAddr{7});
  Result<dns::RecordSet> cached = Err("unset");
  resolver.resolve("late.example", [&](Result<dns::RecordSet> r) { cached = std::move(r); });
  world->sim().run();
  EXPECT_FALSE(cached.ok());

  // After negative_ttl the fresh lookup goes through.
  world->sim().run_until(world->sim().now() + milliseconds(250));
  Result<dns::RecordSet> fresh = Err("unset");
  resolver.resolve("late.example", [&](Result<dns::RecordSet> r) { fresh = std::move(r); });
  world->sim().run();
  ASSERT_TRUE(fresh.ok()) << fresh.error();
  EXPECT_EQ(fresh.value().a.front(), net::IpAddr{7});
}

TEST(DetectorUnderBrownout, LearnedEntryExpiresWhileDnsIsDown) {
  auto world = make_local_world();
  world->zone().add_a("pinned.example", net::IpAddr{9});
  dns::Resolver resolver(world->sim(), world->zone(),
                         dns::ResolverConfig{.lookup_latency = milliseconds(4),
                                             .query_timeout = milliseconds(20)});
  world->injector().attach_resolver(resolver);
  proxy::ScionDetector detector(world->sim(), resolver);
  const scion::ScionAddr addr{scion::IsdAsn{1, 0x110}, net::IpAddr{0x0a000001}};
  detector.learn("pinned.example", addr, milliseconds(100));

  ASSERT_TRUE(world->schedule_chaos("at=0ms dur=500ms dns-brownout pinned.example").ok());
  world->sim().run_until(world->sim().now() + milliseconds(1));  // apply the fault

  const auto resolve = [&] {
    proxy::ResolvedHost out;
    bool done = false;
    detector.resolve("pinned.example", [&](proxy::ResolvedHost host) {
      out = host;
      done = true;
    });
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(2));
    EXPECT_TRUE(done);
    return out;
  };

  // While the learned entry is valid, SCION availability survives the DNS
  // brownout (the A lookup fails, so no legacy address).
  const proxy::ResolvedHost during = resolve();
  ASSERT_TRUE(during.scion.has_value());
  EXPECT_EQ(during.scion_source, proxy::ScionSource::kLearned);
  EXPECT_FALSE(during.ip.has_value());

  // Past the learned max-age, with DNS still down, the host is dark.
  world->sim().run_until(world->sim().now() + milliseconds(150));
  const proxy::ResolvedHost expired = resolve();
  EXPECT_FALSE(expired.scion.has_value());
  EXPECT_EQ(expired.scion_source, proxy::ScionSource::kNone);
  EXPECT_FALSE(expired.ip.has_value());

  // Brownout lifts: the legacy address is resolvable again immediately.
  world->sim().run_until(TimePoint{} + milliseconds(600));
  const proxy::ResolvedHost after = resolve();
  EXPECT_TRUE(after.ip.has_value());
}

// ------------------------------------------------------- resilient proxy --

struct SessionFixture {
  std::unique_ptr<World> world;
  std::unique_ptr<ClientSession> session;

  explicit SessionFixture(bool remote, proxy::ProxyConfig config = {},
                          browser::BrowserConfig browser_config = {}) {
    world = remote ? make_remote_world() : make_local_world();
    session = std::make_unique<ClientSession>(*world, config, browser_config);
  }

  proxy::ProxyResult fetch(const std::string& url, bool strict = false) {
    http::HttpRequest request;
    request.target = url;
    proxy::ProxyRequestOptions options;
    options.strict = strict;
    proxy::ProxyResult out;
    bool done = false;
    session->proxy().fetch(request, options, [&](proxy::ProxyResult r) {
      out = std::move(r);
      done = true;
    });
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(60));
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(ResilientProxy, RetriesOverScionAfterOriginReset) {
  // The SCION-only origin resets (truncates) responses for the first 20 ms.
  // The proxy must absorb the failure with a backoff retry and still answer
  // over SCION — there is no legacy address to hide behind.
  SessionFixture fx(/*remote=*/false);
  fx.world->site("scion-fs.local")->add_text("/x", "eventually fine");
  ASSERT_TRUE(fx.world->schedule_chaos("at=0ms dur=20ms origin-reset scion-fs.local").ok());

  const proxy::ProxyResult result = fx.fetch("http://scion-fs.local/x");
  EXPECT_EQ(result.transport, proxy::TransportUsed::kScion);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_GE(result.scion_attempts, 2u);

  const proxy::ProxyStats stats = fx.session->proxy().stats();
  EXPECT_GE(stats.scion_failures, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.fallbacks, 0u);
  // The failing attempt's path was quarantined and the fault counters are in
  // the shared registry.
  EXPECT_GE(fx.session->proxy().metrics().counter_value("selector.quarantines"), 1u);
  EXPECT_GE(fx.session->proxy().metrics().counter_value("fault.origin_reset"), 1u);
}

TEST(ResilientProxy, LinkCutMidPageLoadFinishesOnAlternateScionPath) {
  // Acceptance scenario: the active inter-ISD link (core-1 <-> core-2b, the
  // fast detour SCION prefers) dies mid page load. The page must complete
  // entirely over SCION via the alternate path (core-1 <-> core-2a) with
  // zero legacy fallbacks, even though every far origin has an A record.
  SessionFixture fx(/*remote=*/true);
  std::vector<std::string> resources;
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/img" + std::to_string(i) + ".png";
    fx.world->site("www.far.example")->add_blob(path, 60'000);
    resources.push_back(path);
  }
  fx.world->site("www.far.example")->add_text("/", browser::render_document(resources));
  ASSERT_TRUE(fx.world->schedule_chaos("at=150ms link-down core-1 core-2b").ok());

  browser::PageLoadResult page;
  bool done = false;
  fx.session->browser().load_page("http://www.far.example/", [&](browser::PageLoadResult r) {
    page = std::move(r);
    done = true;
  });
  fx.world->sim().run_until_condition([&] { return done; },
                                      fx.world->sim().now() + seconds(60));
  ASSERT_TRUE(done);

  EXPECT_TRUE(page.ok);
  EXPECT_EQ(page.failed, 0u);
  EXPECT_EQ(page.over_ip, 0u);
  EXPECT_EQ(page.over_scion, page.resources.size());
  for (const auto& resource : page.resources) {
    EXPECT_EQ(resource.transport, proxy::TransportUsed::kScion) << resource.url;
  }
  EXPECT_EQ(fx.session->proxy().stats().fallbacks, 0u);
  EXPECT_GE(fx.session->proxy().metrics().counter_value("fault.link_down"), 1u);
}

TEST(ResilientProxy, StrictModeDegradesTo503WithRetryAfter) {
  // Both inter-ISD links die: strict mode must not hang and must not 502
  // instantly — it retries within the budget, then degrades to 503 with a
  // Retry-After so the client knows the condition is transient.
  proxy::ProxyConfig config;
  config.attempt_timeout = milliseconds(300);
  config.max_scion_retries = 2;
  SessionFixture fx(/*remote=*/true, config);
  fx.world->site("www.far.example")->add_text("/x", "unreachable");
  ASSERT_TRUE(fx.world
                  ->schedule_chaos(
                      "at=0ms link-down core-1 core-2a\n"
                      "at=0ms link-down core-1 core-2b")
                  .ok());

  const TimePoint t0 = fx.world->sim().now();
  const proxy::ProxyResult result = fx.fetch("http://www.far.example/x", /*strict=*/true);
  const Duration elapsed = fx.world->sim().now() - t0;

  EXPECT_EQ(result.response.status, 503);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kBlocked);
  ASSERT_TRUE(result.response.headers.get("Retry-After").has_value());
  EXPECT_EQ(*result.response.headers.get("Retry-After"), "1");
  // Bounded: three attempts at ~300 ms each plus backoffs, nowhere near the
  // 15 s request deadline and certainly not a hang.
  EXPECT_LT(elapsed, seconds(5));
  const proxy::ProxyStats stats = fx.session->proxy().stats();
  EXPECT_EQ(stats.strict_unavailable, 1u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_GE(stats.scion_failures, 1u);
}

TEST(ResilientProxy, SlowLorisIsBoundedByAttemptTimeout) {
  // The origin accepts the request and then trickles: without the attempt
  // timer the fetch would sit for the full 120 s slow-loris delay. With it,
  // each attempt is cut at 250 ms and the request fails fast.
  proxy::ProxyConfig config;
  config.attempt_timeout = milliseconds(250);
  config.max_scion_retries = 1;
  SessionFixture fx(/*remote=*/false, config);
  fx.world->site("scion-fs.local")->add_text("/x", "drip");
  ASSERT_TRUE(fx.world->schedule_chaos("at=0ms origin-slow-loris scion-fs.local").ok());

  const TimePoint t0 = fx.world->sim().now();
  const proxy::ProxyResult result = fx.fetch("http://scion-fs.local/x");
  EXPECT_EQ(result.response.status, 502);
  EXPECT_LT(fx.world->sim().now() - t0, seconds(2));
  EXPECT_EQ(fx.session->proxy().stats().attempt_timeouts, 2u);
}

TEST(ResilientProxy, CircuitBreakerTripsShortCircuitsAndRecovers) {
  proxy::ProxyConfig config;
  config.max_scion_retries = 0;  // one attempt per request: countable failures
  config.breaker_threshold = 2;
  config.breaker_open_ttl = milliseconds(500);
  SessionFixture fx(/*remote=*/false, config);
  fx.world->site("scion-fs.local")->add_text("/x", "recovered");
  ASSERT_TRUE(fx.world->schedule_chaos("at=0ms dur=1s origin-reset scion-fs.local").ok());

  // Two failing fetches trip the breaker.
  EXPECT_EQ(fx.fetch("http://scion-fs.local/x").response.status, 502);
  EXPECT_EQ(fx.fetch("http://scion-fs.local/x").response.status, 502);
  EXPECT_TRUE(fx.session->proxy().breaker().is_open("scion-fs.local"));

  // While open: no SCION attempt at all — fast 503 (SCION-only origin, so
  // nothing to fall back to).
  const TimePoint t0 = fx.world->sim().now();
  const proxy::ProxyResult shorted = fx.fetch("http://scion-fs.local/x");
  EXPECT_EQ(shorted.response.status, 503);
  EXPECT_EQ(shorted.scion_attempts, 0u);
  EXPECT_LT(fx.world->sim().now() - t0, milliseconds(1));
  EXPECT_EQ(fx.session->proxy().stats().breaker_short_circuits, 1u);

  // Fault reverted and open_ttl elapsed: the half-open probe goes through
  // and closes the breaker.
  fx.world->sim().run_until(TimePoint{} + seconds(2));
  const proxy::ProxyResult probe = fx.fetch("http://scion-fs.local/x");
  EXPECT_EQ(probe.transport, proxy::TransportUsed::kScion);
  EXPECT_EQ(probe.response.status, 200);
  EXPECT_FALSE(fx.session->proxy().breaker().is_open("scion-fs.local"));
}

TEST(ResilientProxy, BreakerShortCircuitsToLegacyWhenAvailable) {
  // SCION attempts for this origin are doomed (the curated claim points at a
  // host with no QUIC listener, so every dial is abandoned by the attempt
  // timer), while its legacy face keeps working. After the breaker trips,
  // requests skip the doomed SCION attempt and go straight to IP.
  proxy::ProxyConfig config;
  config.max_scion_retries = 0;
  config.breaker_threshold = 2;
  config.attempt_timeout = milliseconds(200);
  SessionFixture fx(/*remote=*/false, config);
  fx.world->site("tcpip-fs.local")->add_text("/x", "legacy works");
  auto& topo = fx.world->topology();
  fx.session->proxy().detector().add_curated(
      "tcpip-fs.local", topo.scion_addr(topo.host_by_name("tcpip-fs")));

  // Two SCION-failing fetches (each falls back to IP and succeeds) trip the
  // breaker; the third skips SCION entirely and still succeeds over IP, fast.
  const proxy::ProxyResult first = fx.fetch("http://tcpip-fs.local/x");
  EXPECT_EQ(first.transport, proxy::TransportUsed::kIp);
  EXPECT_TRUE(first.fell_back);
  const proxy::ProxyResult second = fx.fetch("http://tcpip-fs.local/x");
  EXPECT_EQ(second.transport, proxy::TransportUsed::kIp);
  EXPECT_TRUE(fx.session->proxy().breaker().is_open("tcpip-fs.local"));

  const TimePoint t0 = fx.world->sim().now();
  const proxy::ProxyResult third = fx.fetch("http://tcpip-fs.local/x");
  EXPECT_EQ(third.transport, proxy::TransportUsed::kIp);
  EXPECT_EQ(third.scion_attempts, 0u);
  EXPECT_LT(fx.world->sim().now() - t0, milliseconds(50));
  EXPECT_GE(fx.session->proxy().stats().breaker_short_circuits, 1u);
}

TEST(ResilientProxy, HealthEndpointExposesResilienceState) {
  proxy::ProxyConfig config;
  config.max_scion_retries = 0;
  config.breaker_threshold = 1;
  SessionFixture fx(/*remote=*/false, config);
  fx.world->site("scion-fs.local")->add_text("/x", "x");
  ASSERT_TRUE(fx.world->schedule_chaos("at=0ms dur=5s origin-reset scion-fs.local").ok());
  EXPECT_EQ(fx.fetch("http://scion-fs.local/x").response.status, 502);

  const proxy::ProxyResult health = fx.fetch("/skip/health");
  const std::string body(reinterpret_cast<const char*>(health.response.body.data()),
                         health.response.body.size());
  EXPECT_EQ(health.response.status, 200);
  EXPECT_NE(body.find("\"breaker\""), std::string::npos);
  EXPECT_NE(body.find("scion-fs.local"), std::string::npos);
  EXPECT_NE(body.find("\"open\""), std::string::npos);
  EXPECT_NE(body.find("\"quarantines\""), std::string::npos);
  EXPECT_NE(body.find("\"faults\""), std::string::npos);
  EXPECT_NE(body.find("fault.injected"), std::string::npos);

  const proxy::ProxyResult metrics = fx.fetch("/skip/metrics");
  const std::string metrics_body(
      reinterpret_cast<const char*>(metrics.response.body.data()),
      metrics.response.body.size());
  EXPECT_NE(metrics_body.find("fault.origin_reset"), std::string::npos);
}

TEST(ResilientProxy, RequestDeadlineCapsTotalBudget) {
  // The browser-threaded deadline bounds everything: with a 100 ms budget
  // and an origin that never answers, the proxy answers 504 at the deadline.
  proxy::ProxyConfig config;
  config.attempt_timeout = seconds(4);
  browser::BrowserConfig browser_config;
  browser_config.request_deadline = milliseconds(100);
  SessionFixture fx(/*remote=*/false, config, browser_config);
  fx.world->site("scion-fs.local")->add_text("/", "never arrives");
  ASSERT_TRUE(fx.world->schedule_chaos("at=0ms origin-slow-loris scion-fs.local").ok());

  const TimePoint t0 = fx.world->sim().now();
  browser::PageLoadResult page;
  bool done = false;
  fx.session->browser().load_page("http://scion-fs.local/", [&](browser::PageLoadResult r) {
    page = std::move(r);
    done = true;
  });
  fx.world->sim().run_until_condition([&] { return done; },
                                      fx.world->sim().now() + seconds(30));
  ASSERT_TRUE(done);
  EXPECT_FALSE(page.ok);
  EXPECT_EQ(page.resources[0].status, 504);
  // Settled at the 100 ms deadline (plus scheduling epsilon), not at the 30 s
  // page timeout.
  EXPECT_LT(fx.world->sim().now() - t0, milliseconds(500));
  EXPECT_EQ(fx.session->proxy().stats().timeouts, 1u);
}

TEST(ResilientProxy, RetryRidesOutShortBackendReset) {
  // A brief backend reset burst behind the reverse proxy surfaces as 502s
  // over a healthy SCION path. The bounded retries (with backoff) outlast
  // the burst, so the request completes without the browser ever seeing the
  // error.
  SessionFixture fx(/*remote=*/true);
  fx.world->site("www.far.example")->add_text("/x", "rode it out");
  ASSERT_TRUE(
      fx.world->schedule_chaos("at=0ms dur=150ms origin-reset www.far.example").ok());
  fx.world->sim().run_until(fx.world->sim().now() + milliseconds(1));

  const proxy::ProxyResult result = fx.fetch("http://www.far.example/x");
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.transport, proxy::TransportUsed::kScion);
  EXPECT_GE(fx.session->proxy().stats().gateway_errors, 1u);
  EXPECT_GE(fx.session->proxy().stats().retries, 1u);
}

TEST(ResilientProxy, ReverseProxiedOriginRecoversAfterReset) {
  // Remote-world origins sit behind a SCION reverse proxy: an origin reset
  // truncates the *backend* leg, which the reverse proxy reports as a 502
  // over a perfectly healthy SCION path. Two things must hold:
  //   1. the client treats the gateway error as a retryable attempt failure
  //      (counted in proxy.gateway_errors), and
  //   2. the reverse proxy's backend pool retires the wedged HTTP/1
  //      connection (dead stream, open transport) instead of redispatching
  //      onto it forever — so the origin actually recovers once the fault
  //      lifts.
  SessionFixture fx(/*remote=*/true);
  fx.world->site("www.far.example")->add_text("/x", "back soon");
  ASSERT_TRUE(
      fx.world->schedule_chaos("at=0ms dur=2s origin-reset www.far.example").ok());
  fx.world->sim().run_until(fx.world->sim().now() + milliseconds(1));

  // During the fault every route to the origin is sick (the legacy fallback
  // hits the same truncating backend), so the fetch fails...
  const proxy::ProxyResult sick = fx.fetch("http://www.far.example/x");
  EXPECT_NE(sick.response.status, 200);
  EXPECT_GE(fx.session->proxy().stats().gateway_errors, 1u);
  EXPECT_GE(fx.session->proxy().stats().retries, 1u);

  // ...but after the fault lifts (and the breaker's open_ttl passes), the
  // half-open probe must find a freshly dialed backend connection, not the
  // permanently wedged one.
  fx.world->sim().run_until(fx.world->sim().now() + seconds(6));
  const proxy::ProxyResult recovered = fx.fetch("http://www.far.example/x");
  EXPECT_EQ(recovered.response.status, 200);
  EXPECT_EQ(recovered.transport, proxy::TransportUsed::kScion);
  EXPECT_FALSE(fx.session->proxy().breaker().is_open("www.far.example"));
}

// ---------------------------------------------------------- replica verbs --

TEST(FaultPlanParser, ParsesReplicaVerbs) {
  const auto plan = parse_fault_plan(
      "at=2s dur=1s replica-crash rep-0\n"
      "at=2500ms dur=500ms replica-hang rep-1\n"
      "at=4s replica-restart rep-2\n");
  ASSERT_TRUE(plan.ok()) << plan.error();
  ASSERT_EQ(plan.value().size(), 3u);

  const FaultEvent& crash = plan.value().events[0];
  EXPECT_EQ(crash.kind, FaultKind::kReplicaCrash);
  EXPECT_EQ(crash.a, "rep-0");
  EXPECT_EQ(crash.at, TimePoint{} + seconds(2));
  EXPECT_EQ(crash.duration, seconds(1));

  const FaultEvent& hang = plan.value().events[1];
  EXPECT_EQ(hang.kind, FaultKind::kReplicaHang);
  EXPECT_EQ(hang.a, "rep-1");
  EXPECT_EQ(hang.duration, milliseconds(500));

  const FaultEvent& restart = plan.value().events[2];
  EXPECT_EQ(restart.kind, FaultKind::kReplicaRestart);
  EXPECT_EQ(restart.a, "rep-2");
  EXPECT_EQ(restart.duration, Duration::zero());  // one-shot

  // The replica name is mandatory.
  const auto missing = parse_fault_plan("at=0ms replica-crash");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().find("line 1"), std::string::npos);
}

TEST(FaultInjector, ReplicaVerbsDriveTheFleet) {
  auto world = make_local_world();
  world->site("scion-fs.local")->add_text("/", "scion page");
  browser::FleetSession session(*world);
  proxy::ProxyCluster& cluster = session.cluster();

  ASSERT_TRUE(world
                  ->schedule_chaos(
                      "at=10ms dur=100ms replica-crash rep-0\n"
                      "at=10ms dur=100ms replica-hang rep-1\n"
                      "at=200ms replica-restart rep-2\n")
                  .ok());

  // t=50ms: the crash is active — rep-0 is a dead process.
  world->sim().run_until(world->sim().now() + milliseconds(50));
  EXPECT_EQ(cluster.replica_health("rep-0"), proxy::ReplicaHealth::kDown);
  EXPECT_EQ(cluster.replica("rep-0"), nullptr);
  EXPECT_EQ(world->injector().active_count(), 2u);

  // t=150ms: crash and hang reverted — rep-0 revived, rep-1 unwedged.
  world->sim().run_until(world->sim().now() + milliseconds(100));
  EXPECT_EQ(cluster.replica_health("rep-0"), proxy::ReplicaHealth::kHealthy);
  EXPECT_NE(cluster.replica("rep-0"), nullptr);
  EXPECT_EQ(world->injector().reverted(), 2u);

  // t=250ms: the one-shot restart bounced rep-2.
  world->sim().run_until(world->sim().now() + milliseconds(100));
  const proxy::FleetStats stats = cluster.stats();
  EXPECT_EQ(stats.crashes, 2u);        // replica-crash + replica-restart's crash
  EXPECT_EQ(stats.restarts_warm, 2u);  // the revive + the restart

  // FleetSession pointed the injector at the cluster registry, so the
  // per-kind fault counters land next to the fleet.* ones.
  obs::MetricsRegistry& metrics = cluster.metrics();
  EXPECT_EQ(metrics.counter_value("fault.replica_crash"), 1u);
  EXPECT_EQ(metrics.counter_value("fault.replica_hang"), 1u);
  EXPECT_EQ(metrics.counter_value("fault.replica_restart"), 1u);
  EXPECT_EQ(world->injector().injected(), 3u);

  // The fleet still serves after the chaos.
  EXPECT_EQ(session.fetch("http://scion-fs.local/", /*strict=*/true).response.status, 200);
}

}  // namespace
}  // namespace pan::fault
