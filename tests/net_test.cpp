// Unit tests for src/net: addressing, links (timing, loss, queueing, MTU,
// FIFO), routers, hosts/UDP, and shortest paths.
#include <gtest/gtest.h>

#include "net/graph.hpp"
#include "net/trace.hpp"
#include "net/host.hpp"
#include "net/router.hpp"

namespace pan::net {
namespace {

TEST(IpAddrTest, FormatAndParse) {
  const IpAddr a{0x0a010005};
  EXPECT_EQ(a.to_string(), "10.1.0.5");
  const auto parsed = IpAddr::parse("10.1.0.5");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), a);
  EXPECT_EQ(a.prefix(), 0x0a01);
}

TEST(IpAddrTest, ParseErrors) {
  EXPECT_FALSE(IpAddr::parse("10.1.0").ok());
  EXPECT_FALSE(IpAddr::parse("10.1.0.256").ok());
  EXPECT_FALSE(IpAddr::parse("a.b.c.d").ok());
  EXPECT_FALSE(IpAddr::parse("").ok());
}

TEST(EndpointTest, FormatsHostPort) {
  EXPECT_EQ((Endpoint{IpAddr{0x01000001}, 80}).to_string(), "1.0.0.1:80");
}

TEST(PacketTest, WireSizeIncludesFraming) {
  Packet p;
  p.payload = Bytes(100);
  EXPECT_EQ(p.wire_size(), 100 + kFramingOverhead);
}

TEST(LinkParamsTest, TransmitTime) {
  LinkParams params;
  params.bandwidth_bps = 8e6;  // 1 MB/s
  EXPECT_EQ(params.transmit_time(1000).nanos(), 1'000'000);  // 1 ms
}

// ----------------------------------------------------------- fixtures ---

struct TwoNodes {
  sim::Simulator sim;
  Network net{sim, 1};
  NodeId a;
  NodeId b;
  IfId a_if;
  IfId b_if;
  std::vector<Packet> received_at_b;

  explicit TwoNodes(const LinkParams& params = {}) {
    a = net.add_node("a");
    b = net.add_node("b");
    std::tie(a_if, b_if) = net.connect(a, b, params);
    net.set_handler(b, [this](Packet&& p, IfId) { received_at_b.push_back(std::move(p)); });
  }

  void send(std::size_t payload_size) {
    Packet p;
    p.payload = Bytes(payload_size);
    net.send(a, a_if, std::move(p));
  }
};

TEST(NetworkTest, DeliversWithLatencyAndSerialization) {
  LinkParams params;
  params.latency = milliseconds(10);
  params.bandwidth_bps = 8e6;  // 1000 bytes/ms
  TwoNodes world(params);
  world.send(958);  // + 42 framing = 1000 bytes -> 1 ms serialization
  world.sim.run();
  ASSERT_EQ(world.received_at_b.size(), 1u);
  EXPECT_EQ(world.sim.now().nanos(), milliseconds(11).nanos());
}

TEST(NetworkTest, SerializationQueuesBackToBack) {
  LinkParams params;
  params.latency = milliseconds(1);
  params.bandwidth_bps = 8e6;
  TwoNodes world(params);
  world.send(958);
  world.send(958);  // must wait for first transmission
  world.sim.run();
  ASSERT_EQ(world.received_at_b.size(), 2u);
  EXPECT_EQ(world.sim.now().nanos(), milliseconds(3).nanos());  // 2ms tx + 1ms prop
}

TEST(NetworkTest, QueueOverflowDrops) {
  LinkParams params;
  params.latency = milliseconds(1);
  params.bandwidth_bps = 8e6;
  params.max_queue_delay = milliseconds(2);
  TwoNodes world(params);
  for (int i = 0; i < 10; ++i) world.send(958);  // 1ms each; >2ms backlog drops
  world.sim.run();
  EXPECT_LT(world.received_at_b.size(), 10u);
  EXPECT_GT(world.net.drop_totals().queue, 0u);
}

TEST(NetworkTest, MtuViolationDrops) {
  LinkParams params;
  params.mtu = 1500;
  TwoNodes world(params);
  world.send(1501);  // payload above MTU
  world.send(1500);  // exactly MTU: allowed
  world.sim.run();
  EXPECT_EQ(world.received_at_b.size(), 1u);
  EXPECT_EQ(world.net.drop_totals().mtu, 1u);
}

TEST(NetworkTest, RandomLossMatchesRate) {
  LinkParams params;
  params.loss_rate = 0.3;
  params.max_queue_delay = seconds(10);
  TwoNodes world(params);
  constexpr int kPackets = 3000;
  for (int i = 0; i < kPackets; ++i) world.send(100);
  world.sim.run();
  const double delivered = static_cast<double>(world.received_at_b.size()) / kPackets;
  EXPECT_NEAR(delivered, 0.7, 0.05);
  EXPECT_GT(world.net.drop_totals().loss, 0u);
}

TEST(NetworkTest, JitterNeverReorders) {
  LinkParams params;
  params.latency = milliseconds(5);
  params.jitter_frac = 0.5;
  params.bandwidth_bps = 1e9;
  params.max_queue_delay = seconds(1);
  TwoNodes world(params);
  for (std::uint64_t i = 1; i <= 200; ++i) {
    Packet p;
    p.payload = Bytes(100);
    p.id = i;
    world.net.send(world.a, world.a_if, std::move(p));
  }
  world.sim.run();
  ASSERT_EQ(world.received_at_b.size(), 200u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(world.received_at_b[i].id, i + 1);
  }
}

TEST(NetworkTest, NeighborQueries) {
  TwoNodes world;
  EXPECT_EQ(world.net.neighbor(world.a, world.a_if), world.b);
  EXPECT_EQ(world.net.neighbor(world.b, world.b_if), world.a);
  EXPECT_EQ(world.net.neighbor_ifid(world.a, world.a_if), world.b_if);
  EXPECT_EQ(world.net.interface_count(world.a), 1u);
}

TEST(NetworkTest, BidirectionalIndependentQueues) {
  LinkParams params;
  params.latency = milliseconds(1);
  TwoNodes world(params);
  std::vector<Packet> received_at_a;
  world.net.set_handler(world.a,
                        [&](Packet&& p, IfId) { received_at_a.push_back(std::move(p)); });
  world.send(100);
  Packet back;
  back.payload = Bytes(100);
  world.net.send(world.b, world.b_if, std::move(back));
  world.sim.run();
  EXPECT_EQ(world.received_at_b.size(), 1u);
  EXPECT_EQ(received_at_a.size(), 1u);
}

// ---------------------------------------------------------------- trace --

TEST(TraceTest, RecordsSendsAndDeliveries) {
  TwoNodes world;
  TraceRecorder recorder;
  world.net.set_tracer(recorder.callback());
  world.send(100);
  world.send(200);
  world.sim.run();
  EXPECT_EQ(recorder.count(TraceEvent::Kind::kSend), 2u);
  EXPECT_EQ(recorder.count(TraceEvent::Kind::kDeliver), 2u);
  EXPECT_EQ(recorder.count_between(world.a, world.b), 4u);
  EXPECT_EQ(recorder.bytes(TraceEvent::Kind::kDeliver),
            2 * kFramingOverhead + 100 + 200);
  EXPECT_FALSE(recorder.render().empty());
}

TEST(TraceTest, RecordsDropCauses) {
  LinkParams params;
  params.mtu = 150;
  TwoNodes world(params);
  TraceRecorder recorder;
  world.net.set_tracer(recorder.callback());
  world.send(1000);  // over MTU
  world.net.set_link_up(world.a, world.a_if, false);
  world.send(50);  // link down
  world.sim.run();
  EXPECT_EQ(recorder.count(TraceEvent::Kind::kDropMtu), 1u);
  EXPECT_EQ(recorder.count(TraceEvent::Kind::kDropLinkDown), 1u);
  EXPECT_EQ(recorder.count(TraceEvent::Kind::kDeliver), 0u);
  EXPECT_EQ(world.net.drop_totals().down, 1u);
}

TEST(TraceTest, DetachStopsRecording) {
  TwoNodes world;
  TraceRecorder recorder;
  world.net.set_tracer(recorder.callback());
  world.send(10);
  world.sim.run();
  const std::size_t before = recorder.events().size();
  world.net.set_tracer(nullptr);
  world.send(10);
  world.sim.run();
  EXPECT_EQ(recorder.events().size(), before);
}

TEST(TraceTest, LinkBackUpRestoresDelivery) {
  TwoNodes world;
  world.net.set_link_up(world.a, world.a_if, false);
  world.send(10);
  world.sim.run();
  EXPECT_EQ(world.received_at_b.size(), 0u);
  world.net.set_link_up(world.a, world.a_if, true);
  world.send(10);
  world.sim.run();
  EXPECT_EQ(world.received_at_b.size(), 1u);
}

// --------------------------------------------------------------- router --

TEST(RouterTest, PrefixAndHostRoutes) {
  sim::Simulator sim;
  Network net(sim, 1);
  const NodeId r = net.add_node("router");
  const NodeId h1 = net.add_node("h1");
  const NodeId h2 = net.add_node("h2");
  Router router(net, r);
  const auto [r_h1, h1_r] = net.connect(r, h1, {});
  const auto [r_h2, h2_r] = net.connect(r, h2, {});
  (void)h1_r;
  (void)h2_r;

  const IpAddr addr1{(1u << 16) | 1};
  const IpAddr addr2{(2u << 16) | 1};
  router.set_host_route(addr1, r_h1);
  router.set_prefix_route(2, r_h2);

  std::vector<IpAddr> at_h1;
  std::vector<IpAddr> at_h2;
  net.set_handler(h1, [&](Packet&& p, IfId) { at_h1.push_back(p.dst); });
  net.set_handler(h2, [&](Packet&& p, IfId) { at_h2.push_back(p.dst); });

  Packet p1;
  p1.dst = addr1;
  router.forward(std::move(p1));
  Packet p2;
  p2.dst = addr2;
  router.forward(std::move(p2));
  Packet p3;
  p3.dst = IpAddr{(9u << 16) | 1};  // no route
  router.forward(std::move(p3));
  sim.run();

  EXPECT_EQ(at_h1.size(), 1u);
  EXPECT_EQ(at_h2.size(), 1u);
  EXPECT_EQ(router.forwarded_packets(), 2u);
  EXPECT_EQ(router.dropped_no_route(), 1u);
  EXPECT_EQ(router.host_route(addr1), r_h1);
  EXPECT_EQ(router.host_route(addr2), std::nullopt);
}

// ------------------------------------------------------------ host/udp --

struct HostPair {
  sim::Simulator sim;
  Network net{sim, 2};
  NodeId router_node;
  std::unique_ptr<Router> router;
  std::unique_ptr<Host> h1;
  std::unique_ptr<Host> h2;

  HostPair() {
    router_node = net.add_node("r");
    router = std::make_unique<Router>(net, router_node);
    const NodeId n1 = net.add_node("h1");
    const NodeId n2 = net.add_node("h2");
    // Host side first so host interface 0 faces the router.
    const auto [h1_if, r_h1] = net.connect(n1, router_node, {});
    const auto [h2_if, r_h2] = net.connect(n2, router_node, {});
    (void)h1_if;
    (void)h2_if;
    h1 = std::make_unique<Host>(net, n1, IpAddr{(1u << 16) | 1});
    h2 = std::make_unique<Host>(net, n2, IpAddr{(1u << 16) | 2});
    router->set_host_route(h1->address(), r_h1);
    router->set_host_route(h2->address(), r_h2);
  }
};

TEST(UdpTest, RoundTrip) {
  HostPair world;
  std::string received;
  auto server = world.h2->udp_bind(7000, [&](const Endpoint& from, net::PacketView payload) {
    received = to_string_view_copy(payload.span());
    EXPECT_EQ(from.addr, world.h1->address());
  });
  ASSERT_NE(server, nullptr);
  auto client = world.h1->udp_bind(0, nullptr);
  ASSERT_NE(client, nullptr);
  client->send_to(Endpoint{world.h2->address(), 7000}, from_string("ping"));
  world.sim.run();
  EXPECT_EQ(received, "ping");
}

TEST(UdpTest, ReplyReachesEphemeralPort) {
  HostPair world;
  std::string reply;
  auto server = world.h2->udp_bind(7000, [&](const Endpoint& from, net::PacketView) {
    auto responder = world.h2->udp_bind(0, nullptr);
    responder->send_to(from, from_string("pong"));
    // responder unbinds at scope exit; the datagram is already in flight.
  });
  auto client = world.h1->udp_bind(0, [&](const Endpoint&, net::PacketView payload) {
    reply = to_string_view_copy(payload.span());
  });
  client->send_to(Endpoint{world.h2->address(), 7000}, from_string("ping"));
  world.sim.run();
  EXPECT_EQ(reply, "pong");
}

TEST(UdpTest, PortCollisionRejected) {
  HostPair world;
  auto s1 = world.h1->udp_bind(5000, nullptr);
  EXPECT_NE(s1, nullptr);
  auto s2 = world.h1->udp_bind(5000, nullptr);
  EXPECT_EQ(s2, nullptr);
  s1.reset();
  auto s3 = world.h1->udp_bind(5000, nullptr);  // freed after unbind
  EXPECT_NE(s3, nullptr);
}

TEST(UdpTest, EphemeralPortsDistinct) {
  HostPair world;
  auto s1 = world.h1->udp_bind(0, nullptr);
  auto s2 = world.h1->udp_bind(0, nullptr);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  EXPECT_NE(s1->local_port(), s2->local_port());
}

TEST(UdpTest, UnknownPortDropped) {
  HostPair world;
  auto client = world.h1->udp_bind(0, nullptr);
  client->send_to(Endpoint{world.h2->address(), 9}, from_string("void"));
  world.sim.run();  // must not crash
  SUCCEED();
}

// ---------------------------------------------------------------- graph --

TEST(GraphTest, ShortestPathOnChain) {
  // 0 - 1 - 2 - 3
  Adjacency adj(4);
  const auto edge = [&](std::uint32_t u, std::uint32_t v, double w, std::uint32_t tag) {
    adj[u].push_back(GraphEdge{v, w, tag});
    adj[v].push_back(GraphEdge{u, w, tag + 100});
  };
  edge(0, 1, 1, 1);
  edge(1, 2, 1, 2);
  edge(2, 3, 1, 3);
  const ShortestPaths paths = dijkstra(adj, 0);
  EXPECT_DOUBLE_EQ(paths.distance[3], 3);
  EXPECT_EQ(paths.path_to(3), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(first_hop_tag(paths, 0, 3), 1u);
}

TEST(GraphTest, PrefersLowerWeight) {
  // 0 -> 1 -> 3 costs 2; 0 -> 2 -> 3 costs 10.
  Adjacency adj(4);
  adj[0] = {{1, 1, 10}, {2, 5, 20}};
  adj[1] = {{3, 1, 11}};
  adj[2] = {{3, 5, 21}};
  const ShortestPaths paths = dijkstra(adj, 0);
  EXPECT_DOUBLE_EQ(paths.distance[3], 2);
  EXPECT_EQ(first_hop_tag(paths, 0, 3), 10u);
}

TEST(GraphTest, UnreachableIsInfinite) {
  Adjacency adj(3);
  adj[0] = {{1, 1, 0}};
  const ShortestPaths paths = dijkstra(adj, 0);
  EXPECT_FALSE(paths.reachable(2));
  EXPECT_TRUE(paths.path_to(2).empty());
  EXPECT_EQ(first_hop_tag(paths, 0, 2), UINT32_MAX);
}

TEST(GraphTest, DeterministicTieBreak) {
  // Two equal-cost routes 0->1->3 and 0->2->3: the parent with the lower
  // node index (1) must win, deterministically.
  Adjacency adj(4);
  adj[0] = {{1, 1, 10}, {2, 1, 20}};
  adj[1] = {{3, 1, 11}};
  adj[2] = {{3, 1, 21}};
  for (int rep = 0; rep < 5; ++rep) {
    const ShortestPaths paths = dijkstra(adj, 0);
    EXPECT_EQ(paths.parent[3], 1u);
    EXPECT_EQ(first_hop_tag(paths, 0, 3), 10u);
  }
}

TEST(GraphTest, SelfDistanceZero) {
  Adjacency adj(2);
  adj[0] = {{1, 1, 0}};
  const ShortestPaths paths = dijkstra(adj, 0);
  EXPECT_DOUBLE_EQ(paths.distance[0], 0);
  EXPECT_EQ(first_hop_tag(paths, 0, 0), UINT32_MAX);
}

}  // namespace
}  // namespace pan::net
