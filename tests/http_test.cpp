// Tests for the HTTP layer: messages, incremental parsing, URLs,
// Strict-SCION, file server, and end-to-end client/server over both
// transports.
#include <gtest/gtest.h>

#include "core/scenarios.hpp"
#include "http/endpoints.hpp"
#include "http/file_server.hpp"
#include "util/rng.hpp"
#include "http/parser.hpp"
#include "http/url.hpp"

namespace pan::http {
namespace {

// --------------------------------------------------------------- headers --

TEST(HeadersTest, CaseInsensitiveAccess) {
  Headers h;
  h.set("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_TRUE(h.contains("CONTENT-TYPE"));
  h.remove("CoNtEnT-tYpE");
  EXPECT_FALSE(h.contains("Content-Type"));
}

TEST(HeadersTest, SetReplacesAddAppends) {
  Headers h;
  h.add("Via", "a");
  h.add("Via", "b");
  EXPECT_EQ(h.get_all("via").size(), 2u);
  h.set("Via", "c");
  EXPECT_EQ(h.get_all("via").size(), 1u);
  EXPECT_EQ(h.get("Via"), "c");
}

// -------------------------------------------------------------- messages --

TEST(MessageTest, RequestSerializesWithContentLength) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/submit";
  req.headers.set("Host", "example.org");
  req.body = from_string("abc");
  const std::string wire = to_string_view_copy(req.serialize());
  EXPECT_NE(wire.find("POST /submit HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\nabc"));
}

TEST(MessageTest, ResponseHelpers) {
  const HttpResponse res = make_text_response(404, "gone");
  EXPECT_EQ(res.status, 404);
  EXPECT_EQ(res.reason, "Not Found");
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(make_response(204).ok());
}

// ---------------------------------------------------------------- parser --

TEST(ParserTest, ParsesRequest) {
  HttpParser parser(ParserMode::kRequest);
  HttpRequest got;
  parser.on_request = [&](HttpRequest r) { got = std::move(r); };
  HttpRequest req;
  req.method = "GET";
  req.target = "/x";
  req.headers.set("Host", "h");
  parser.feed(req.serialize());
  EXPECT_EQ(parser.messages_parsed(), 1u);
  EXPECT_EQ(got.method, "GET");
  EXPECT_EQ(got.target, "/x");
  EXPECT_EQ(got.host(), "h");
}

TEST(ParserTest, ByteAtATime) {
  HttpParser parser(ParserMode::kResponse);
  HttpResponse got;
  parser.on_response = [&](HttpResponse r) { got = std::move(r); };
  HttpResponse res = make_text_response(200, "hello world");
  const Bytes wire = res.serialize();
  for (const std::uint8_t byte : wire) {
    parser.feed(std::span<const std::uint8_t>(&byte, 1));
  }
  EXPECT_EQ(parser.messages_parsed(), 1u);
  EXPECT_EQ(to_string_view_copy(got.body), "hello world");
}

TEST(ParserTest, KeepAliveSequence) {
  HttpParser parser(ParserMode::kResponse);
  std::vector<int> statuses;
  parser.on_response = [&](HttpResponse r) { statuses.push_back(r.status); };
  Bytes wire = make_text_response(200, "a").serialize();
  const Bytes second = make_text_response(404, "b").serialize();
  wire.insert(wire.end(), second.begin(), second.end());
  parser.feed(wire);
  EXPECT_EQ(statuses, (std::vector<int>{200, 404}));
}

TEST(ParserTest, BodyUntilEofResponses) {
  HttpParser parser(ParserMode::kResponse);
  HttpResponse got;
  parser.on_response = [&](HttpResponse r) { got = std::move(r); };
  parser.feed(from_string("HTTP/1.1 200 OK\r\nX-A: 1\r\n\r\npartial bo"));
  EXPECT_EQ(parser.messages_parsed(), 0u);
  parser.feed(from_string("dy"));
  parser.finish();
  EXPECT_EQ(parser.messages_parsed(), 1u);
  EXPECT_EQ(to_string_view_copy(got.body), "partial body");
}

TEST(ParserTest, Errors) {
  {
    HttpParser parser(ParserMode::kRequest);
    std::string err;
    parser.on_error = [&](const std::string& e) { err = e; };
    parser.feed(from_string("NOT_A_REQUEST\r\n\r\n"));
    EXPECT_TRUE(parser.failed());
    EXPECT_FALSE(err.empty());
  }
  {
    HttpParser parser(ParserMode::kResponse);
    parser.on_error = [](const std::string&) {};
    parser.feed(from_string("HTTP/1.1 xyz OK\r\n\r\n"));
    EXPECT_TRUE(parser.failed());
  }
  {
    HttpParser parser(ParserMode::kRequest);
    parser.on_error = [](const std::string&) {};
    parser.feed(from_string("GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n"));
    EXPECT_TRUE(parser.failed());
  }
  {
    HttpParser parser(ParserMode::kRequest);
    parser.on_error = [](const std::string&) {};
    parser.feed(from_string("GET / HTTP/1.1\r\nContent-Length: huge\r\n\r\n"));
    EXPECT_TRUE(parser.failed());
  }
}

TEST(ParserTest, MidMessageEofIsError) {
  HttpParser parser(ParserMode::kResponse);
  bool errored = false;
  parser.on_error = [&](const std::string&) { errored = true; };
  parser.feed(from_string("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc"));
  parser.finish();
  EXPECT_TRUE(errored);
}

/// Random messages survive serialize -> incremental parse intact.
class MessageRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageRoundTrip, SerializeParsePreservesEverything) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    HttpResponse original;
    original.status = 200 + static_cast<int>(rng.next_below(300));
    original.reason = status_reason(original.status);
    const std::size_t header_count = rng.next_below(6);
    for (std::size_t i = 0; i < header_count; ++i) {
      original.headers.add("X-H" + std::to_string(i),
                           "value-" + std::to_string(rng.next_below(1000)));
    }
    original.body = generate_blob(rng.next_below(5000), trial);

    const Bytes wire = original.serialize();
    HttpParser parser(ParserMode::kResponse);
    HttpResponse parsed;
    bool got = false;
    parser.on_response = [&](HttpResponse r) {
      parsed = std::move(r);
      got = true;
    };
    // Feed in random-size chunks.
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t n = std::min<std::size_t>(1 + rng.next_below(97), wire.size() - pos);
      parser.feed(std::span<const std::uint8_t>(wire.data() + pos, n));
      pos += n;
    }
    ASSERT_TRUE(got);
    EXPECT_EQ(parsed.status, original.status);
    EXPECT_EQ(parsed.body, original.body);
    for (std::size_t i = 0; i < header_count; ++i) {
      EXPECT_EQ(parsed.headers.get("x-h" + std::to_string(i)),
                original.headers.get("X-H" + std::to_string(i)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageRoundTrip, ::testing::Range<std::uint64_t>(1, 6));

// ------------------------------------------------------------------- url --

TEST(UrlTest, FullForm) {
  const auto url = parse_url("http://example.org:8080/a/b?c=d");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().host, "example.org");
  EXPECT_EQ(url.value().port, 8080);
  EXPECT_EQ(url.value().path, "/a/b?c=d");
  EXPECT_EQ(url.value().authority(), "example.org:8080");
  EXPECT_EQ(url.value().to_string(), "http://example.org:8080/a/b?c=d");
}

TEST(UrlTest, Defaults) {
  const auto url = parse_url("http://example.org");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().port, 80);
  EXPECT_EQ(url.value().path, "/");
  EXPECT_EQ(url.value().authority(), "example.org");
  EXPECT_EQ(url.value().origin(), "http://example.org");
}

TEST(UrlTest, Errors) {
  EXPECT_FALSE(parse_url("https://example.org/").ok());  // unsupported scheme
  EXPECT_FALSE(parse_url("http:///path").ok());
  EXPECT_FALSE(parse_url("http://host:0/").ok());
  EXPECT_FALSE(parse_url("http://host:99999/").ok());
  EXPECT_FALSE(parse_url("").ok());
}

// ---------------------------------------------------------- strict-scion --

TEST(StrictScionTest, ParseAndSerialize) {
  const auto d = parse_strict_scion("max-age=3600");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->max_age.nanos(), seconds(3600).nanos());
  EXPECT_EQ(d->serialize(), "max-age=3600");
  EXPECT_TRUE(parse_strict_scion(" max-age = 60 ; foo=bar ").has_value());
  EXPECT_FALSE(parse_strict_scion("max-age=abc").has_value());
  EXPECT_FALSE(parse_strict_scion("nonsense").has_value());
}

TEST(StrictScionTest, HugeMaxAgeClampedInsteadOfWrappingNegative) {
  // UINT64_MAX seconds overflows the signed nanosecond Duration; unclamped
  // it wrapped negative and expired the pin in the past.
  const auto huge = parse_strict_scion("max-age=18446744073709551615");
  ASSERT_TRUE(huge.has_value());
  EXPECT_GT(huge->max_age, Duration::zero());
  EXPECT_EQ(huge->max_age, seconds(kStrictScionMaxAgeSeconds));
  // Values merely above the cap (but representable) clamp too.
  const auto above = parse_strict_scion("max-age=99999999999");
  ASSERT_TRUE(above.has_value());
  EXPECT_EQ(above->max_age, seconds(kStrictScionMaxAgeSeconds));
  // max-age=0 parses fine: it is an explicit withdrawal, applied upstream.
  const auto zero = parse_strict_scion("max-age=0");
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->max_age, Duration::zero());
}

TEST(StrictScionTest, ResponseRoundTrip) {
  HttpResponse res = make_response(200);
  set_strict_scion(res, StrictScionDirective{seconds(120)});
  const auto d = strict_scion_of(res);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->max_age.nanos(), seconds(120).nanos());
  EXPECT_FALSE(strict_scion_of(make_response(200)).has_value());
}

// ------------------------------------------------------------ fileserver --

TEST(FileServerTest, ServesAndMisses) {
  sim::Simulator sim;
  FileServer fs(sim);
  fs.add_text("/", "<html>", "text/html");
  fs.add_blob("/big", 1000);
  auto handler = fs.handler();
  HttpResponse got;
  HttpRequest req;
  req.target = "/";
  handler(req, [&](HttpResponse r) { got = std::move(r); });
  sim.run();
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.headers.get("Content-Type"), "text/html");

  req.target = "/nope";
  handler(req, [&](HttpResponse r) { got = std::move(r); });
  sim.run();
  EXPECT_EQ(got.status, 404);
  EXPECT_EQ(fs.hits(), 1u);
  EXPECT_EQ(fs.misses(), 1u);
}

TEST(FileServerTest, BlobsAreDeterministicAndDistinct) {
  sim::Simulator sim;
  FileServer fs(sim);
  fs.add_blob("/a", 500);
  fs.add_blob("/b", 500);
  auto handler = fs.handler();
  Bytes a1;
  Bytes a2;
  Bytes b;
  HttpRequest req;
  req.target = "/a";
  handler(req, [&](HttpResponse r) { a1 = std::move(r.body); });
  handler(req, [&](HttpResponse r) { a2 = std::move(r.body); });
  req.target = "/b";
  handler(req, [&](HttpResponse r) { b = std::move(r.body); });
  sim.run();
  EXPECT_EQ(a1.size(), 500u);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(FileServerTest, ThinkTimeDelaysResponse) {
  sim::Simulator sim;
  FileServer fs(sim);
  fs.add_text("/", "x");
  fs.set_think_time(milliseconds(5));
  auto handler = fs.handler();
  TimePoint responded_at;
  HttpRequest req;
  req.target = "/";
  handler(req, [&](HttpResponse) { responded_at = sim.now(); });
  sim.run();
  EXPECT_EQ(responded_at.nanos(), milliseconds(5).nanos());
}

TEST(FileServerTest, StrictScionHeaderInjected) {
  sim::Simulator sim;
  FileServer fs(sim);
  fs.add_text("/", "x");
  fs.enable_strict_scion(seconds(100));
  auto handler = fs.handler();
  HttpResponse got;
  HttpRequest req;
  req.target = "/";
  handler(req, [&](HttpResponse r) { got = std::move(r); });
  sim.run();
  EXPECT_TRUE(strict_scion_of(got).has_value());
}

// ------------------------------------------------ end-to-end over worlds --

TEST(EndToEndTest, LegacyHttpFetch) {
  auto world = browser::make_local_world();
  FileServer& fs = *world->site("tcpip-fs.local");
  fs.add_blob("/file", 10'000);
  auto& topo = world->topology();
  const auto server_host = topo.host_by_name("tcpip-fs");

  LegacyHttpConnection conn(topo.host(world->client),
                            net::Endpoint{topo.ip(server_host), 80});
  HttpRequest req;
  req.target = "/file";
  req.headers.set("Host", "tcpip-fs.local");
  HttpResponse got;
  bool done = false;
  conn.fetch(req, [&](Result<HttpResponse> r) {
    ASSERT_TRUE(r.ok()) << r.error();
    got = std::move(r).take();
    done = true;
  });
  world->sim().run_until_condition([&] { return done; }, TimePoint{seconds(10).nanos()});
  ASSERT_TRUE(done);
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body.size(), 10'000u);
}

TEST(EndToEndTest, ScionHttpFetchAndKeepAliveReuse) {
  auto world = browser::make_local_world();
  FileServer& fs = *world->site("scion-fs.local");
  fs.add_blob("/file", 10'000);
  auto& topo = world->topology();
  const auto server_host = topo.host_by_name("scion-fs");

  ScionHttpConnection conn(topo.scion_stack(world->client),
                           scion::ScionEndpoint{topo.scion_addr(server_host), 80},
                           scion::DataplanePath{});  // same AS: local path
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    HttpRequest req;
    req.target = "/file";
    req.headers.set("Host", "scion-fs.local");
    conn.fetch(req, [&](Result<HttpResponse> r) {
      ASSERT_TRUE(r.ok()) << r.error();
      EXPECT_EQ(r.value().body.size(), 10'000u);
      ++done;
    });
  }
  world->sim().run_until_condition([&] { return done == 3; },
                                   TimePoint{seconds(10).nanos()});
  EXPECT_EQ(done, 3);
}

TEST(EndToEndTest, OutOfOrderHandlersRespondInOrder) {
  // Two requests pipelined on one TCP-lite stream; the first handler
  // answers later than the second — responses must still arrive in order.
  auto world = browser::make_local_world();
  auto& topo = world->topology();
  auto& sim = world->sim();
  const auto server_host = topo.host_by_name("tcpip-fs");

  HttpServer::Handler handler = [&sim](const HttpRequest& req, HttpServer::Respond respond) {
    const Duration delay = req.target == "/slow" ? milliseconds(50) : milliseconds(1);
    sim.schedule_after(delay, [respond = std::move(respond), target = req.target] {
      respond(make_text_response(200, target));
    });
  };
  LegacyHttpServer server(topo.host(server_host), 8080, std::move(handler));
  LegacyHttpConnection conn(topo.host(world->client),
                            net::Endpoint{topo.ip(server_host), 8080});
  std::vector<std::string> bodies;
  HttpRequest slow;
  slow.target = "/slow";
  HttpRequest fast;
  fast.target = "/fast";
  conn.fetch(slow, [&](Result<HttpResponse> r) {
    ASSERT_TRUE(r.ok());
    bodies.push_back(to_string_view_copy(r.value().body));
  });
  conn.fetch(fast, [&](Result<HttpResponse> r) {
    ASSERT_TRUE(r.ok());
    bodies.push_back(to_string_view_copy(r.value().body));
  });
  sim.run_until_condition([&] { return bodies.size() == 2; }, TimePoint{seconds(5).nanos()});
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_EQ(bodies[0], "/slow");
  EXPECT_EQ(bodies[1], "/fast");
}

}  // namespace
}  // namespace pan::http
