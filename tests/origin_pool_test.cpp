// Tests for the unified http::OriginPool: connection reuse, capacity +
// FIFO queueing, idle eviction, queue-wait timeouts, failure backoff, SCION
// path migration, and the pool's integration points (reverse-proxy
// least-outstanding pipelining, the /skip/pool endpoint, and the browser's
// LRU-bounded cache that rides in the same subsystem PR).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenarios.hpp"

namespace pan {
namespace {

using browser::make_local_world;
using browser::make_remote_world;
using browser::World;

struct PoolFixture {
  std::unique_ptr<World> world = make_local_world();
  obs::MetricsRegistry metrics;

  scion::Topology& topo() { return world->topology(); }
  net::Host& client_host() { return topo().host(world->client); }

  /// Factory dialing the legacy file-server host at `port`.
  http::OriginPool::ConnFactory legacy_factory(
      std::uint16_t port = 80,
      transport::TransportConfig tcp = http::default_tcp_config()) {
    return [this, port, tcp]() {
      const net::Endpoint server{topo().ip(topo().host_by_name("tcpip-fs")), port};
      return std::make_unique<http::LegacyPooledConnection>(client_host(), server, tcp);
    };
  }

  static http::HttpRequest request(const std::string& path,
                                   const std::string& host = "tcpip-fs.local") {
    http::HttpRequest req;
    req.method = "GET";
    req.target = path;
    req.headers.set("Host", host);
    return req;
  }

  /// A separate slow site on the legacy host: responses arrive only after
  /// `think`, keeping connections busy so requests overlap.
  void add_slow_site(Duration think, std::uint16_t port = 8088) {
    browser::SiteOptions slow;
    slow.legacy = true;
    slow.native_scion = false;
    slow.port = port;
    slow.think_time = think;
    world->add_site(topo().host_by_name("tcpip-fs"), "slow.local", slow);
    world->site("slow.local")->add_text("/x", "slow body");
  }
};

TEST(OriginPoolTest, ReusesIdleConnectionAcrossSequentialRequests) {
  PoolFixture fx;
  fx.world->site("tcpip-fs.local")->add_text("/a", "A");
  fx.world->site("tcpip-fs.local")->add_text("/b", "B");
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  std::string first, second;
  pool.submit("tcpip-fs.local", fx.request("/a"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                first = to_string_view_copy(r.value().body);
              },
              fx.legacy_factory());
  fx.world->sim().run_until_condition([&] { return !first.empty(); },
                                      fx.world->sim().now() + seconds(10));
  pool.submit("tcpip-fs.local", fx.request("/b"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                second = to_string_view_copy(r.value().body);
              },
              fx.legacy_factory());
  fx.world->sim().run_until_condition([&] { return !second.empty(); },
                                      fx.world->sim().now() + seconds(10));

  EXPECT_EQ(first, "A");
  EXPECT_EQ(second, "B");
  // One dial (miss), one reuse (hit), a single pooled connection.
  EXPECT_EQ(fx.metrics.counter("pool.t.misses").value(), 1u);
  EXPECT_EQ(fx.metrics.counter("pool.t.hits").value(), 1u);
  const auto snaps = pool.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].conns, 1u);
  EXPECT_EQ(snaps[0].outstanding, 0u);
}

TEST(OriginPoolTest, CapParksWaitersAndDispatchesFifo) {
  PoolFixture fx;
  fx.add_slow_site(milliseconds(500));
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.max_conns_per_origin = 2;
  cfg.max_outstanding_per_conn = 1;  // browser-style, so waiters must park
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  std::vector<int> completion_order;
  for (int i = 0; i < 4; ++i) {
    pool.submit("slow.local", fx.request("/x", "slow.local"),
                [&, i](Result<http::HttpResponse> r) {
                  ASSERT_TRUE(r.ok()) << r.error();
                  completion_order.push_back(i);
                },
                fx.legacy_factory(8088));
  }
  // Mid-flight: two dispatched, two parked.
  fx.world->sim().run_until(fx.world->sim().now() + milliseconds(100));
  {
    const auto snaps = pool.snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].conns, 2u);
    EXPECT_EQ(snaps[0].queued, 2u);
    EXPECT_EQ(fx.metrics.gauge("pool.t.queue_depth").value(), 2.0);
  }
  fx.world->sim().run_until_condition([&] { return completion_order.size() == 4; },
                                      fx.world->sim().now() + seconds(30));
  ASSERT_EQ(completion_order.size(), 4u);
  // FIFO: the third submission dispatches (and completes) before the fourth.
  const auto pos = [&](int i) {
    return std::find(completion_order.begin(), completion_order.end(), i) -
           completion_order.begin();
  };
  EXPECT_LT(pos(2), pos(3));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(2));
  // Parked waiters recorded their queue wait in the shared histogram.
  EXPECT_GE(fx.metrics.histogram("pool.queue_wait").count(), 4u);
  EXPECT_GT(fx.metrics.histogram("pool.queue_wait").snapshot().max,
            milliseconds(400));
}

TEST(OriginPoolTest, UnlimitedOutstandingBalancesLeastLoaded) {
  PoolFixture fx;
  fx.add_slow_site(milliseconds(500));
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.max_conns_per_origin = 2;
  cfg.max_outstanding_per_conn = 0;  // full pool pipelines instead of parking
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  int done = 0;
  for (int i = 0; i < 5; ++i) {
    pool.submit("slow.local", fx.request("/x", "slow.local"),
                [&](Result<http::HttpResponse> r) {
                  ASSERT_TRUE(r.ok()) << r.error();
                  ++done;
                },
                fx.legacy_factory(8088));
  }
  fx.world->sim().run_until(fx.world->sim().now() + milliseconds(100));
  const auto snaps = pool.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].conns, 2u);
  EXPECT_EQ(snaps[0].queued, 0u);
  EXPECT_EQ(snaps[0].outstanding, 5u);
  // Least-outstanding dispatch: 5 requests over 2 connections split 3/2,
  // never 4/1 (the old first-live-connection bias).
  ASSERT_EQ(snaps[0].per_conn_outstanding.size(), 2u);
  const auto [lo, hi] = std::minmax(snaps[0].per_conn_outstanding[0],
                                    snaps[0].per_conn_outstanding[1]);
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 3u);
  fx.world->sim().run_until_condition([&] { return done == 5; },
                                      fx.world->sim().now() + seconds(30));
  EXPECT_EQ(done, 5);
}

TEST(OriginPoolTest, IdleConnectionsEvictAfterTtl) {
  PoolFixture fx;
  fx.world->site("tcpip-fs.local")->add_text("/a", "A");
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.idle_ttl = seconds(2);
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  bool done = false;
  pool.submit("tcpip-fs.local", fx.request("/a"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                done = true;
              },
              fx.legacy_factory());
  fx.world->sim().run_until_condition([&] { return done; },
                                      fx.world->sim().now() + seconds(10));
  ASSERT_EQ(pool.snapshot().size(), 1u);
  EXPECT_EQ(pool.snapshot()[0].conns, 1u);

  fx.world->sim().run_until(fx.world->sim().now() + seconds(3));
  EXPECT_EQ(pool.snapshot()[0].conns, 0u);
  EXPECT_EQ(pool.snapshot()[0].evictions, 1u);
  EXPECT_EQ(fx.metrics.counter("pool.t.evictions").value(), 1u);
  EXPECT_EQ(fx.metrics.gauge("pool.t.conns").value(), 0.0);
}

TEST(OriginPoolTest, ParkedWaiterFailsAfterQueueTimeout) {
  PoolFixture fx;
  fx.add_slow_site(seconds(2));
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.max_conns_per_origin = 1;
  cfg.max_outstanding_per_conn = 1;
  cfg.queue_timeout = milliseconds(200);
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  bool first_ok = false;
  std::string second_error;
  pool.submit("slow.local", fx.request("/x", "slow.local"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                first_ok = true;
              },
              fx.legacy_factory(8088));
  pool.submit("slow.local", fx.request("/x", "slow.local"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_FALSE(r.ok());
                second_error = r.error();
              },
              fx.legacy_factory(8088));
  fx.world->sim().run_until_condition([&] { return first_ok && !second_error.empty(); },
                                      fx.world->sim().now() + seconds(30));
  EXPECT_TRUE(first_ok);
  EXPECT_TRUE(http::OriginPool::is_queue_timeout(second_error)) << second_error;
  EXPECT_EQ(fx.metrics.counter("pool.t.queue_timeouts").value(), 1u);
  EXPECT_EQ(fx.metrics.gauge("pool.t.queue_depth").value(), 0.0);
}

TEST(OriginPoolTest, BackoffFastFailsAndRecovers) {
  PoolFixture fx;
  fx.world->site("tcpip-fs.local")->add_text("/a", "A");
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.backoff_threshold = 2;
  cfg.backoff_cooldown = seconds(5);
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  // Nothing listens on port 9999: dials idle out and the fetch fails.
  transport::TransportConfig dead_tcp = http::default_tcp_config();
  dead_tcp.idle_timeout = milliseconds(200);
  const auto fail_once = [&] {
    std::string error;
    pool.submit("origin", fx.request("/a"),
                [&](Result<http::HttpResponse> r) {
                  ASSERT_FALSE(r.ok());
                  error = r.error();
                },
                fx.legacy_factory(9999, dead_tcp));
    fx.world->sim().run_until_condition([&] { return !error.empty(); },
                                        fx.world->sim().now() + seconds(10));
    return error;
  };
  EXPECT_FALSE(http::OriginPool::is_fast_fail(fail_once()));
  EXPECT_FALSE(http::OriginPool::is_fast_fail(fail_once()));
  EXPECT_EQ(fx.metrics.counter("pool.t.cooldowns").value(), 1u);
  ASSERT_EQ(pool.snapshot().size(), 1u);
  EXPECT_TRUE(pool.snapshot()[0].cooling_down);

  // While cooling down, submissions fast-fail without dialing.
  std::string error;
  pool.submit("origin", fx.request("/a"),
              [&](Result<http::HttpResponse> r) { error = r.error(); },
              fx.legacy_factory(9999, dead_tcp));
  EXPECT_TRUE(http::OriginPool::is_fast_fail(error)) << error;
  EXPECT_EQ(fx.metrics.counter("pool.t.fastfails").value(), 1u);

  // After the cool-down expires the origin is probed again; a success
  // resets the failure streak.
  fx.world->sim().run_until(fx.world->sim().now() + seconds(6));
  bool ok = false;
  pool.submit("origin", fx.request("/a"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                ok = true;
              },
              fx.legacy_factory(80));
  fx.world->sim().run_until_condition([&] { return ok; },
                                      fx.world->sim().now() + seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_EQ(pool.snapshot()[0].consecutive_failures, 0u);
  EXPECT_FALSE(pool.snapshot()[0].cooling_down);
}

TEST(OriginPoolTest, MigrateMovesLiveScionConnectionOntoNewPath) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  world->site("www.far.example")->add_text("/x", "hi");
  // www.far.example is fronted by a QUIC/SCION reverse proxy on far-rp1.
  const auto rp = topo.host_by_name("far-rp1");
  const auto paths = topo.daemon_for(world->client).query_now(topo.as_of(rp));
  ASSERT_GE(paths.size(), 2u);

  obs::MetricsRegistry metrics;
  http::OriginPoolConfig cfg;
  cfg.name = "scion";
  cfg.max_conns_per_origin = 1;
  cfg.max_outstanding_per_conn = 0;  // one multiplexed connection
  http::OriginPool pool(world->sim(), metrics, cfg);
  const std::string key = "www.far.example";
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/x";
  req.headers.set("Host", "www.far.example");

  bool done = false;
  pool.submit(key, req,
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                done = true;
              },
              [&]() {
                return std::make_unique<http::ScionPooledConnection>(
                    topo.scion_stack(world->client),
                    scion::ScionEndpoint{topo.scion_addr(rp), 80}, paths[0],
                    "www.far.example", 80);
              });
  world->sim().run_until_condition([&] { return done; }, world->sim().now() + seconds(60));
  ASSERT_TRUE(done);

  auto* conn = pool.primary_as<http::ScionPooledConnection>(key);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->path().fingerprint(), paths[0].fingerprint());
  EXPECT_EQ(conn->host(), "www.far.example");
  EXPECT_EQ(conn->port(), 80);

  const scion::Path* other = nullptr;
  for (const scion::Path& p : paths) {
    if (p.fingerprint() != paths[0].fingerprint()) {
      other = &p;
      break;
    }
  }
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(pool.migrate(key, *other), 1u);
  EXPECT_EQ(conn->path().fingerprint(), other->fingerprint());
  // Fingerprint-identical migrations are no-ops.
  EXPECT_EQ(pool.migrate(key, *other), 0u);

  // The migrated connection still serves requests (reuse, not a redial).
  done = false;
  pool.submit(key, req,
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                done = true;
              },
              [&]() -> std::unique_ptr<http::OriginPool::PooledConnection> {
                ADD_FAILURE() << "migration must not force a new dial";
                return nullptr;
              });
  world->sim().run_until_condition([&] { return done; }, world->sim().now() + seconds(60));
  EXPECT_TRUE(done);
  EXPECT_EQ(metrics.counter("pool.scion.hits").value(), 1u);
}

TEST(OriginPoolTest, ReverseProxyPipelinesOnLeastOutstandingBackendConn) {
  auto world = make_local_world();
  auto& topo = world->topology();
  browser::SiteOptions slow;
  slow.legacy = true;
  slow.native_scion = false;
  slow.port = 8088;
  slow.think_time = milliseconds(500);
  world->add_site(topo.host_by_name("tcpip-fs"), "slow.local", slow);
  world->site("slow.local")->add_text("/x", "ok");

  proxy::ReverseProxyConfig config;
  config.max_backend_conns = 2;
  proxy::ReverseProxy rp(topo.scion_stack(topo.host_by_name("scion-fs")), 9090,
                         net::Endpoint{topo.ip(topo.host_by_name("tcpip-fs")), 8088},
                         config);

  http::ScionHttpConnection conn(
      topo.scion_stack(world->client),
      scion::ScionEndpoint{topo.scion_addr(topo.host_by_name("scion-fs")), 9090},
      scion::DataplanePath{});
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    http::HttpRequest req;
    req.method = "GET";
    req.target = "/x";
    req.headers.set("Host", "slow.local");
    conn.fetch(req, [&](Result<http::HttpResponse> r) {
      ASSERT_TRUE(r.ok()) << r.error();
      ++done;
    });
  }
  // Mid think-time: all five relayed requests are outstanding on the
  // backend pool, split across both connections instead of convoying on
  // the first (the pre-pool pipelining bias).
  world->sim().run_until(world->sim().now() + milliseconds(250));
  const auto snaps = rp.backend_pool().snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].conns, 2u);
  EXPECT_EQ(snaps[0].outstanding, 5u);
  ASSERT_EQ(snaps[0].per_conn_outstanding.size(), 2u);
  const auto [lo, hi] = std::minmax(snaps[0].per_conn_outstanding[0],
                                    snaps[0].per_conn_outstanding[1]);
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 3u);

  world->sim().run_until_condition([&] { return done == 5; },
                                   world->sim().now() + seconds(30));
  EXPECT_EQ(done, 5);
  EXPECT_EQ(rp.requests_relayed(), 5u);
  EXPECT_EQ(rp.backend_errors(), 0u);
}

TEST(OriginPoolTest, SkipPoolEndpointReportsPerOriginState) {
  auto world = make_local_world();
  auto& topo = world->topology();
  world->site("tcpip-fs.local")->add_text("/x", "legacy");
  world->site("scion-fs.local")->add_text("/y", "scion");
  dns::Resolver resolver(world->sim(), world->zone(), {});
  proxy::SkipProxy proxy(world->sim(), topo.host(world->client),
                         topo.scion_stack(world->client),
                         topo.daemon_for(world->client), resolver, {});
  const auto fetch = [&](const char* target) {
    http::HttpRequest request;
    request.target = target;
    proxy::ProxyResult out;
    bool done = false;
    proxy.fetch(request, {}, [&](proxy::ProxyResult r) {
      out = std::move(r);
      done = true;
    });
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(60));
    EXPECT_TRUE(done);
    return out;
  };

  EXPECT_EQ(fetch("http://tcpip-fs.local/x").transport, proxy::TransportUsed::kIp);
  EXPECT_EQ(fetch("http://scion-fs.local/y").transport, proxy::TransportUsed::kScion);

  const proxy::ProxyResult result = fetch("/skip/pool");
  EXPECT_EQ(result.transport, proxy::TransportUsed::kInternal);
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.response.headers.get("Content-Type"), "application/json");
  const std::string body = to_string_view_copy(result.response.body);
  EXPECT_NE(body.find("\"legacy\":["), std::string::npos) << body;
  EXPECT_NE(body.find("\"scion\":["), std::string::npos) << body;
  EXPECT_NE(body.find("\"origin\":\"tcpip-fs.local\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"origin\":\"scion-fs.local\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"scion_paths\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"conns\":1"), std::string::npos) << body;
}

TEST(OriginPoolTest, BrowserCacheIsLruBounded) {
  auto world = make_local_world();
  auto& fs = *world->site("tcpip-fs.local");
  fs.add_text("/r0", "zero!");
  fs.add_text("/r1", "one!!");
  fs.add_text("/r2", "two!!");
  fs.add_text("/", browser::render_document({"/r0", "/r1", "/r2"}));

  browser::BrowserConfig config;
  config.enable_cache = true;
  config.cache_max_entries = 2;
  browser::DirectSession session(*world, config);
  const browser::PageLoadResult result = session.load("http://tcpip-fs.local/");
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.resources.size(), 4u);

  // Four cacheable responses through a two-entry cache: two LRU evictions.
  EXPECT_EQ(session.browser().cache_size(), 2u);
  EXPECT_EQ(session.browser().metrics().counter("browser.cache.evictions").value(), 2u);
}

TEST(OriginPoolTest, PriorityClassesOutrankFifoInQueue) {
  PoolFixture fx;
  fx.add_slow_site(milliseconds(200));
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.max_conns_per_origin = 1;
  cfg.max_outstanding_per_conn = 1;
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  // One request occupies the single connection; three more park with mixed
  // priorities. Dispatch must take the document first, then the earlier
  // subresource (FIFO within a class), then the probe.
  std::vector<std::string> completion_order;
  const auto submit = [&](const std::string& tag, std::uint8_t priority) {
    http::SubmitOptions options;
    options.priority = priority;
    pool.submit("slow.local", fx.request("/x", "slow.local"), options,
                [&, tag](Result<http::HttpResponse> r) {
                  ASSERT_TRUE(r.ok()) << r.error();
                  completion_order.push_back(tag);
                },
                fx.legacy_factory(8088));
  };
  submit("warmup", 1);
  submit("probe", 2);
  submit("sub", 1);
  submit("doc", 0);
  fx.world->sim().run_until_condition([&] { return completion_order.size() == 4; },
                                      fx.world->sim().now() + seconds(30));
  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_EQ(completion_order[0], "warmup");
  EXPECT_EQ(completion_order[1], "doc");
  EXPECT_EQ(completion_order[2], "sub");
  EXPECT_EQ(completion_order[3], "probe");
}

TEST(OriginPoolTest, ExpiredWaiterFailsAtDispatchInsteadOfRunning) {
  PoolFixture fx;
  fx.add_slow_site(milliseconds(500));
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.max_conns_per_origin = 1;
  cfg.max_outstanding_per_conn = 1;
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  bool first_ok = false;
  std::string expired_error;
  pool.submit("slow.local", fx.request("/x", "slow.local"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                first_ok = true;
              },
              fx.legacy_factory(8088));
  // Parked behind a 500 ms occupant with a 300 ms deadline: by the time the
  // connection frees up the deadline is gone. The old FIFO would have
  // dispatched it anyway; now it fails immediately at dispatch time.
  http::SubmitOptions options;
  options.deadline = fx.world->sim().now() + milliseconds(300);
  pool.submit("slow.local", fx.request("/x", "slow.local"), options,
              [&](Result<http::HttpResponse> r) {
                ASSERT_FALSE(r.ok());
                expired_error = r.error();
              },
              fx.legacy_factory(8088));
  fx.world->sim().run_until_condition([&] { return first_ok && !expired_error.empty(); },
                                      fx.world->sim().now() + seconds(30));
  EXPECT_TRUE(http::OriginPool::is_expired(expired_error)) << expired_error;
  EXPECT_TRUE(http::OriginPool::is_pool_synthesized(expired_error));
  EXPECT_EQ(fx.metrics.counter("pool.t.expired_dispatches").value(), 1u);
  EXPECT_EQ(fx.metrics.gauge("pool.t.queue_depth").value(), 0.0);
}

TEST(OriginPoolTest, CoDelShedsWaitersWhoseDeadlineCannotCoverQueueWait) {
  PoolFixture fx;
  fx.add_slow_site(milliseconds(400));
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.max_conns_per_origin = 1;
  cfg.max_outstanding_per_conn = 1;
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  // Build up >= 8 queue-wait samples with long observed waits so the p90
  // estimate is several hundred milliseconds.
  std::size_t completed = 0;
  for (int i = 0; i < 9; ++i) {
    pool.submit("slow.local", fx.request("/x", "slow.local"),
                [&](Result<http::HttpResponse> r) {
                  ASSERT_TRUE(r.ok()) << r.error();
                  ++completed;
                },
                fx.legacy_factory(8088));
  }
  fx.world->sim().run_until_condition([&] { return completed == 9; },
                                      fx.world->sim().now() + seconds(30));
  ASSERT_GE(fx.metrics.histogram("pool.queue_wait").count(), 8u);

  // Occupy the connection again, then park a waiter whose remaining budget
  // is far below the observed queue-wait p90: it is shed immediately with a
  // synthesized fast failure instead of hanging toward a timeout.
  bool occupant_done = false;
  pool.submit("slow.local", fx.request("/x", "slow.local"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                occupant_done = true;
              },
              fx.legacy_factory(8088));
  std::string shed_error;
  http::SubmitOptions tight;
  tight.deadline = fx.world->sim().now() + milliseconds(50);
  pool.submit("slow.local", fx.request("/x", "slow.local"), tight,
              [&](Result<http::HttpResponse> r) {
                ASSERT_FALSE(r.ok());
                shed_error = r.error();
              },
              fx.legacy_factory(8088));
  const TimePoint shed_by = fx.world->sim().now() + milliseconds(10);
  fx.world->sim().run_until_condition([&] { return !shed_error.empty(); }, shed_by);
  EXPECT_TRUE(http::OriginPool::is_shed(shed_error)) << shed_error;
  EXPECT_TRUE(http::OriginPool::is_pool_synthesized(shed_error));
  EXPECT_EQ(fx.metrics.counter("pool.t.sheds").value(), 1u);
  // The shed must beat the deadline — that is the whole point.
  EXPECT_LE(fx.world->sim().now(), shed_by);
  fx.world->sim().run_until_condition([&] { return occupant_done; },
                                      fx.world->sim().now() + seconds(30));
}

TEST(OriginPoolTest, AdaptiveLimiterNarrowsEffectiveCapUnderSlowness) {
  PoolFixture fx;
  fx.add_slow_site(milliseconds(100));
  proxy::AimdConfig aimd;
  aimd.min_limit = 1;
  aimd.max_limit = 4;
  aimd.latency_target = milliseconds(1);  // every completion is "too slow"
  proxy::AimdController limiter("t", aimd, fx.metrics);
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.max_conns_per_origin = 4;
  cfg.max_outstanding_per_conn = 1;
  cfg.limiter = &limiter;
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  std::size_t completed = 0;
  const auto submit_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      pool.submit("slow.local", fx.request("/x", "slow.local"),
                  [&](Result<http::HttpResponse> r) {
                    ASSERT_TRUE(r.ok()) << r.error();
                    ++completed;
                  },
                  fx.legacy_factory(8088));
    }
  };
  // Four over-target completions: 4 -> 2.8 -> 1.96 -> 1.37 -> 1 (floored).
  submit_n(4);
  fx.world->sim().run_until_condition([&] { return completed == 4; },
                                      fx.world->sim().now() + seconds(30));
  EXPECT_EQ(limiter.limit("slow.local"), 1u);
  EXPECT_GE(fx.metrics.counter("overload.t.narrowed").value(), 3u);

  // The narrowed window now caps dispatch below the static max_conns.
  submit_n(3);
  fx.world->sim().run_until(fx.world->sim().now() + milliseconds(20));
  {
    const auto snaps = pool.snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].outstanding, 1u);
    EXPECT_EQ(snaps[0].queued, 2u);
    EXPECT_EQ(snaps[0].effective_limit, 1u);
  }
  fx.world->sim().run_until_condition([&] { return completed == 7; },
                                      fx.world->sim().now() + seconds(30));
}

/// A pooled connection that wedges: the transport stays open, usable() is
/// false, and any dispatched fetch is swallowed (its response never fires),
/// so the entry sits in the pool busy-but-dead.
class WedgedLegacyConnection final : public http::OriginPool::PooledConnection {
 public:
  WedgedLegacyConnection(net::Host& host, net::Endpoint server) : inner_(host, server) {}

  void fetch(const http::HttpRequest&, http::HttpClientStream::ResponseFn) override {
    ++swallowed_;
  }
  [[nodiscard]] transport::Connection& transport() override { return inner_.transport(); }
  [[nodiscard]] bool usable() override { return false; }
  void shutdown() override { inner_.shutdown(); }
  [[nodiscard]] int swallowed() const { return swallowed_; }

 private:
  http::LegacyPooledConnection inner_;
  int swallowed_ = 0;
};

// Regression: dispatch() used to count every pooled entry — including
// wedged-but-busy connections that can never serve again — against
// max_conns_per_origin, so an origin whose only connection wedged mid-flight
// blocked every new dial until queue timeout. Only usable connections may
// occupy a capacity slot.
TEST(OriginPoolTest, WedgedBusyConnectionDoesNotBlockFreshDials) {
  PoolFixture fx;
  fx.world->site("tcpip-fs.local")->add_text("/a", "A");
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  cfg.max_conns_per_origin = 1;  // the wedged conn holds the only slot
  cfg.max_outstanding_per_conn = 0;
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);
  const net::Endpoint server{fx.topo().ip(fx.topo().host_by_name("tcpip-fs")), 80};

  // First request lands on a connection that wedges with the request still
  // outstanding: transport open, usable() false, response never delivered.
  bool first_answered = false;
  pool.submit("tcpip-fs.local", fx.request("/a"),
              [&](Result<http::HttpResponse>) { first_answered = true; },
              [&]() { return std::make_unique<WedgedLegacyConnection>(fx.client_host(), server); });
  fx.world->sim().run_until(fx.world->sim().now() + milliseconds(50));
  ASSERT_FALSE(first_answered);
  {
    const auto snaps = pool.snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].conns, 1u);
    EXPECT_EQ(snaps[0].outstanding, 1u);
  }

  // The second request must dial fresh instead of parking behind the wedged
  // slot forever (pre-fix: conns.size() == cap, no dial, waiter starves).
  std::string second;
  pool.submit("tcpip-fs.local", fx.request("/a"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                second = to_string_view_copy(r.value().body);
              },
              fx.legacy_factory());
  fx.world->sim().run_until_condition([&] { return !second.empty(); },
                                      fx.world->sim().now() + seconds(10));
  EXPECT_EQ(second, "A");
  EXPECT_EQ(fx.metrics.counter("pool.t.misses").value(), 2u);  // both dialed
  const auto snaps = pool.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].queued, 0u);
}

/// A SCION pool connection that wedges (usable() false, fetches swallowed)
/// while its transport stays open — what migrate() must skip.
class WedgedScionConnection final : public http::ScionPooledConnection {
 public:
  using http::ScionPooledConnection::ScionPooledConnection;

  void fetch(const http::HttpRequest&, http::HttpClientStream::ResponseFn) override {}
  [[nodiscard]] bool usable() override { return false; }
};

// Regression: migrate() used to skip only transport-closed connections, so a
// wedged-open connection (dead stream, transport up, waiting to be pruned)
// was migrated onto the fresh path — burning the replacement path's first
// impression on a connection that can never carry a request. It must be
// skipped, and real migrations must count in pool.<name>.migrations.
TEST(OriginPoolTest, MigrateSkipsWedgedConnectionAndCountsMigrations) {
  auto world = make_remote_world();
  auto& topo = world->topology();
  world->site("www.far.example")->add_text("/x", "hi");
  const auto rp = topo.host_by_name("far-rp1");
  const auto paths = topo.daemon_for(world->client).query_now(topo.as_of(rp));
  ASSERT_GE(paths.size(), 2u);

  obs::MetricsRegistry metrics;
  http::OriginPoolConfig cfg;
  cfg.name = "scion";
  cfg.max_conns_per_origin = 2;
  cfg.max_outstanding_per_conn = 0;
  http::OriginPool pool(world->sim(), metrics, cfg);
  const std::string key = "www.far.example";
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/x";
  req.headers.set("Host", "www.far.example");

  const auto factory_on = [&](const scion::Path& p,
                              bool wedged) -> http::OriginPool::ConnFactory {
    return [&, p, wedged]() -> std::unique_ptr<http::OriginPool::PooledConnection> {
      const auto endpoint = scion::ScionEndpoint{topo.scion_addr(rp), 80};
      auto& stack = topo.scion_stack(world->client);
      if (wedged) {
        return std::make_unique<WedgedScionConnection>(stack, endpoint, p,
                                                       "www.far.example", 80);
      }
      return std::make_unique<http::ScionPooledConnection>(stack, endpoint, p,
                                                           "www.far.example", 80);
    };
  };

  // First submission wedges in flight: outstanding stays 1, so the entry is
  // pool-resident (not prunable) when migrate() runs.
  pool.submit(key, req, [&](Result<http::HttpResponse>) { FAIL() << "wedged"; },
              factory_on(paths[0], /*wedged=*/true));
  // Second submission dials a healthy connection next to it.
  bool done = false;
  pool.submit(key, req,
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                done = true;
              },
              factory_on(paths[0], /*wedged=*/false));
  world->sim().run_until_condition([&] { return done; }, world->sim().now() + seconds(60));
  ASSERT_TRUE(done);
  {
    const auto snaps = pool.snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    ASSERT_EQ(snaps[0].conns, 2u);
    EXPECT_EQ(snaps[0].outstanding, 1u);  // the wedged fetch, forever in flight
  }

  const scion::Path* other = nullptr;
  for (const scion::Path& p : paths) {
    if (p.fingerprint() != paths[0].fingerprint()) {
      other = &p;
      break;
    }
  }
  ASSERT_NE(other, nullptr);

  // Only the healthy connection migrates; the wedged one keeps its old path.
  EXPECT_EQ(pool.migrate(key, *other), 1u);
  EXPECT_EQ(metrics.counter("pool.scion.migrations").value(), 1u);
  std::size_t on_old = 0;
  std::size_t on_new = 0;
  pool.for_each_connection([&](const std::string&, http::OriginPool::PooledConnection& c) {
    auto& scion_conn = dynamic_cast<http::ScionPooledConnection&>(c);
    if (scion_conn.path().fingerprint() == paths[0].fingerprint()) ++on_old;
    if (scion_conn.path().fingerprint() == other->fingerprint()) ++on_new;
  });
  EXPECT_EQ(on_old, 1u);  // the wedged conn, untouched
  EXPECT_EQ(on_new, 1u);
  // Fingerprint-identical re-migration is a no-op and does not count.
  EXPECT_EQ(pool.migrate(key, *other), 0u);
  EXPECT_EQ(metrics.counter("pool.scion.migrations").value(), 1u);
}

// retire() force-closes everything pooled for a key (identity rotation):
// idle entries prune immediately and the next submission dials fresh.
TEST(OriginPoolTest, RetireClosesPooledConnectionsAndRedials) {
  PoolFixture fx;
  fx.world->site("tcpip-fs.local")->add_text("/a", "A");
  http::OriginPoolConfig cfg;
  cfg.name = "t";
  http::OriginPool pool(fx.world->sim(), fx.metrics, cfg);

  std::string first;
  pool.submit("tcpip-fs.local", fx.request("/a"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                first = to_string_view_copy(r.value().body);
              },
              fx.legacy_factory());
  fx.world->sim().run_until_condition([&] { return !first.empty(); },
                                      fx.world->sim().now() + seconds(10));
  EXPECT_EQ(pool.retire("tcpip-fs.local"), 1u);
  EXPECT_EQ(pool.retire("tcpip-fs.local"), 0u);  // idempotent: already closed

  std::string second;
  pool.submit("tcpip-fs.local", fx.request("/a"),
              [&](Result<http::HttpResponse> r) {
                ASSERT_TRUE(r.ok()) << r.error();
                second = to_string_view_copy(r.value().body);
              },
              fx.legacy_factory());
  fx.world->sim().run_until_condition([&] { return !second.empty(); },
                                      fx.world->sim().now() + seconds(10));
  EXPECT_EQ(second, "A");
  EXPECT_EQ(fx.metrics.counter("pool.t.misses").value(), 2u);  // fresh dial
}

}  // namespace
}  // namespace pan
