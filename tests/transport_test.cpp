// Tests for the transport engine: frames, handshake, reliable delivery,
// multiplexing, loss recovery, congestion behaviour, timeouts.
#include <gtest/gtest.h>

#include "http/file_server.hpp"  // generate_blob for payload integrity
#include "net/host.hpp"
#include "net/router.hpp"
#include "transport/udp_host.hpp"

namespace pan::transport {
namespace {

// ---------------------------------------------------------------- frames --

TEST(FramesTest, PacketRoundTrip) {
  TransportPacket packet;
  packet.kind = TransportKind::kQuicLite;
  packet.type = PacketType::kData;
  packet.conn_id = 0xABCDEF;
  packet.packet_number = 42;
  packet.frames.emplace_back(HelloFrame{true, 2, "h3-lite"});
  packet.frames.emplace_back(StreamFrame{4, 1000, true, from_string("data")});
  packet.frames.emplace_back(AckFrame{{{5, 9}, {1, 3}}});
  packet.frames.emplace_back(CloseFrame{"bye"});
  packet.frames.emplace_back(PingFrame{});

  const Bytes wire = serialize_packet(packet);
  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.ok());
  const TransportPacket& out = parsed.value();
  EXPECT_EQ(out.conn_id, packet.conn_id);
  EXPECT_EQ(out.packet_number, 42u);
  ASSERT_EQ(out.frames.size(), 5u);
  EXPECT_EQ(std::get<HelloFrame>(out.frames[0]).round, 2);
  EXPECT_EQ(std::get<StreamFrame>(out.frames[1]).offset, 1000u);
  EXPECT_TRUE(std::get<StreamFrame>(out.frames[1]).fin);
  EXPECT_EQ(std::get<AckFrame>(out.frames[2]).largest(), 9u);
  EXPECT_EQ(std::get<CloseFrame>(out.frames[3]).reason, "bye");
}

TEST(FramesTest, RejectsGarbage) {
  EXPECT_FALSE(parse_packet(Bytes{0x00}).ok());
  EXPECT_FALSE(parse_packet(Bytes{}).ok());
  Bytes truncated = serialize_packet(TransportPacket{});
  truncated.pop_back();
  EXPECT_FALSE(parse_packet(truncated).ok());
}

TEST(FramesTest, AckContains) {
  AckFrame ack{{{10, 12}, {5, 7}}};
  EXPECT_TRUE(ack.contains(5));
  EXPECT_TRUE(ack.contains(11));
  EXPECT_FALSE(ack.contains(8));
  EXPECT_FALSE(ack.contains(13));
  EXPECT_EQ(ack.largest(), 12u);
}

// --------------------------------------------------------- world fixture --

/// Two hosts joined through a router; client dials the server over UDP.
struct TransportWorld {
  sim::Simulator sim;
  net::Network net{sim, 3};
  std::unique_ptr<net::Router> router;
  std::unique_ptr<net::Host> client_host;
  std::unique_ptr<net::Host> server_host;

  explicit TransportWorld(const net::LinkParams& link = make_default_link()) {
    const net::NodeId r = net.add_node("r");
    router = std::make_unique<net::Router>(net, r);
    const net::NodeId c = net.add_node("client");
    const net::NodeId s = net.add_node("server");
    const auto [c_if, r_c] = net.connect(c, r, link);
    const auto [s_if, r_s] = net.connect(s, r, link);
    (void)c_if;
    (void)s_if;
    client_host = std::make_unique<net::Host>(net, c, net::IpAddr{(1u << 16) | 1});
    server_host = std::make_unique<net::Host>(net, s, net::IpAddr{(1u << 16) | 2});
    router->set_host_route(client_host->address(), r_c);
    router->set_host_route(server_host->address(), r_s);
  }

  static net::LinkParams make_default_link() {
    net::LinkParams link;
    link.latency = milliseconds(10);
    link.bandwidth_bps = 100e6;
    link.max_queue_delay = milliseconds(200);
    return link;
  }

  [[nodiscard]] net::Endpoint server_endpoint(std::uint16_t port) const {
    return net::Endpoint{server_host->address(), port};
  }
};

TransportConfig quic_config() {
  TransportConfig config;
  config.kind = TransportKind::kQuicLite;
  return config;
}

TEST(ConnectionTest, HandshakeTakesOneRtt) {
  TransportWorld world;
  UdpTransportServer server(*world.server_host, 4433, quic_config(), nullptr);
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), quic_config());
  TimePoint established_at;
  client.connection().set_on_established([&] { established_at = world.sim.now(); });
  client.connection().start();
  world.sim.run_until(TimePoint{seconds(1).nanos()});
  ASSERT_EQ(client.connection().state(), Connection::State::kEstablished);
  // RTT = 4 * 10ms link latency (client->router->server and back).
  EXPECT_GE(established_at.nanos(), milliseconds(40).nanos());
  EXPECT_LE(established_at.nanos(), milliseconds(42).nanos());
}

TEST(ConnectionTest, ExtraHandshakeRttsDelayEstablishment) {
  TransportWorld world;
  TransportConfig config = quic_config();
  config.extra_handshake_rtts = 1;
  UdpTransportServer server(*world.server_host, 4433, config, nullptr);
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), config);
  TimePoint established_at;
  client.connection().set_on_established([&] { established_at = world.sim.now(); });
  client.connection().start();
  world.sim.run_until(TimePoint{seconds(1).nanos()});
  ASSERT_EQ(client.connection().state(), Connection::State::kEstablished);
  EXPECT_GE(established_at.nanos(), milliseconds(80).nanos());
}

TEST(ConnectionTest, EchoIntegrity) {
  TransportWorld world;
  const Bytes blob = http::generate_blob(50'000, 7);
  Bytes server_received;
  UdpTransportServer server(*world.server_host, 4433, quic_config(),
                            [&](Connection& conn) {
    conn.set_on_stream([&](Stream& stream) {
      stream.set_on_data([&, s = &stream](std::span<const std::uint8_t> data, bool fin) {
        server_received.insert(server_received.end(), data.begin(), data.end());
        if (fin) {
          s->write(server_received);
          s->finish();
        }
      });
    });
  });
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), quic_config());
  Bytes echoed;
  bool done = false;
  client.connection().set_on_established([&] {
    Stream& stream = client.connection().open_stream();
    stream.set_on_data([&](std::span<const std::uint8_t> data, bool fin) {
      echoed.insert(echoed.end(), data.begin(), data.end());
      if (fin) done = true;
    });
    stream.write(blob);
    stream.finish();
  });
  client.connection().start();
  world.sim.run_until_condition([&] { return done; }, TimePoint{seconds(30).nanos()});
  ASSERT_TRUE(done);
  EXPECT_EQ(server_received, blob);
  EXPECT_EQ(echoed, blob);
}

/// Reliable delivery under parameterized loss rates.
class LossRecovery : public ::testing::TestWithParam<double> {};

TEST_P(LossRecovery, TransfersDespiteLoss) {
  net::LinkParams link = TransportWorld::make_default_link();
  link.loss_rate = GetParam();
  TransportWorld world(link);
  const Bytes blob = http::generate_blob(40'000, 11);
  Bytes received;
  bool done = false;
  UdpTransportServer server(*world.server_host, 4433, quic_config(),
                            [&](Connection& conn) {
    conn.set_on_stream([&](Stream& stream) {
      stream.set_on_data([&, s = &stream](std::span<const std::uint8_t>, bool fin) {
        if (fin) {
          s->write(blob);
          s->finish();
        }
      });
    });
  });
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), quic_config());
  client.connection().set_on_established([&] {
    Stream& stream = client.connection().open_stream();
    stream.set_on_data([&](std::span<const std::uint8_t> data, bool fin) {
      received.insert(received.end(), data.begin(), data.end());
      if (fin) done = true;
    });
    stream.write(from_string("gimme"));
    stream.finish();
  });
  client.connection().start();
  world.sim.run_until_condition([&] { return done; }, TimePoint{seconds(120).nanos()});
  ASSERT_TRUE(done) << "loss rate " << GetParam();
  EXPECT_EQ(received, blob);
  if (GetParam() > 0) {
    EXPECT_GT(world.net.drop_totals().loss, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossRecovery,
                         ::testing::Values(0.0, 0.01, 0.05, 0.15));

TEST(ConnectionTest, ManyConcurrentStreams) {
  TransportWorld world;
  constexpr int kStreams = 20;
  UdpTransportServer server(*world.server_host, 4433, quic_config(),
                            [&](Connection& conn) {
    conn.set_on_stream([&](Stream& stream) {
      stream.set_on_data([s = &stream](std::span<const std::uint8_t> data, bool fin) {
        static_cast<void>(data);
        if (fin) {
          // Echo the stream id as payload so the client can verify demux.
          const std::string tag = "stream-" + std::to_string(s->id());
          s->write(from_string(tag));
          s->finish();
        }
      });
    });
  });
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), quic_config());
  int done = 0;
  bool mismatch = false;
  std::unordered_map<std::uint32_t, std::string> accumulated;
  client.connection().set_on_established([&] {
    for (int i = 0; i < kStreams; ++i) {
      Stream& stream = client.connection().open_stream();
      stream.set_on_data([&, id = stream.id()](std::span<const std::uint8_t> data, bool fin) {
        accumulated[id].append(reinterpret_cast<const char*>(data.data()), data.size());
        if (fin) {
          const std::string expected = "stream-" + std::to_string(id);
          if (accumulated[id] != expected) mismatch = true;
          ++done;
        }
      });
      stream.write(from_string("x"));
      stream.finish();
    }
  });
  client.connection().start();
  world.sim.run_until_condition([&] { return done == kStreams; },
                                TimePoint{seconds(30).nanos()});
  EXPECT_EQ(done, kStreams);
  EXPECT_FALSE(mismatch);
}

TEST(ConnectionTest, TcpLiteSingleStreamExchange) {
  TransportWorld world;
  TransportConfig tcp;
  tcp.kind = TransportKind::kTcpLite;
  UdpTransportServer server(*world.server_host, 8080, tcp, [&](Connection& conn) {
    conn.set_on_stream([&](Stream& stream) {
      stream.set_on_data([s = &stream](std::span<const std::uint8_t>, bool fin) {
        if (fin) {
          s->write(from_string("response"));
          s->finish();
        }
      });
    });
  });
  UdpTransportClient client(*world.client_host, world.server_endpoint(8080), tcp);
  Stream& stream = client.connection().open_stream();  // queued pre-handshake
  std::string got;
  bool done = false;
  stream.set_on_data([&](std::span<const std::uint8_t> data, bool fin) {
    got.append(reinterpret_cast<const char*>(data.data()), data.size());
    if (fin) done = true;
  });
  stream.write(from_string("request"));
  stream.finish();
  client.connection().start();
  world.sim.run_until_condition([&] { return done; }, TimePoint{seconds(10).nanos()});
  EXPECT_EQ(got, "response");
}

TEST(ConnectionTest, CloseNotifiesPeerAndBreaksStreams) {
  TransportWorld world;
  UdpTransportServer server(*world.server_host, 4433, quic_config(), nullptr);
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), quic_config());
  std::string close_reason;
  client.connection().set_on_closed([&](const std::string& reason) { close_reason = reason; });
  client.connection().start();
  world.sim.run_until_condition(
      [&] { return client.connection().state() == Connection::State::kEstablished; },
      TimePoint{seconds(2).nanos()});
  Stream& stream = client.connection().open_stream();
  client.connection().close("test over");
  EXPECT_EQ(client.connection().state(), Connection::State::kClosed);
  EXPECT_EQ(close_reason, "test over");
  EXPECT_TRUE(stream.broken());
}

TEST(ConnectionTest, IdleTimeoutCloses) {
  TransportWorld world;
  TransportConfig config = quic_config();
  config.idle_timeout = milliseconds(500);
  UdpTransportServer server(*world.server_host, 4433, config, nullptr);
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), config);
  std::string reason;
  client.connection().set_on_closed([&](const std::string& r) { reason = r; });
  client.connection().start();
  world.sim.run_until(TimePoint{seconds(5).nanos()});
  EXPECT_EQ(client.connection().state(), Connection::State::kClosed);
  EXPECT_EQ(reason, "idle timeout");
}

TEST(ConnectionTest, CongestionWindowGrowsDuringTransfer) {
  TransportWorld world;
  Connection* server_conn = nullptr;
  UdpTransportServer server(*world.server_host, 4433, quic_config(),
                            [&](Connection& conn) {
    server_conn = &conn;
    conn.set_on_stream([&](Stream& stream) {
      stream.set_on_data([s = &stream](std::span<const std::uint8_t>, bool fin) {
        if (fin) {
          s->write(Bytes(200'000, 0x55));
          s->finish();
        }
      });
    });
  });
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), quic_config());
  bool done = false;
  client.connection().set_on_established([&] {
    Stream& stream = client.connection().open_stream();
    stream.set_on_data([&](std::span<const std::uint8_t>, bool fin) {
      if (fin) done = true;
    });
    stream.write(from_string("go"));
    stream.finish();
  });
  client.connection().start();
  world.sim.run_until_condition([&] { return done; }, TimePoint{seconds(60).nanos()});
  ASSERT_TRUE(done);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_GT(server_conn->cwnd_bytes(), 12'000u);  // grew beyond initial
  EXPECT_EQ(server_conn->stats().packets_lost, 0u);
  // RTT estimate near the real 40ms.
  EXPECT_NEAR(server_conn->smoothed_rtt().millis(), 40.0, 15.0);
}

TEST(ConnectionTest, KindMismatchIgnored) {
  TransportWorld world;
  // A QUIC server; a TCP-lite client dials it. The INITIAL carries the
  // wrong magic for the server's config, so no connection forms.
  UdpTransportServer server(*world.server_host, 4433, quic_config(), nullptr);
  TransportConfig tcp;
  tcp.kind = TransportKind::kTcpLite;
  tcp.idle_timeout = milliseconds(500);
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), tcp);
  client.connection().start();
  world.sim.run_until(TimePoint{seconds(2).nanos()});
  EXPECT_EQ(server.connection_count(), 1u);  // demuxed by conn id...
  // ...but the server connection never establishes: its kind filter drops
  // every packet, and the client gives up via idle timeout.
  EXPECT_EQ(client.connection().state(), Connection::State::kClosed);
}

TEST(ConnectionTest, ServerRejectsNonInitialForUnknownConn) {
  TransportWorld world;
  UdpTransportServer server(*world.server_host, 4433, quic_config(), nullptr);
  // Hand-craft a data packet for an unknown connection.
  TransportPacket packet;
  packet.kind = TransportKind::kQuicLite;
  packet.type = PacketType::kData;
  packet.conn_id = 0xDEAD;
  packet.packet_number = 1;
  packet.frames.emplace_back(PingFrame{});
  auto socket = world.client_host->udp_bind(0, nullptr);
  socket->send_to(world.server_endpoint(4433), serialize_packet(packet));
  world.sim.run();
  EXPECT_EQ(server.connection_count(), 0u);
}

TEST(ConnectionTest, ZeroRttSavesOneRoundTrip) {
  const auto time_to_response = [](bool zero_rtt) {
    TransportWorld world;
    TransportConfig config = quic_config();
    UdpTransportServer server(*world.server_host, 4433, config, [](Connection& conn) {
      conn.set_on_stream([](Stream& stream) {
        stream.set_on_data([s = &stream](std::span<const std::uint8_t>, bool fin) {
          if (fin) {
            s->write(from_string("resp"));
            s->finish();
          }
        });
      });
    });
    TransportConfig client_config = config;
    client_config.zero_rtt = zero_rtt;
    UdpTransportClient client(*world.client_host, world.server_endpoint(4433),
                              client_config);
    TimePoint responded;
    bool done = false;
    client.connection().set_on_established([&] {
      if (done || client.connection().stream(0) != nullptr) return;
      Stream& stream = client.connection().open_stream();
      stream.set_on_data([&](std::span<const std::uint8_t>, bool fin) {
        if (fin) {
          responded = world.sim.now();
          done = true;
        }
      });
      stream.write(from_string("req"));
      stream.finish();
    });
    client.connection().start();
    world.sim.run_until_condition([&] { return done; }, TimePoint{seconds(5).nanos()});
    EXPECT_TRUE(done);
    return responded;
  };
  const TimePoint regular = time_to_response(false);
  const TimePoint zero_rtt = time_to_response(true);
  // One round trip = 40 ms in this world; 0-RTT saves exactly that.
  EXPECT_NEAR(regular.millis() - zero_rtt.millis(), 40.0, 2.0);
}

TEST(ConnectionTest, KeepAliveProbesWhileAwaitingResponse) {
  TransportWorld world;
  TransportConfig config = quic_config();
  config.keep_alive = milliseconds(50);
  config.idle_timeout = seconds(60);
  // A server that never answers.
  UdpTransportServer server(*world.server_host, 4433, config, [](Connection& conn) {
    conn.set_on_stream([](Stream& stream) { stream.set_on_data(nullptr); });
  });
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), config);
  client.connection().set_on_established([&] {
    Stream& stream = client.connection().open_stream();
    stream.write(from_string("request"));
    stream.finish();
  });
  client.connection().start();
  world.sim.run_until(TimePoint{seconds(1).nanos()});
  // Handshake + request are a handful of packets; the rest are probes.
  EXPECT_GT(client.connection().stats().packets_sent, 10u);
}

TEST(ConnectionTest, KeepAliveStopsAfterResponse) {
  TransportWorld world;
  TransportConfig config = quic_config();
  config.keep_alive = milliseconds(50);
  config.idle_timeout = seconds(600);
  UdpTransportServer server(*world.server_host, 4433, config, [](Connection& conn) {
    conn.set_on_stream([](Stream& stream) {
      stream.set_on_data([s = &stream](std::span<const std::uint8_t>, bool fin) {
        if (fin) {
          s->write(from_string("done"));
          s->finish();
        }
      });
    });
  });
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), config);
  bool finished = false;
  client.connection().set_on_established([&] {
    Stream& stream = client.connection().open_stream();
    stream.set_on_data([&](std::span<const std::uint8_t>, bool fin) { finished = fin; });
    stream.write(from_string("request"));
    stream.finish();
  });
  client.connection().start();
  world.sim.run_until_condition([&] { return finished; }, TimePoint{seconds(5).nanos()});
  ASSERT_TRUE(finished);
  const std::uint64_t sent_at_finish = client.connection().stats().packets_sent;
  world.sim.run_until(world.sim.now() + seconds(2));
  // At most one trailing probe/ack after completion; probing must stop.
  EXPECT_LE(client.connection().stats().packets_sent, sent_at_finish + 2);
}

TEST(ConnectionTest, PathMigrationResetsCongestionState) {
  TransportWorld world;
  Connection* server_conn = nullptr;
  UdpTransportServer server(*world.server_host, 4433, quic_config(),
                            [&](Connection& conn) {
    server_conn = &conn;
    conn.set_on_stream([&](Stream& stream) {
      stream.set_on_data([s = &stream](std::span<const std::uint8_t>, bool fin) {
        if (fin) {
          s->write(Bytes(150'000, 0x42));
          s->finish();
        }
      });
    });
  });
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), quic_config());
  bool done = false;
  client.connection().set_on_established([&] {
    Stream& stream = client.connection().open_stream();
    stream.set_on_data([&](std::span<const std::uint8_t>, bool fin) {
      if (fin) done = true;
    });
    stream.write(from_string("go"));
    stream.finish();
  });
  client.connection().start();
  world.sim.run_until_condition([&] { return done; }, TimePoint{seconds(30).nanos()});
  ASSERT_TRUE(done);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_GT(server_conn->cwnd_bytes(), 12'000u);  // grew during the transfer
  server_conn->on_path_migrated();
  EXPECT_EQ(server_conn->cwnd_bytes(), 12'000u);  // reset to initial
}

TEST(ConnectionTest, StatsCountersAdvance) {
  TransportWorld world;
  UdpTransportServer server(*world.server_host, 4433, quic_config(), nullptr);
  UdpTransportClient client(*world.client_host, world.server_endpoint(4433), quic_config());
  client.connection().start();
  world.sim.run_until(TimePoint{seconds(1).nanos()});
  EXPECT_GT(client.connection().stats().packets_sent, 0u);
  EXPECT_GT(client.connection().stats().packets_received, 0u);
  EXPECT_GT(client.connection().stats().bytes_sent, 0u);
}

}  // namespace
}  // namespace pan::transport
