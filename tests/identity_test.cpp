// Per-identity network isolation: the IdentityPathBroker's circuit-style
// disjoint path assignment, identity-keyed connection pooling, rotation,
// collision fallback accounting, per-identity policies, the /skip/identity
// endpoint, and the browser-side cache partition. The property suite runs
// randomized interleavings of identities x origins under fault plans and
// checks the isolation invariant: two identities toward the same origin
// share a path fingerprint only when the broker recorded a collision.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "ppl/parser.hpp"
#include "util/rng.hpp"

namespace pan::proxy {
namespace {

using browser::BrowserConfig;
using browser::ClientSession;
using browser::make_local_world;
using browser::make_remote_world;
using browser::PageLoadResult;
using browser::World;

struct IdentityFixture {
  std::unique_ptr<World> world;
  std::unique_ptr<dns::Resolver> resolver;
  std::unique_ptr<SkipProxy> proxy;

  explicit IdentityFixture(ProxyConfig config = {}) {
    world = make_remote_world();
    auto& topo = world->topology();
    resolver = std::make_unique<dns::Resolver>(world->sim(), world->zone(), dns::ResolverConfig{});
    proxy = std::make_unique<SkipProxy>(world->sim(), topo.host(world->client),
                                        topo.scion_stack(world->client),
                                        topo.daemon_for(world->client), *resolver, config);
  }

  /// Submits without running the simulator, so tests can put several
  /// identities' requests in flight at the same instant.
  void fetch_async(const std::string& url, const std::string& identity,
                   std::function<void(ProxyResult)> on_result) {
    http::HttpRequest request;
    request.target = url;
    if (!identity.empty()) {
      request.headers.set(std::string(kIdentityHeader), identity);
    }
    proxy->fetch(std::move(request), {}, std::move(on_result));
  }

  ProxyResult fetch(const std::string& url, const std::string& identity = {}) {
    ProxyResult out;
    bool done = false;
    fetch_async(url, identity, [&](ProxyResult r) {
      out = std::move(r);
      done = true;
    });
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(60));
    EXPECT_TRUE(done);
    return out;
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto* c = proxy->metrics().find_counter(name);
    return c == nullptr ? 0 : c->value();
  }

  /// Takes down the core-1 -> core-2b link that carries the two fastest
  /// client -> server-as paths (same maneuver as the SCMP failover tests).
  /// Returns the (AS, egress interface) that died, as seen from core-1.
  std::pair<scion::IsdAsn, scion::IfaceId> kill_fast_link() {
    auto& topo = world->topology();
    const auto server = topo.host_by_name("far-www");
    const auto paths = topo.daemon_for(world->client).query_now(topo.as_of(server));
    const scion::IsdAsn c1 = topo.as_by_name("core-1");
    const scion::IsdAsn c2b = topo.as_by_name("core-2b");
    for (const scion::Path& path : paths) {
      const auto& hops = path.hops();
      for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
        // The hop at core-1 whose next hop is core-2b: that egress is the
        // fast link.
        if (hops[i].isd_as != c1 || hops[i + 1].isd_as != c2b) continue;
        const net::IfId net_if = scion::BorderRouter::to_net_if(hops[i].egress);
        auto& network = topo.network();
        for (net::NodeId node = 0; node < network.node_count(); ++node) {
          if (network.node_name(node) == "br-core-1") {
            network.set_link_up(node, net_if, false);
            return {c1, hops[i].egress};
          }
        }
      }
    }
    ADD_FAILURE() << "fast link not found";
    return {scion::IsdAsn{}, 0};
  }

  /// Fingerprints of every client -> server-as path that does not cross the
  /// given (AS, egress interface) — the paths that survive its link cut.
  [[nodiscard]] std::set<std::string> fingerprints_surviving(scion::IsdAsn ia,
                                                             scion::IfaceId iface) {
    auto& topo = world->topology();
    std::set<std::string> out;
    for (const scion::Path& path : topo.daemon_for(world->client)
                                       .query_now(topo.as_by_name("server-as"))) {
      if (!path.uses_interface(ia, iface)) out.insert(path.fingerprint());
    }
    return out;
  }

  /// Fingerprints of every client -> server-as path avoiding `as_name`.
  [[nodiscard]] std::set<std::string> fingerprints_avoiding(const std::string& as_name) {
    auto& topo = world->topology();
    const scion::IsdAsn avoid = topo.as_by_name(as_name);
    std::set<std::string> out;
    for (const scion::Path& path : topo.daemon_for(world->client)
                                       .query_now(topo.as_by_name("server-as"))) {
      const auto& hops = path.hops();
      if (std::any_of(hops.begin(), hops.end(),
                      [&](const scion::PathHop& h) { return h.isd_as == avoid; })) {
        continue;
      }
      out.insert(path.fingerprint());
    }
    return out;
  }
};

// Three identities hitting the same origin at the same instant must come
// back on three distinct paths and three distinct pooled connections — the
// broker enforces disjointness at selection time, and the pools are keyed
// by (identity, origin).
TEST(IdentityIsolationTest, ConcurrentIdentitiesGetDisjointPathsAndPools) {
  IdentityFixture fx;
  fx.world->site("www.far.example")->add_text("/x", "far content");

  const std::vector<std::string> ids = {"alice", "bob", "carol"};
  std::map<std::string, ProxyResult> results;
  std::size_t done = 0;
  for (const std::string& id : ids) {
    fx.fetch_async("http://www.far.example/x", id, [&, id](ProxyResult r) {
      results[id] = std::move(r);
      ++done;
    });
  }
  fx.world->sim().run_until_condition([&] { return done == ids.size(); },
                                      fx.world->sim().now() + seconds(60));
  ASSERT_EQ(done, ids.size());

  std::set<std::string> fingerprints;
  for (const std::string& id : ids) {
    const ProxyResult& r = results[id];
    EXPECT_EQ(r.transport, TransportUsed::kScion) << id;
    EXPECT_EQ(r.identity, id);
    ASSERT_FALSE(r.path_fingerprint.empty()) << id;
    fingerprints.insert(r.path_fingerprint);
  }
  // All three fingerprints distinct and no collision fallback was needed
  // (the remote world has four paths for three identities).
  EXPECT_EQ(fingerprints.size(), ids.size());
  EXPECT_EQ(fx.counter("identity.path_collisions"), 0u);

  // One pooled connection per identity, under the identity-scoped key, each
  // pinned to that identity's brokered path.
  const auto pool = fx.proxy->scion_pool_snapshot();
  ASSERT_EQ(pool.size(), ids.size());
  std::set<std::string> keys;
  for (const auto& origin : pool) {
    keys.insert(origin.key);
    const std::string id = identity_of_key(origin.key);
    ASSERT_TRUE(results.contains(id)) << origin.key;
    EXPECT_EQ(origin.path_fingerprint, results[id].path_fingerprint) << origin.key;
  }
  EXPECT_TRUE(keys.contains("alice|www.far.example"));
  EXPECT_TRUE(keys.contains("bob|www.far.example"));
  EXPECT_TRUE(keys.contains("carol|www.far.example"));

  // The broker ledger agrees with what the requests actually used.
  for (const std::string& id : ids) {
    const NetworkIdentity* ident = fx.proxy->identities().find(id);
    ASSERT_NE(ident, nullptr) << id;
    ASSERT_TRUE(ident->assignments().contains("www.far.example")) << id;
    EXPECT_EQ(ident->assignments().at("www.far.example"), results[id].path_fingerprint);
  }
}

// More identities than paths: isolation degrades, never hangs. Every fetch
// still succeeds, and each doubled-up assignment is recorded in
// `identity.path_collisions`.
TEST(IdentityIsolationTest, PathSpaceExhaustionFallsBackWithCollisionRecorded) {
  IdentityFixture fx;
  fx.world->site("www.far.example")->add_text("/x", "far content");

  // The remote world has exactly four client -> server-as paths.
  const std::size_t path_count =
      fx.world->topology()
          .daemon_for(fx.world->client)
          .query_now(fx.world->topology().as_by_name("server-as"))
          .size();
  ASSERT_EQ(path_count, 4u);

  std::set<std::string> fingerprints;
  for (int i = 0; i < 6; ++i) {
    const std::string id = "tab-" + std::to_string(i);
    const ProxyResult r = fx.fetch("http://www.far.example/x", id);
    EXPECT_EQ(r.transport, TransportUsed::kScion) << id;
    ASSERT_FALSE(r.path_fingerprint.empty()) << id;
    fingerprints.insert(r.path_fingerprint);
  }
  // The first four identities exhaust the path set; the remaining two must
  // share and be counted as collisions.
  EXPECT_EQ(fingerprints.size(), path_count);
  EXPECT_GE(fx.counter("identity.path_collisions"), 2u);
  EXPECT_GE(fx.counter("selector.exclusion_fallbacks"), 2u);
}

// rotate_paths(): the rotated identity is re-brokered onto a path disjoint
// from both its own quarantined fingerprint and every other identity's live
// assignment; other identities are untouched.
TEST(IdentityIsolationTest, RotationRebrokersWithoutPerturbingOthers) {
  IdentityFixture fx;
  fx.world->site("www.far.example")->add_text("/x", "far content");

  const ProxyResult alice1 = fx.fetch("http://www.far.example/x", "alice");
  const ProxyResult bob1 = fx.fetch("http://www.far.example/x", "bob");
  ASSERT_EQ(alice1.transport, TransportUsed::kScion);
  ASSERT_EQ(bob1.transport, TransportUsed::kScion);
  ASSERT_NE(alice1.path_fingerprint, bob1.path_fingerprint);

  // Rotation via the control endpoint (also exercises the origin-form
  // /skip/ routing).
  const ProxyResult rotated = fx.fetch("/skip/identity/rotate/alice");
  EXPECT_EQ(rotated.transport, TransportUsed::kInternal);
  EXPECT_NE(to_string_view_copy(rotated.response.body).find("\"rotated\":\"alice\""),
            std::string_view::npos);

  const NetworkIdentity* alice = fx.proxy->identities().find("alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(alice->stats().rotations, 1u);
  EXPECT_TRUE(alice->assignments().empty());
  EXPECT_TRUE(alice->is_quarantined(alice1.path_fingerprint, fx.world->sim().now()));

  // The rotation itself leaves bob's assignment untouched.
  const NetworkIdentity* bob = fx.proxy->identities().find("bob");
  ASSERT_NE(bob, nullptr);
  ASSERT_TRUE(bob->assignments().contains("www.far.example"));
  EXPECT_EQ(bob->assignments().at("www.far.example"), bob1.path_fingerprint);

  // Alice re-brokers onto a fresh path: not her quarantined one, not bob's
  // live one.
  const ProxyResult alice2 = fx.fetch("http://www.far.example/x", "alice");
  ASSERT_EQ(alice2.transport, TransportUsed::kScion);
  EXPECT_NE(alice2.path_fingerprint, alice1.path_fingerprint);
  EXPECT_NE(alice2.path_fingerprint, bob1.path_fingerprint);
  EXPECT_EQ(fx.counter("identity.path_collisions"), 0u);

  // Bob's next request may re-optimize (alice's rotation freed the fastest
  // path), but it must stay disjoint from alice — and off her quarantined
  // fingerprint's owner ledger without colliding.
  const ProxyResult bob2 = fx.fetch("http://www.far.example/x", "bob");
  ASSERT_EQ(bob2.transport, TransportUsed::kScion);
  EXPECT_NE(bob2.path_fingerprint, alice2.path_fingerprint);
  EXPECT_EQ(fx.counter("identity.path_collisions"), 0u);

  // The quarantine is visible at the endpoint.
  const ProxyResult snapshot = fx.fetch("/skip/identity");
  const std::string body{to_string_view_copy(snapshot.response.body)};
  EXPECT_NE(body.find("\"quarantined\":1"), std::string::npos);
  EXPECT_NE(body.find("\"rotations\":1"), std::string::npos);
}

// GET /skip/identity reports per-identity stats, live assignments, and the
// audit trail.
TEST(IdentityIsolationTest, IdentityEndpointReportsStatsAndAudit) {
  IdentityFixture fx;
  fx.world->site("www.far.example")->add_text("/x", "far content");
  const ProxyResult r = fx.fetch("http://www.far.example/x", "alice");
  ASSERT_EQ(r.transport, TransportUsed::kScion);

  const ProxyResult snapshot = fx.fetch("/skip/identity");
  EXPECT_EQ(snapshot.transport, TransportUsed::kInternal);
  EXPECT_EQ(snapshot.response.headers.get("Content-Type"), "application/json");
  const std::string body{to_string_view_copy(snapshot.response.body)};
  EXPECT_NE(body.find("\"id\":\"alice\""), std::string::npos);
  EXPECT_NE(body.find("\"requests\":1"), std::string::npos);
  EXPECT_NE(body.find("\"over_scion\":1"), std::string::npos);
  EXPECT_NE(body.find("\"assignments\":{\"www.far.example\":\"" + r.path_fingerprint + "\"}"),
            std::string::npos);
  EXPECT_NE(body.find("\"event\":\"created\""), std::string::npos);
  EXPECT_NE(body.find("\"event\":\"assign\""), std::string::npos);
}

// X-Skip-Identity values are sanitized before they become pool/cache keys:
// '|' (the scope separator) and friends can never leak in from the wire.
TEST(IdentityIsolationTest, IdentityHeaderIsSanitized) {
  IdentityFixture fx;
  fx.world->site("www.far.example")->add_text("/x", "far content");
  const ProxyResult r = fx.fetch("http://www.far.example/x", "We!rd/Id|x");
  EXPECT_EQ(r.identity, "We-rd-Id-x");
  ASSERT_NE(fx.proxy->identities().find("We-rd-Id-x"), nullptr);
  const auto pool = fx.proxy->scion_pool_snapshot();
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.front().key, "We-rd-Id-x|www.far.example");
}

// Per-identity PPL policies: alice's "avoid core-2b" steers only her
// traffic; the default identity still takes the fast detour.
TEST(IdentityIsolationTest, IdentityPoliciesSteerOnlyThatIdentity) {
  IdentityFixture fx;
  fx.world->site("www.far.example")->add_text("/x", "far content");
  fx.proxy->set_identity_policies(
      "alice", ppl::PolicySet{{ppl::parse_policy(
                   "policy { acl { deny 2-ff00:0:220; allow *; } }").value()}});

  // Only one of the four paths avoids the core-2b AS entirely
  // (core-1 -> core-2a -> server-as); the policy pins alice to it.
  const std::set<std::string> avoid_2b = fx.fingerprints_avoiding("core-2b");
  ASSERT_EQ(avoid_2b.size(), 1u);

  const ProxyResult plain = fx.fetch("http://www.far.example/x");
  ASSERT_EQ(plain.transport, TransportUsed::kScion);
  // The shared default identity prefers the fast detour through core-2b.
  EXPECT_FALSE(avoid_2b.contains(plain.path_fingerprint));

  const ProxyResult alice = fx.fetch("http://www.far.example/x", "alice");
  ASSERT_EQ(alice.transport, TransportUsed::kScion);
  EXPECT_TRUE(alice.policy_compliant);
  EXPECT_TRUE(avoid_2b.contains(alice.path_fingerprint));
}

// Fault-injected path loss mid-transfer: both identities' connections
// migrate off the dead link, and the migrations re-broker disjointly — the
// two survivors never converge onto one path.
TEST(IdentityIsolationTest, DisjointnessHoldsAcrossLinkCutMigration) {
  IdentityFixture fx;
  fx.world->site("www.far.example")->add_blob("/big.bin", 400'000);

  std::map<std::string, ProxyResult> results;
  std::size_t done = 0;
  for (const std::string id : {"alice", "bob"}) {
    fx.fetch_async("http://www.far.example/big.bin", id, [&, id](ProxyResult r) {
      results[id] = std::move(r);
      ++done;
    });
  }
  // Let both transfers get going, then cut the fast link mid-flight.
  fx.world->sim().run_until(fx.world->sim().now() + milliseconds(150));
  ASSERT_LT(done, 2u);
  const auto [dead_as, dead_if] = fx.kill_fast_link();
  const std::set<std::string> survivors = fx.fingerprints_surviving(dead_as, dead_if);
  ASSERT_EQ(survivors.size(), 2u);
  fx.world->sim().run_until_condition([&] { return done == 2; },
                                      fx.world->sim().now() + seconds(120));
  ASSERT_EQ(done, 2u);
  for (const auto& [id, r] : results) {
    EXPECT_EQ(r.transport, TransportUsed::kScion) << id;
    EXPECT_EQ(r.response.body.size(), 400'000u) << id;
    // The reported fingerprint is the path the connection ended up on,
    // which after the cut must be one of the two core-2a survivors.
    EXPECT_TRUE(survivors.contains(r.path_fingerprint)) << id << " on " << r.path_fingerprint;
  }
  EXPECT_NE(results["alice"].path_fingerprint, results["bob"].path_fingerprint);
  EXPECT_EQ(fx.counter("identity.path_collisions"), 0u);
  EXPECT_GE(fx.proxy->stats().scmp_reroutes, 1u);
}

// Property suite: randomized interleavings of identities x origins across
// several rounds, with a transient link-down fault in the middle. The
// isolation invariant: per origin, a fingerprint shared by two identities
// implies the broker counted a collision — disjointness is enforced or
// accounted, never silently lost.
TEST(IdentityPropertyTest, RandomizedInterleavingsPreserveIsolation) {
  for (const std::uint64_t seed : {11u, 42u}) {
    IdentityFixture fx;
    fx.world->site("www.far.example")->add_text("/x", "far content");
    fx.world->site("static.far.example")->add_text("/x", "static content");
    ASSERT_TRUE(fx.world
                    ->schedule_chaos("at=400ms dur=2s link-down core-1 core-2b")
                    .ok());

    Rng rng(seed);
    const std::vector<std::string> ids = {"alice", "bob", "carol", "dave"};
    const std::vector<std::string> urls = {"http://www.far.example/x",
                                           "http://static.far.example/x"};
    for (int round = 0; round < 4; ++round) {
      // A random subset of (identity, origin) pairs, submitted concurrently
      // in random order.
      std::vector<std::pair<std::string, std::string>> batch;
      for (const std::string& id : ids) {
        for (const std::string& url : urls) {
          if (rng.next_below(3) > 0) batch.emplace_back(id, url);
        }
      }
      for (std::size_t i = batch.size(); i > 1; --i) {
        std::swap(batch[i - 1], batch[rng.next_below(i)]);
      }
      std::size_t done = 0;
      std::size_t succeeded = 0;
      for (const auto& [id, url] : batch) {
        fx.fetch_async(url, id, [&](ProxyResult r) {
          ++done;
          if (r.response.status == 200) ++succeeded;
        });
      }
      fx.world->sim().run_until_condition([&] { return done == batch.size(); },
                                          fx.world->sim().now() + seconds(120));
      ASSERT_EQ(done, batch.size()) << "seed " << seed << " round " << round;
      EXPECT_EQ(succeeded, batch.size()) << "seed " << seed << " round " << round;

      // Invariant check against the broker ledger.
      std::map<std::string, std::map<std::string, std::size_t>> holders;  // origin -> fp -> #ids
      for (const std::string& id : ids) {
        const NetworkIdentity* ident = fx.proxy->identities().find(id);
        if (ident == nullptr) continue;
        for (const auto& [origin, fp] : ident->assignments()) ++holders[origin][fp];
      }
      std::size_t duplicated = 0;
      for (const auto& [origin, by_fp] : holders) {
        for (const auto& [fp, count] : by_fp) {
          if (count > 1) ++duplicated;
        }
      }
      if (duplicated > 0) {
        EXPECT_GT(fx.counter("identity.path_collisions"), 0u)
            << "seed " << seed << " round " << round;
      }
    }
    // Pool keys never mix identities: every non-default key is scoped.
    for (const auto& origin : fx.proxy->scion_pool_snapshot()) {
      EXPECT_NE(origin.key.find('|'), std::string::npos) << origin.key;
    }
  }
}

// The browser side of the partition: switching a browser's identity makes
// its own HTTP cache miss — one identity's cached bodies (and ETag
// revalidations) are invisible to another.
TEST(IdentityIsolationTest, BrowserCacheIsIdentityPartitioned) {
  auto world = make_local_world();
  world->site("scion-fs.local")->add_text("/data", "cacheable payload");
  BrowserConfig config;
  config.enable_cache = true;
  ClientSession session(*world, {}, config);

  const PageLoadResult cold = session.load("http://scion-fs.local/data");
  ASSERT_TRUE(cold.ok);
  EXPECT_FALSE(cold.resources[0].from_cache);

  const PageLoadResult warm = session.load("http://scion-fs.local/data");
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.resources[0].from_cache);

  // Same browser, new identity: the cache entry belongs to the default
  // identity and must not serve (or revalidate) for "work".
  session.browser().set_identity("work");
  const PageLoadResult other = session.load("http://scion-fs.local/data");
  ASSERT_TRUE(other.ok);
  EXPECT_FALSE(other.resources[0].from_cache);

  // Flipping back, the default identity's entry is still warm.
  session.browser().set_identity("");
  const PageLoadResult back = session.load("http://scion-fs.local/data");
  ASSERT_TRUE(back.ok);
  EXPECT_TRUE(back.resources[0].from_cache);
}

}  // namespace
}  // namespace pan::proxy
