# Empty compiler generated dependencies file for pan_proxy.
# This may be replaced when dependencies are built.
