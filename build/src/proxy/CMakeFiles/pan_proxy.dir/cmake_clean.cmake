file(REMOVE_RECURSE
  "CMakeFiles/pan_proxy.dir/detector.cpp.o"
  "CMakeFiles/pan_proxy.dir/detector.cpp.o.d"
  "CMakeFiles/pan_proxy.dir/negotiation.cpp.o"
  "CMakeFiles/pan_proxy.dir/negotiation.cpp.o.d"
  "CMakeFiles/pan_proxy.dir/path_selector.cpp.o"
  "CMakeFiles/pan_proxy.dir/path_selector.cpp.o.d"
  "CMakeFiles/pan_proxy.dir/policy_router.cpp.o"
  "CMakeFiles/pan_proxy.dir/policy_router.cpp.o.d"
  "CMakeFiles/pan_proxy.dir/reverse_proxy.cpp.o"
  "CMakeFiles/pan_proxy.dir/reverse_proxy.cpp.o.d"
  "CMakeFiles/pan_proxy.dir/skip_proxy.cpp.o"
  "CMakeFiles/pan_proxy.dir/skip_proxy.cpp.o.d"
  "libpan_proxy.a"
  "libpan_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
