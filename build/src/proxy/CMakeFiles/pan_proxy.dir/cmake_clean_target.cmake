file(REMOVE_RECURSE
  "libpan_proxy.a"
)
