
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/detector.cpp" "src/proxy/CMakeFiles/pan_proxy.dir/detector.cpp.o" "gcc" "src/proxy/CMakeFiles/pan_proxy.dir/detector.cpp.o.d"
  "/root/repo/src/proxy/negotiation.cpp" "src/proxy/CMakeFiles/pan_proxy.dir/negotiation.cpp.o" "gcc" "src/proxy/CMakeFiles/pan_proxy.dir/negotiation.cpp.o.d"
  "/root/repo/src/proxy/path_selector.cpp" "src/proxy/CMakeFiles/pan_proxy.dir/path_selector.cpp.o" "gcc" "src/proxy/CMakeFiles/pan_proxy.dir/path_selector.cpp.o.d"
  "/root/repo/src/proxy/policy_router.cpp" "src/proxy/CMakeFiles/pan_proxy.dir/policy_router.cpp.o" "gcc" "src/proxy/CMakeFiles/pan_proxy.dir/policy_router.cpp.o.d"
  "/root/repo/src/proxy/reverse_proxy.cpp" "src/proxy/CMakeFiles/pan_proxy.dir/reverse_proxy.cpp.o" "gcc" "src/proxy/CMakeFiles/pan_proxy.dir/reverse_proxy.cpp.o.d"
  "/root/repo/src/proxy/skip_proxy.cpp" "src/proxy/CMakeFiles/pan_proxy.dir/skip_proxy.cpp.o" "gcc" "src/proxy/CMakeFiles/pan_proxy.dir/skip_proxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/pan_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/scion/CMakeFiles/pan_scion.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pan_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/pan_http.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/pan_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/ppl/CMakeFiles/pan_ppl.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pan_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
