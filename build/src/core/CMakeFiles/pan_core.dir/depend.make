# Empty dependencies file for pan_core.
# This may be replaced when dependencies are built.
