file(REMOVE_RECURSE
  "libpan_core.a"
)
