file(REMOVE_RECURSE
  "CMakeFiles/pan_core.dir/browser.cpp.o"
  "CMakeFiles/pan_core.dir/browser.cpp.o.d"
  "CMakeFiles/pan_core.dir/extension.cpp.o"
  "CMakeFiles/pan_core.dir/extension.cpp.o.d"
  "CMakeFiles/pan_core.dir/layer_model.cpp.o"
  "CMakeFiles/pan_core.dir/layer_model.cpp.o.d"
  "CMakeFiles/pan_core.dir/page.cpp.o"
  "CMakeFiles/pan_core.dir/page.cpp.o.d"
  "CMakeFiles/pan_core.dir/scenarios.cpp.o"
  "CMakeFiles/pan_core.dir/scenarios.cpp.o.d"
  "libpan_core.a"
  "libpan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
