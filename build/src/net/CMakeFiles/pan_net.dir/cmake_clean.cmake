file(REMOVE_RECURSE
  "CMakeFiles/pan_net.dir/addr.cpp.o"
  "CMakeFiles/pan_net.dir/addr.cpp.o.d"
  "CMakeFiles/pan_net.dir/graph.cpp.o"
  "CMakeFiles/pan_net.dir/graph.cpp.o.d"
  "CMakeFiles/pan_net.dir/host.cpp.o"
  "CMakeFiles/pan_net.dir/host.cpp.o.d"
  "CMakeFiles/pan_net.dir/network.cpp.o"
  "CMakeFiles/pan_net.dir/network.cpp.o.d"
  "CMakeFiles/pan_net.dir/packet.cpp.o"
  "CMakeFiles/pan_net.dir/packet.cpp.o.d"
  "CMakeFiles/pan_net.dir/router.cpp.o"
  "CMakeFiles/pan_net.dir/router.cpp.o.d"
  "CMakeFiles/pan_net.dir/trace.cpp.o"
  "CMakeFiles/pan_net.dir/trace.cpp.o.d"
  "libpan_net.a"
  "libpan_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
