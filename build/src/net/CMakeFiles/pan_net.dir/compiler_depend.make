# Empty compiler generated dependencies file for pan_net.
# This may be replaced when dependencies are built.
