file(REMOVE_RECURSE
  "libpan_net.a"
)
