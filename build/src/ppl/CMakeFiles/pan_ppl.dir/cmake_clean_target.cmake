file(REMOVE_RECURSE
  "libpan_ppl.a"
)
