
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppl/ast.cpp" "src/ppl/CMakeFiles/pan_ppl.dir/ast.cpp.o" "gcc" "src/ppl/CMakeFiles/pan_ppl.dir/ast.cpp.o.d"
  "/root/repo/src/ppl/geofence.cpp" "src/ppl/CMakeFiles/pan_ppl.dir/geofence.cpp.o" "gcc" "src/ppl/CMakeFiles/pan_ppl.dir/geofence.cpp.o.d"
  "/root/repo/src/ppl/lexer.cpp" "src/ppl/CMakeFiles/pan_ppl.dir/lexer.cpp.o" "gcc" "src/ppl/CMakeFiles/pan_ppl.dir/lexer.cpp.o.d"
  "/root/repo/src/ppl/parser.cpp" "src/ppl/CMakeFiles/pan_ppl.dir/parser.cpp.o" "gcc" "src/ppl/CMakeFiles/pan_ppl.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/scion/CMakeFiles/pan_scion.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pan_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pan_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
