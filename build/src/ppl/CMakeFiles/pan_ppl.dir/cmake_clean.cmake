file(REMOVE_RECURSE
  "CMakeFiles/pan_ppl.dir/ast.cpp.o"
  "CMakeFiles/pan_ppl.dir/ast.cpp.o.d"
  "CMakeFiles/pan_ppl.dir/geofence.cpp.o"
  "CMakeFiles/pan_ppl.dir/geofence.cpp.o.d"
  "CMakeFiles/pan_ppl.dir/lexer.cpp.o"
  "CMakeFiles/pan_ppl.dir/lexer.cpp.o.d"
  "CMakeFiles/pan_ppl.dir/parser.cpp.o"
  "CMakeFiles/pan_ppl.dir/parser.cpp.o.d"
  "libpan_ppl.a"
  "libpan_ppl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_ppl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
