# Empty compiler generated dependencies file for pan_ppl.
# This may be replaced when dependencies are built.
