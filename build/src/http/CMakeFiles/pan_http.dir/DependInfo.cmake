
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/client.cpp" "src/http/CMakeFiles/pan_http.dir/client.cpp.o" "gcc" "src/http/CMakeFiles/pan_http.dir/client.cpp.o.d"
  "/root/repo/src/http/endpoints.cpp" "src/http/CMakeFiles/pan_http.dir/endpoints.cpp.o" "gcc" "src/http/CMakeFiles/pan_http.dir/endpoints.cpp.o.d"
  "/root/repo/src/http/file_server.cpp" "src/http/CMakeFiles/pan_http.dir/file_server.cpp.o" "gcc" "src/http/CMakeFiles/pan_http.dir/file_server.cpp.o.d"
  "/root/repo/src/http/message.cpp" "src/http/CMakeFiles/pan_http.dir/message.cpp.o" "gcc" "src/http/CMakeFiles/pan_http.dir/message.cpp.o.d"
  "/root/repo/src/http/multipath.cpp" "src/http/CMakeFiles/pan_http.dir/multipath.cpp.o" "gcc" "src/http/CMakeFiles/pan_http.dir/multipath.cpp.o.d"
  "/root/repo/src/http/parser.cpp" "src/http/CMakeFiles/pan_http.dir/parser.cpp.o" "gcc" "src/http/CMakeFiles/pan_http.dir/parser.cpp.o.d"
  "/root/repo/src/http/server.cpp" "src/http/CMakeFiles/pan_http.dir/server.cpp.o" "gcc" "src/http/CMakeFiles/pan_http.dir/server.cpp.o.d"
  "/root/repo/src/http/strict_scion.cpp" "src/http/CMakeFiles/pan_http.dir/strict_scion.cpp.o" "gcc" "src/http/CMakeFiles/pan_http.dir/strict_scion.cpp.o.d"
  "/root/repo/src/http/url.cpp" "src/http/CMakeFiles/pan_http.dir/url.cpp.o" "gcc" "src/http/CMakeFiles/pan_http.dir/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/scion/CMakeFiles/pan_scion.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pan_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pan_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
