file(REMOVE_RECURSE
  "libpan_http.a"
)
