# Empty compiler generated dependencies file for pan_http.
# This may be replaced when dependencies are built.
