file(REMOVE_RECURSE
  "CMakeFiles/pan_http.dir/client.cpp.o"
  "CMakeFiles/pan_http.dir/client.cpp.o.d"
  "CMakeFiles/pan_http.dir/endpoints.cpp.o"
  "CMakeFiles/pan_http.dir/endpoints.cpp.o.d"
  "CMakeFiles/pan_http.dir/file_server.cpp.o"
  "CMakeFiles/pan_http.dir/file_server.cpp.o.d"
  "CMakeFiles/pan_http.dir/message.cpp.o"
  "CMakeFiles/pan_http.dir/message.cpp.o.d"
  "CMakeFiles/pan_http.dir/multipath.cpp.o"
  "CMakeFiles/pan_http.dir/multipath.cpp.o.d"
  "CMakeFiles/pan_http.dir/parser.cpp.o"
  "CMakeFiles/pan_http.dir/parser.cpp.o.d"
  "CMakeFiles/pan_http.dir/server.cpp.o"
  "CMakeFiles/pan_http.dir/server.cpp.o.d"
  "CMakeFiles/pan_http.dir/strict_scion.cpp.o"
  "CMakeFiles/pan_http.dir/strict_scion.cpp.o.d"
  "CMakeFiles/pan_http.dir/url.cpp.o"
  "CMakeFiles/pan_http.dir/url.cpp.o.d"
  "libpan_http.a"
  "libpan_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
