file(REMOVE_RECURSE
  "libpan_crypto.a"
)
