file(REMOVE_RECURSE
  "CMakeFiles/pan_crypto.dir/hmac.cpp.o"
  "CMakeFiles/pan_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/pan_crypto.dir/sha256.cpp.o"
  "CMakeFiles/pan_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/pan_crypto.dir/signature.cpp.o"
  "CMakeFiles/pan_crypto.dir/signature.cpp.o.d"
  "libpan_crypto.a"
  "libpan_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
