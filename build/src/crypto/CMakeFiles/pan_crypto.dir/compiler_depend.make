# Empty compiler generated dependencies file for pan_crypto.
# This may be replaced when dependencies are built.
