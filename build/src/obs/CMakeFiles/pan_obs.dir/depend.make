# Empty dependencies file for pan_obs.
# This may be replaced when dependencies are built.
