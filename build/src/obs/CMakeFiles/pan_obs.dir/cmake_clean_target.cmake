file(REMOVE_RECURSE
  "libpan_obs.a"
)
