file(REMOVE_RECURSE
  "CMakeFiles/pan_obs.dir/metrics.cpp.o"
  "CMakeFiles/pan_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/pan_obs.dir/trace.cpp.o"
  "CMakeFiles/pan_obs.dir/trace.cpp.o.d"
  "libpan_obs.a"
  "libpan_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
