file(REMOVE_RECURSE
  "libpan_scion.a"
)
