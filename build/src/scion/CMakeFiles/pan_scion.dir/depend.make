# Empty dependencies file for pan_scion.
# This may be replaced when dependencies are built.
