
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scion/addr.cpp" "src/scion/CMakeFiles/pan_scion.dir/addr.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/addr.cpp.o.d"
  "/root/repo/src/scion/beaconing.cpp" "src/scion/CMakeFiles/pan_scion.dir/beaconing.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/beaconing.cpp.o.d"
  "/root/repo/src/scion/border_router.cpp" "src/scion/CMakeFiles/pan_scion.dir/border_router.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/border_router.cpp.o.d"
  "/root/repo/src/scion/colibri.cpp" "src/scion/CMakeFiles/pan_scion.dir/colibri.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/colibri.cpp.o.d"
  "/root/repo/src/scion/daemon.cpp" "src/scion/CMakeFiles/pan_scion.dir/daemon.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/daemon.cpp.o.d"
  "/root/repo/src/scion/header.cpp" "src/scion/CMakeFiles/pan_scion.dir/header.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/header.cpp.o.d"
  "/root/repo/src/scion/hopfield.cpp" "src/scion/CMakeFiles/pan_scion.dir/hopfield.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/hopfield.cpp.o.d"
  "/root/repo/src/scion/path.cpp" "src/scion/CMakeFiles/pan_scion.dir/path.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/path.cpp.o.d"
  "/root/repo/src/scion/path_server.cpp" "src/scion/CMakeFiles/pan_scion.dir/path_server.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/path_server.cpp.o.d"
  "/root/repo/src/scion/pki.cpp" "src/scion/CMakeFiles/pan_scion.dir/pki.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/pki.cpp.o.d"
  "/root/repo/src/scion/scmp.cpp" "src/scion/CMakeFiles/pan_scion.dir/scmp.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/scmp.cpp.o.d"
  "/root/repo/src/scion/segment.cpp" "src/scion/CMakeFiles/pan_scion.dir/segment.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/segment.cpp.o.d"
  "/root/repo/src/scion/stack.cpp" "src/scion/CMakeFiles/pan_scion.dir/stack.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/stack.cpp.o.d"
  "/root/repo/src/scion/topo_gen.cpp" "src/scion/CMakeFiles/pan_scion.dir/topo_gen.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/topo_gen.cpp.o.d"
  "/root/repo/src/scion/topology.cpp" "src/scion/CMakeFiles/pan_scion.dir/topology.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/topology.cpp.o.d"
  "/root/repo/src/scion/types.cpp" "src/scion/CMakeFiles/pan_scion.dir/types.cpp.o" "gcc" "src/scion/CMakeFiles/pan_scion.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pan_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pan_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
