file(REMOVE_RECURSE
  "CMakeFiles/pan_dns.dir/dns.cpp.o"
  "CMakeFiles/pan_dns.dir/dns.cpp.o.d"
  "libpan_dns.a"
  "libpan_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
