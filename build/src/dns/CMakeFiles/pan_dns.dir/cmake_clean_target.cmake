file(REMOVE_RECURSE
  "libpan_dns.a"
)
