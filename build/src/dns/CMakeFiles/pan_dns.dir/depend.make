# Empty dependencies file for pan_dns.
# This may be replaced when dependencies are built.
