file(REMOVE_RECURSE
  "CMakeFiles/pan_util.dir/bytes.cpp.o"
  "CMakeFiles/pan_util.dir/bytes.cpp.o.d"
  "CMakeFiles/pan_util.dir/log.cpp.o"
  "CMakeFiles/pan_util.dir/log.cpp.o.d"
  "CMakeFiles/pan_util.dir/rng.cpp.o"
  "CMakeFiles/pan_util.dir/rng.cpp.o.d"
  "CMakeFiles/pan_util.dir/stats.cpp.o"
  "CMakeFiles/pan_util.dir/stats.cpp.o.d"
  "CMakeFiles/pan_util.dir/strings.cpp.o"
  "CMakeFiles/pan_util.dir/strings.cpp.o.d"
  "CMakeFiles/pan_util.dir/types.cpp.o"
  "CMakeFiles/pan_util.dir/types.cpp.o.d"
  "libpan_util.a"
  "libpan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
