# Empty compiler generated dependencies file for pan_util.
# This may be replaced when dependencies are built.
