file(REMOVE_RECURSE
  "libpan_util.a"
)
