
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/connection.cpp" "src/transport/CMakeFiles/pan_transport.dir/connection.cpp.o" "gcc" "src/transport/CMakeFiles/pan_transport.dir/connection.cpp.o.d"
  "/root/repo/src/transport/frames.cpp" "src/transport/CMakeFiles/pan_transport.dir/frames.cpp.o" "gcc" "src/transport/CMakeFiles/pan_transport.dir/frames.cpp.o.d"
  "/root/repo/src/transport/scion_host.cpp" "src/transport/CMakeFiles/pan_transport.dir/scion_host.cpp.o" "gcc" "src/transport/CMakeFiles/pan_transport.dir/scion_host.cpp.o.d"
  "/root/repo/src/transport/udp_host.cpp" "src/transport/CMakeFiles/pan_transport.dir/udp_host.cpp.o" "gcc" "src/transport/CMakeFiles/pan_transport.dir/udp_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/scion/CMakeFiles/pan_scion.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pan_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
