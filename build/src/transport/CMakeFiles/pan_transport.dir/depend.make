# Empty dependencies file for pan_transport.
# This may be replaced when dependencies are built.
