file(REMOVE_RECURSE
  "libpan_transport.a"
)
