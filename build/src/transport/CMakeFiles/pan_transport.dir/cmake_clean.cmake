file(REMOVE_RECURSE
  "CMakeFiles/pan_transport.dir/connection.cpp.o"
  "CMakeFiles/pan_transport.dir/connection.cpp.o.d"
  "CMakeFiles/pan_transport.dir/frames.cpp.o"
  "CMakeFiles/pan_transport.dir/frames.cpp.o.d"
  "CMakeFiles/pan_transport.dir/scion_host.cpp.o"
  "CMakeFiles/pan_transport.dir/scion_host.cpp.o.d"
  "CMakeFiles/pan_transport.dir/udp_host.cpp.o"
  "CMakeFiles/pan_transport.dir/udp_host.cpp.o.d"
  "libpan_transport.a"
  "libpan_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
