file(REMOVE_RECURSE
  "libpan_sim.a"
)
