# Empty compiler generated dependencies file for pan_sim.
# This may be replaced when dependencies are built.
