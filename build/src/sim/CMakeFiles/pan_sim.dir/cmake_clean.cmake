file(REMOVE_RECURSE
  "CMakeFiles/pan_sim.dir/simulator.cpp.o"
  "CMakeFiles/pan_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/pan_sim.dir/timer.cpp.o"
  "CMakeFiles/pan_sim.dir/timer.cpp.o.d"
  "libpan_sim.a"
  "libpan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
