file(REMOVE_RECURSE
  "CMakeFiles/scion_addr_test.dir/scion_addr_test.cpp.o"
  "CMakeFiles/scion_addr_test.dir/scion_addr_test.cpp.o.d"
  "scion_addr_test"
  "scion_addr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scion_addr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
