# Empty compiler generated dependencies file for scion_addr_test.
# This may be replaced when dependencies are built.
