file(REMOVE_RECURSE
  "CMakeFiles/scmp_test.dir/scmp_test.cpp.o"
  "CMakeFiles/scmp_test.dir/scmp_test.cpp.o.d"
  "scmp_test"
  "scmp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
