file(REMOVE_RECURSE
  "CMakeFiles/colibri_test.dir/colibri_test.cpp.o"
  "CMakeFiles/colibri_test.dir/colibri_test.cpp.o.d"
  "colibri_test"
  "colibri_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colibri_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
