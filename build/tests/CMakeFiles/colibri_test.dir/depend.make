# Empty dependencies file for colibri_test.
# This may be replaced when dependencies are built.
