
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/obs_test.cpp" "tests/CMakeFiles/obs_test.dir/obs_test.cpp.o" "gcc" "tests/CMakeFiles/obs_test.dir/obs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/pan_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/pan_http.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pan_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/pan_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/ppl/CMakeFiles/pan_ppl.dir/DependInfo.cmake"
  "/root/repo/build/src/scion/CMakeFiles/pan_scion.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pan_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/pan_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
