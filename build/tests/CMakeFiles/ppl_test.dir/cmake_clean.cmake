file(REMOVE_RECURSE
  "CMakeFiles/ppl_test.dir/ppl_test.cpp.o"
  "CMakeFiles/ppl_test.dir/ppl_test.cpp.o.d"
  "ppl_test"
  "ppl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
