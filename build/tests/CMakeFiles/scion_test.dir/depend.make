# Empty dependencies file for scion_test.
# This may be replaced when dependencies are built.
