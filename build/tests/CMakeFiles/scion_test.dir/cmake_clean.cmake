file(REMOVE_RECURSE
  "CMakeFiles/scion_test.dir/scion_test.cpp.o"
  "CMakeFiles/scion_test.dir/scion_test.cpp.o.d"
  "scion_test"
  "scion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
