# Empty dependencies file for bench_fig3_local_plt.
# This may be replaced when dependencies are built.
