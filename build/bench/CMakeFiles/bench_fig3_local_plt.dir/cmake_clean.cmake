file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_local_plt.dir/bench_fig3_local_plt.cpp.o"
  "CMakeFiles/bench_fig3_local_plt.dir/bench_fig3_local_plt.cpp.o.d"
  "bench_fig3_local_plt"
  "bench_fig3_local_plt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_local_plt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
