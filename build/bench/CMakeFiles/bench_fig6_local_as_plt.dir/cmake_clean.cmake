file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_local_as_plt.dir/bench_fig6_local_as_plt.cpp.o"
  "CMakeFiles/bench_fig6_local_as_plt.dir/bench_fig6_local_as_plt.cpp.o.d"
  "bench_fig6_local_as_plt"
  "bench_fig6_local_as_plt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_local_as_plt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
