# Empty dependencies file for bench_fig6_local_as_plt.
# This may be replaced when dependencies are built.
