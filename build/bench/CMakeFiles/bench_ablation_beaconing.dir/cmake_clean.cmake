file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_beaconing.dir/bench_ablation_beaconing.cpp.o"
  "CMakeFiles/bench_ablation_beaconing.dir/bench_ablation_beaconing.cpp.o.d"
  "bench_ablation_beaconing"
  "bench_ablation_beaconing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_beaconing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
