# Empty compiler generated dependencies file for bench_ablation_beaconing.
# This may be replaced when dependencies are built.
