# Empty compiler generated dependencies file for bench_ablation_strictness.
# This may be replaced when dependencies are built.
