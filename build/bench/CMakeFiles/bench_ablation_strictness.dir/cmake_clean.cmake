file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_strictness.dir/bench_ablation_strictness.cpp.o"
  "CMakeFiles/bench_ablation_strictness.dir/bench_ablation_strictness.cpp.o.d"
  "bench_ablation_strictness"
  "bench_ablation_strictness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_strictness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
