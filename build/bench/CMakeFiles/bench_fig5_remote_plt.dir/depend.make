# Empty dependencies file for bench_fig5_remote_plt.
# This may be replaced when dependencies are built.
