file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_remote_plt.dir/bench_fig5_remote_plt.cpp.o"
  "CMakeFiles/bench_fig5_remote_plt.dir/bench_fig5_remote_plt.cpp.o.d"
  "bench_fig5_remote_plt"
  "bench_fig5_remote_plt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_remote_plt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
