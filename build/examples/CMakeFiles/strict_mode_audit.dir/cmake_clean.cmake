file(REMOVE_RECURSE
  "CMakeFiles/strict_mode_audit.dir/strict_mode_audit.cpp.o"
  "CMakeFiles/strict_mode_audit.dir/strict_mode_audit.cpp.o.d"
  "strict_mode_audit"
  "strict_mode_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strict_mode_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
