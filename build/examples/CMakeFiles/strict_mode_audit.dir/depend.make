# Empty dependencies file for strict_mode_audit.
# This may be replaced when dependencies are built.
