# Empty dependencies file for multipath_dashboard.
# This may be replaced when dependencies are built.
