file(REMOVE_RECURSE
  "CMakeFiles/multipath_dashboard.dir/multipath_dashboard.cpp.o"
  "CMakeFiles/multipath_dashboard.dir/multipath_dashboard.cpp.o.d"
  "multipath_dashboard"
  "multipath_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
