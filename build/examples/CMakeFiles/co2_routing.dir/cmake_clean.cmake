file(REMOVE_RECURSE
  "CMakeFiles/co2_routing.dir/co2_routing.cpp.o"
  "CMakeFiles/co2_routing.dir/co2_routing.cpp.o.d"
  "co2_routing"
  "co2_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/co2_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
