# Empty dependencies file for co2_routing.
# This may be replaced when dependencies are built.
