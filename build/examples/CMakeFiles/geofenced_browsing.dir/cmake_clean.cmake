file(REMOVE_RECURSE
  "CMakeFiles/geofenced_browsing.dir/geofenced_browsing.cpp.o"
  "CMakeFiles/geofenced_browsing.dir/geofenced_browsing.cpp.o.d"
  "geofenced_browsing"
  "geofenced_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geofenced_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
