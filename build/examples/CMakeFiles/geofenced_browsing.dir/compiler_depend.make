# Empty compiler generated dependencies file for geofenced_browsing.
# This may be replaced when dependencies are built.
