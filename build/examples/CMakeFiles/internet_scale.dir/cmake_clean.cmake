file(REMOVE_RECURSE
  "CMakeFiles/internet_scale.dir/internet_scale.cpp.o"
  "CMakeFiles/internet_scale.dir/internet_scale.cpp.o.d"
  "internet_scale"
  "internet_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
