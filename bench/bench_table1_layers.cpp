// Reproduces Table 1: which layer (OS / application / user) can
// meaningfully select paths for each PAN property.
//
// Each cell runs many randomized scenarios in which the layer picks a path
// (or makes the relevant decision) using only its own information set; the
// mean achievement vs. an oracle maps to the paper's marks:
//   @  (paper ●): the layer meaningfully achieves the property
//   o  (paper ◐): partial/limited
//   .  (paper ○): not an appropriate place for the decision
//
// The source table's glyphs did not survive text extraction cleanly, so
// EXPERIMENTS.md compares against the paper's *narrative*: the OS handles
// performance/quality metrics; applications add app-context properties;
// privacy/ESG/economic intent requires the user; loss and MTU are
// abstracted away from the user.
#include <cstdio>

#include "core/layer_model.hpp"
#include "util/strings.hpp"

using namespace pan;
using browser::Table1Row;

int main() {
  constexpr std::size_t kTrials = 400;
  const std::vector<Table1Row> table = browser::compute_table1(kTrials, /*seed=*/2022);

  std::printf("Table 1 — property x layer suitability (%zu scenarios per cell)\n\n", kTrials);
  std::printf("%-30s | %-12s | %-12s | %-12s\n", "Property", "OS", "App", "User");
  std::printf("%.30s-+-%.12s-+-%.12s-+-%.12s\n",
              "------------------------------", "------------", "------------",
              "------------");

  const auto cell = [](const browser::CellScore& score) {
    return strings::format("%c (%.2f)", score.glyph(), score.mean_achievement);
  };
  const auto section = [](const char* name) { std::printf("%s\n", name); };

  section("Performance properties");
  for (const Table1Row& row : table) {
    switch (row.property) {
      case browser::PanProperty::kQos:
        section("Quality properties");
        break;
      case browser::PanProperty::kGeofencing:
        section("Privacy / Anonymity");
        break;
      case browser::PanProperty::kCarbonFootprint:
        section("ESG routing");
        break;
      case browser::PanProperty::kAlliedRouting:
        section("Economic aspects");
        break;
      default:
        break;
    }
    std::printf("  %-28s | %-12s | %-12s | %-12s\n", to_string(row.property),
                cell(row.os).c_str(), cell(row.app).c_str(), cell(row.user).c_str());
  }

  std::printf(
      "\nLegend: @ = meaningful selection (paper: filled circle), o = partial (half),\n"
      "        . = wrong layer (empty). Numbers are mean achievement vs oracle.\n");
  return 0;
}
