// Ablation 4 (DESIGN.md): strict vs opportunistic mode as SCION availability
// varies. A page references six origins; we sweep how many of them are
// SCION-enabled and report PLT, transport mix, blocked counts, and the UI
// indicator for both modes — the partial-availability story of Section 4.2.
#include <cstdio>

#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace pan;

namespace {

constexpr int kOrigins = 6;
constexpr int kTrials = 10;

std::unique_ptr<browser::World> build_world(int scion_enabled) {
  browser::WorldConfig config;
  config.seed = 100 + static_cast<std::uint64_t>(scion_enabled);
  config.link_jitter = 0.05;
  auto world = std::make_unique<browser::World>(config);
  auto& topo = world->topology();

  scion::AsSpec core;
  core.name = "core";
  core.ia = scion::IsdAsn{1, 0xff00'0000'0110ULL};
  core.core = true;
  core.meta.country = "CH";
  topo.add_as(core);
  scion::AsSpec client_as;
  client_as.name = "client-as";
  client_as.ia = scion::IsdAsn{1, 0xff00'0000'0111ULL};
  client_as.meta.country = "CH";
  topo.add_as(client_as);
  scion::AsSpec server_as;
  server_as.name = "server-as";
  server_as.ia = scion::IsdAsn{1, 0xff00'0000'0112ULL};
  server_as.meta.country = "CH";
  topo.add_as(server_as);

  scion::AsLinkSpec up;
  up.a = "core";
  up.b = "client-as";
  up.type = scion::LinkType::kParentChild;
  up.params.latency = milliseconds(5);
  up.params.jitter_frac = config.link_jitter;
  topo.add_link(up);
  up.b = "server-as";
  up.params.latency = milliseconds(8);
  topo.add_link(up);

  world->client = topo.add_host("client-as", "browser");
  std::vector<scion::HostId> servers;
  for (int i = 0; i < kOrigins; ++i) {
    servers.push_back(topo.add_host("server-as", "origin" + std::to_string(i)));
  }
  topo.finalize();

  for (int i = 0; i < kOrigins; ++i) {
    const std::string domain = "origin" + std::to_string(i) + ".example";
    browser::SiteOptions options;
    options.legacy = true;
    options.native_scion = i < scion_enabled;
    auto& fs = world->add_site(servers[static_cast<std::size_t>(i)], domain, options);
    fs.add_blob("/res.bin", 20'000);
  }
  // The page document always lives on origin 0.
  std::vector<std::string> urls;
  for (int i = 0; i < kOrigins; ++i) {
    urls.push_back("http://origin" + std::to_string(i) + ".example/res.bin");
  }
  world->site("origin0.example")->add_text("/", browser::render_document(urls));
  return world;
}

}  // namespace

int main() {
  std::printf(
      "Ablation — strict vs opportunistic under partial SCION availability\n"
      "(%d origins; page = 1 document + %d cross-origin resources; %d trials median)\n\n",
      kOrigins, kOrigins, kTrials);
  std::printf("%-10s %-14s %10s %7s %6s %8s %7s  %s\n", "scion", "mode", "PLT ms", "scion",
              "ip", "blocked", "failed", "indicator");

  for (int enabled = 0; enabled <= kOrigins; enabled += 2) {
    auto world = build_world(enabled);
    for (const bool strict : {false, true}) {
      std::vector<double> plts;
      browser::PageLoadResult last;
      for (int t = 0; t < kTrials; ++t) {
        browser::ClientSession session(*world);
        if (strict) session.extension().set_mode(browser::OperationMode::kStrict);
        last = session.load("http://origin0.example/");
        plts.push_back(last.plt.millis());
      }
      std::printf("%3d/%-6d %-14s %10.2f %7zu %6zu %8zu %7zu  %s\n", enabled, kOrigins,
                  strict ? "strict" : "opportunistic", box_stats(plts).median,
                  last.over_scion, last.over_ip, last.blocked, last.failed,
                  to_string(last.indicator));
    }
  }

  std::printf("\nOpportunistic mode always completes (IP fallback, indicator degrades);\n"
              "strict mode fails closed: with 0 SCION origins even the document is blocked,\n"
              "and partial availability blocks exactly the non-SCION origins.\n");
  return 0;
}
