// Fleet scaling + recovery bench (the ProxyCluster tentpole).
//
// Part 1 — scale: a strict document stream (one fetch every few ms, 2 s
// deadline each) runs against the local world's Strict-SCION origin through
// a ProxyCluster at N = 1 / 4 / 8 replicas while a scripted chaos plan
// exercises all three replica fault verbs on the replica that owns the
// loaded origin:
//
//   at=2s dur=1s   replica-crash    (process dies, later revives warm)
//   at=4s dur=500ms replica-hang    (answers vanish; probes + hedges rescue)
//   at=6s          replica-restart  (one-shot bounce)
//
// Guarantees checked on every arm, fleet-shed 503s included:
//   * zero strict downgrades (a strict request never completes over IP),
//   * every request resolves within its deadline budget,
//   * N >= 4: the chaos window is fully absorbed (no sheds, no timeouts —
//     failover re-hashing hides rep-0's death entirely).
//
// Part 2 — warm vs cold TTR: the fleet learns the origin's Strict-SCION pin
// from response headers, then the owner replica is bounced *during a DNS
// brownout*. A warm restart (peer cache import) serves strict traffic again
// in ~one request latency; a cold restart (warm_handoff=false) must sit out
// the brownout because the learned pin and the DNS cache died with the
// process. The bench fails unless warm recovery is >= 5x faster.
//
// Run with --smoke for the CI-sized run (scripts/check.sh --fleet).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <algorithm>

#include "core/scenarios.hpp"
#include "obs/metrics.hpp"
#include "proxy/cluster.hpp"
#include "util/stats.hpp"

using namespace pan;

namespace {

constexpr Duration kLoadWindow = seconds(10);
constexpr Duration kDocDeadline = seconds(2);

struct ScaleRun {
  std::size_t replicas = 0;
  std::size_t launched = 0;
  std::size_t completed = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;       // 503 (fleet shed or strict fail-closed)
  std::size_t timed_out = 0;  // 504
  std::size_t failed = 0;
  std::size_t downgrades = 0;          // strict answered over IP: must be 0
  std::size_t deadline_violations = 0; // answered past the budget: must be 0
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  proxy::FleetStats fleet;
};

ScaleRun run_scale_once(std::size_t replicas, Duration launch_period) {
  auto world = browser::make_local_world();
  world->site("scion-fs.local")->add_text("/", "document");

  proxy::ClusterConfig config;
  config.replicas = replicas;
  browser::FleetSession session(*world, config);
  proxy::ProxyCluster& cluster = session.cluster();
  // Aim the chaos at the replica that actually owns the loaded origin, so
  // the crash / hang / restart all land on the hot path and failover (not
  // luck of the ring) is what keeps the stream alive.
  const std::string owner = cluster.owner_of("scion-fs.local");
  const std::string chaos = "at=2s dur=1s replica-crash " + owner + "\n" +
                            "at=4s dur=500ms replica-hang " + owner + "\n" +
                            "at=6s replica-restart " + owner + "\n";
  if (!world->schedule_chaos(chaos).ok()) {
    std::fprintf(stderr, "bad scale chaos plan\n");
    return {};
  }

  ScaleRun run;
  run.replicas = replicas;
  std::vector<double> ok_latency_ms;
  sim::Simulator& sim = world->sim();
  const std::size_t total =
      static_cast<std::size_t>(kLoadWindow.nanos() / launch_period.nanos());
  for (std::size_t i = 0; i < total; ++i) {
    sim.schedule_after(launch_period * static_cast<std::int64_t>(i),
                       [&run, &cluster, &sim, &ok_latency_ms] {
      ++run.launched;
      http::HttpRequest request;
      request.method = "GET";
      request.target = "http://scion-fs.local/";
      proxy::ProxyRequestOptions options;
      options.strict = true;
      const TimePoint start = sim.now();
      const TimePoint deadline = start + kDocDeadline;
      options.deadline = deadline;
      cluster.fetch(std::move(request), options,
                    [&run, &sim, &ok_latency_ms, start, deadline](proxy::ProxyResult result) {
                      ++run.completed;
                      if (sim.now() > deadline + milliseconds(1)) ++run.deadline_violations;
                      if (result.transport == proxy::TransportUsed::kIp) ++run.downgrades;
                      const int status = result.response.status;
                      if (status == 200) {
                        ++run.ok;
                        ok_latency_ms.push_back((sim.now() - start).millis());
                      } else if (status == 503) {
                        ++run.shed;
                      } else if (status == 504) {
                        ++run.timed_out;
                      } else {
                        ++run.failed;
                      }
                    });
    });
  }
  // The load window plus a generous drain for the last deadlines.
  sim.run_until(sim.now() + kLoadWindow + seconds(3));

  if (!ok_latency_ms.empty()) {
    run.p50_ms = percentile(ok_latency_ms, 50);
    run.p99_ms = percentile(ok_latency_ms, 99);
    run.p999_ms = percentile(ok_latency_ms, 99.9);
  }
  run.fleet = cluster.stats();
  return run;
}

struct TtrRun {
  double warm_ms = -1;
  double cold_ms = -1;
  std::size_t brownout_downgrades = 0;  // strict over IP during recovery: 0
};

/// One restart-under-brownout recovery measurement. Returns ms from the
/// bounce to the first strict 200 over SCION (-1 = never recovered).
double measure_ttr(bool warm, std::size_t* downgrades) {
  auto world = browser::make_local_world();
  world->site("scion-fs.local")->add_text("/", "document");
  // The origin pins itself via the Strict-SCION response header, so the
  // fleet *learns* it — the pin (not DNS) is what a warm restart preserves.
  world->site("scion-fs.local")->enable_strict_scion(seconds(3600));

  proxy::ClusterConfig config;
  config.replicas = 4;
  config.warm_handoff = warm;
  browser::FleetSession session(*world, config);
  proxy::ProxyCluster& cluster = session.cluster();
  sim::Simulator& sim = world->sim();

  // Warm-up: the owner fetches over SCION, sees the header, learns the pin
  // and broadcasts it fleet-wide.
  for (int i = 0; i < 10; ++i) {
    const proxy::ProxyResult result = session.fetch("http://scion-fs.local/", /*strict=*/true);
    if (result.response.status != 200) {
      std::fprintf(stderr, "warm-up fetch failed (%d)\n", result.response.status);
      return -1;
    }
  }
  const std::string owner = cluster.owner_of("scion-fs.local");
  if (cluster.replica(owner)->detector().learned_size() == 0) {
    std::fprintf(stderr, "owner never learned the Strict-SCION pin\n");
    return -1;
  }

  // DNS goes dark at t=1s for 4s; the owner is bounced at t=2s, mid-brownout.
  const std::string plan = "at=1s dur=4s dns-brownout scion-fs.local mode=servfail\n"
                           "at=2s replica-restart " + owner + "\n";
  if (!world->schedule_chaos(plan).ok()) {
    std::fprintf(stderr, "bad TTR chaos plan\n");
    return -1;
  }
  const TimePoint bounce_at = TimePoint{} + seconds(2);
  sim.run_until(bounce_at + milliseconds(1));

  // Probe every 10 ms until strict traffic flows over SCION again.
  const TimePoint give_up = bounce_at + seconds(10);
  while (sim.now() < give_up) {
    http::HttpRequest request;
    request.method = "GET";
    request.target = "http://scion-fs.local/";
    proxy::ProxyRequestOptions options;
    options.strict = true;
    options.deadline = sim.now() + seconds(1);
    bool done = false;
    proxy::ProxyResult result;
    cluster.fetch(std::move(request), options, [&](proxy::ProxyResult r) {
      result = std::move(r);
      done = true;
    });
    sim.run_until_condition([&] { return done; }, sim.now() + seconds(2));
    if (done && result.transport == proxy::TransportUsed::kIp) ++*downgrades;
    if (done && result.response.status == 200 &&
        result.transport == proxy::TransportUsed::kScion) {
      return (sim.now() - bounce_at).millis();
    }
    sim.run_until(sim.now() + milliseconds(10));
  }
  return -1;
}

TtrRun run_ttr() {
  TtrRun run;
  run.warm_ms = measure_ttr(/*warm=*/true, &run.brownout_downgrades);
  run.cold_ms = measure_ttr(/*warm=*/false, &run.brownout_downgrades);
  return run;
}

/// Part 3 — the deterministic fleet load generator: a `surge` fault verb
/// drives browser::SurgeLoad through the cluster front (consistent hashing +
/// failover) while the owner replica dies mid-surge. The fleet may shed
/// (rejected) but must never let a request hang to 504.
browser::SurgeLoad::Stats run_surge_once(double rate) {
  auto world = browser::make_local_world();
  world->site("scion-fs.local")->add_text("/", "document");

  proxy::ClusterConfig config;
  config.replicas = 4;
  browser::FleetSession session(*world, config);
  proxy::ProxyCluster& cluster = session.cluster();
  browser::SurgeLoad surge(*world, cluster);

  const std::string owner = cluster.owner_of("scion-fs.local");
  const std::string plan =
      "at=100ms dur=4s surge scion-fs.local rate=" + std::to_string(rate) + " conc=64\n" +
      "at=2s dur=1s replica-crash " + owner + "\n";
  if (!world->schedule_chaos(plan).ok()) {
    std::fprintf(stderr, "bad surge plan\n");
    return {};
  }
  world->sim().run_until(world->sim().now() + seconds(8));
  return surge.stats();
}

/// Part 4 — fleet-merge fidelity: every replica records proxy.request_total
/// into its own registry; /skip/fleet/metrics merges those histograms
/// bucket-wise. Because dispatch through the cluster front costs zero sim
/// time on the happy path, the client-observed latency of each request *is*
/// the sample the owning replica recorded — so the pooled client latencies
/// are exact ground truth for the merged histogram, and the merged
/// percentile must land within one bucket width of the pooled-sample
/// percentile (the log-linear layout's resolution; DESIGN.md section 5l).
struct MergeFidelity {
  std::size_t samples = 0;
  std::uint64_t merged_count = 0;
  std::size_t replicas_reporting = 0;
  double worst_error_ms = 0;
  double worst_bound_ms = 0;
  bool pass = false;
};

MergeFidelity run_merge_fidelity_once(std::size_t requests) {
  auto world = browser::make_local_world();
  // Several origins on the same host so consistent hashing spreads the load
  // over multiple replicas — a merge over one replica would test nothing.
  std::vector<std::string> origins;
  for (int i = 0; i < 8; ++i) {
    const std::string domain = "origin-" + std::to_string(i) + ".local";
    const std::uint16_t port = static_cast<std::uint16_t>(8080 + i);
    // Distinct ports: the sites share the scion-fs host and a host's SCION
    // stack has one listener per port.
    browser::SiteOptions options;
    options.legacy = false;
    options.native_scion = true;
    options.port = port;
    world->add_site(world->topology().host_by_name("scion-fs"), domain, options);
    world->site(domain)->add_text("/", "document");
    origins.push_back("http://" + domain + ":" + std::to_string(port) + "/");
  }

  proxy::ClusterConfig config;
  config.replicas = 4;
  // No health probes: /skip/ping rides through each replica's request path
  // and would land in proxy.request_total too, spoiling the exact
  // count-vs-pooled-samples comparison. The scrape-time pull in
  // refresh_fleet_metrics() feeds the aggregator instead.
  config.probe_interval = Duration::zero();
  browser::FleetSession session(*world, config);
  proxy::ProxyCluster& cluster = session.cluster();
  sim::Simulator& sim = world->sim();

  MergeFidelity out;
  std::vector<Duration> pooled;
  for (std::size_t i = 0; i < requests; ++i) {
    sim.schedule_after(milliseconds(3) * static_cast<std::int64_t>(i),
                       [&cluster, &sim, &pooled, &origins, i] {
      http::HttpRequest request;
      request.method = "GET";
      request.target = origins[i % origins.size()];
      const TimePoint start = sim.now();
      cluster.fetch(std::move(request), {}, [&sim, &pooled, start](proxy::ProxyResult result) {
        if (result.response.status == 200) pooled.push_back(sim.now() - start);
      });
    });
  }
  sim.run_until(sim.now() + milliseconds(3) * static_cast<std::int64_t>(requests) + seconds(3));
  out.samples = pooled.size();
  if (pooled.empty()) return out;

  cluster.refresh_fleet_metrics();
  obs::MetricsRegistry merged;
  cluster.fleet_metrics().build_merged(merged);
  const obs::Histogram* hist = merged.find_histogram("proxy.request_total");
  if (hist == nullptr) return out;
  out.merged_count = hist->count();
  for (const std::string& name : cluster.replica_names()) {
    obs::MetricsRegistry replica;
    if (cluster.fleet_metrics().build_replica(name, replica)) {
      const obs::Histogram* h = replica.find_histogram("proxy.request_total");
      if (h != nullptr && h->count() > 0) ++out.replicas_reporting;
    }
  }

  std::sort(pooled.begin(), pooled.end());
  out.pass = out.merged_count == pooled.size() && out.replicas_reporting >= 2;
  for (const double pct : {50.0, 90.0, 99.0, 99.9}) {
    // Nearest-rank ground truth over the pooled samples.
    const std::size_t rank = std::min(
        pooled.size() - 1,
        static_cast<std::size_t>(pct / 100.0 * static_cast<double>(pooled.size())));
    const Duration truth = pooled[rank];
    // Width of the layout bucket containing the true value = the promised
    // resolution at that point of the distribution.
    const auto& bounds = hist->bounds();
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), truth);
    const Duration upper = it == bounds.end() ? truth : *it;
    const Duration lower = it == bounds.begin() ? Duration::zero() : *(it - 1);
    const double bound_ms = (upper - lower).millis();
    const double error_ms =
        std::abs((hist->percentile(pct) - truth).millis());
    if (error_ms > out.worst_error_ms) {
      out.worst_error_ms = error_ms;
      out.worst_bound_ms = bound_ms;
    }
    if (error_ms > bound_ms) out.pass = false;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Smoke keeps the same 10 s sim window (the chaos plan needs it) but
  // launches fewer requests; p99.9 is coarser and the run is CI-cheap.
  const Duration launch_period = smoke ? milliseconds(5) : milliseconds(2);

  std::printf("fleet scale: strict stream @ 1/%.0f ms, chaos on the owner replica (%s)\n",
              launch_period.millis(), smoke ? "smoke" : "full");
  std::printf("%4s %8s %8s %6s %6s %6s %9s %9s %9s %9s %7s\n", "N", "launched", "ok",
              "shed", "504", "downgr", "p50ms", "p99ms", "p99.9ms", "failovers", "crashes");

  bool pass = true;
  std::vector<ScaleRun> runs;
  for (const std::size_t replicas : {1u, 4u, 8u}) {
    const ScaleRun run = run_scale_once(replicas, launch_period);
    runs.push_back(run);
    std::printf("%4zu %8zu %8zu %6zu %6zu %6zu %9.2f %9.2f %9.2f %9llu %7llu\n",
                run.replicas, run.launched, run.ok, run.shed, run.timed_out,
                run.downgrades, run.p50_ms, run.p99_ms, run.p999_ms,
                static_cast<unsigned long long>(run.fleet.failovers),
                static_cast<unsigned long long>(run.fleet.crashes));

    if (run.completed != run.launched) {
      std::fprintf(stderr, "FAIL N=%zu: %zu of %zu requests never resolved\n",
                   run.replicas, run.launched - run.completed, run.launched);
      pass = false;
    }
    if (run.downgrades != 0) {
      std::fprintf(stderr, "FAIL N=%zu: %zu strict request(s) downgraded to IP\n",
                   run.replicas, run.downgrades);
      pass = false;
    }
    if (run.deadline_violations != 0) {
      std::fprintf(stderr, "FAIL N=%zu: %zu request(s) resolved past the deadline\n",
                   run.replicas, run.deadline_violations);
      pass = false;
    }
    if (run.replicas >= 4 && (run.shed != 0 || run.timed_out != 0 || run.ok != run.launched)) {
      std::fprintf(stderr,
                   "FAIL N=%zu: chaos leaked through failover (ok=%zu shed=%zu 504=%zu)\n",
                   run.replicas, run.ok, run.shed, run.timed_out);
      pass = false;
    }
    if (run.replicas >= 4 && run.fleet.failovers == 0) {
      std::fprintf(stderr, "FAIL N=%zu: chaos on the owner never exercised failover\n",
                   run.replicas);
      pass = false;
    }
    // Fixed p99.9 regression bound: a successful request costs at most one
    // failover_timeout hedge plus generous fetch slack. Today's numbers are
    // ~401 ms (N>=4, the hedged hang window) and ~5 ms (N=1, no hedging).
    const double p999_bound_ms = run.replicas >= 4 ? 500.0 : 100.0;
    if (run.p999_ms > p999_bound_ms) {
      std::fprintf(stderr, "FAIL N=%zu: p99.9 %.2f ms over the %.0f ms bound\n",
                   run.replicas, run.p999_ms, p999_bound_ms);
      pass = false;
    }
  }

  const browser::SurgeLoad::Stats surge = run_surge_once(smoke ? 200.0 : 500.0);
  std::printf("\nsurge through the fleet (N=4, owner crashed mid-surge):\n");
  std::printf("  launched %llu  completed %llu  rejected %llu  timed-out %llu  failed %llu\n",
              static_cast<unsigned long long>(surge.launched),
              static_cast<unsigned long long>(surge.completed),
              static_cast<unsigned long long>(surge.rejected),
              static_cast<unsigned long long>(surge.timed_out),
              static_cast<unsigned long long>(surge.failed));
  if (surge.launched == 0 || surge.timed_out != 0 || surge.failed != 0 ||
      surge.completed < surge.launched * 9 / 10) {
    std::fprintf(stderr, "FAIL: surge leaked through the fleet (see stats above)\n");
    pass = false;
  }

  const TtrRun ttr = run_ttr();
  std::printf("\nrestart under DNS brownout (N=4, owner bounced mid-brownout):\n");
  std::printf("  warm handoff: TTR %8.1f ms\n", ttr.warm_ms);
  std::printf("  cold restart: TTR %8.1f ms\n", ttr.cold_ms);
  if (ttr.warm_ms > 0 && ttr.cold_ms > 0) {
    std::printf("  warm is %.1fx faster\n", ttr.cold_ms / ttr.warm_ms);
  }
  if (ttr.warm_ms < 0 || ttr.cold_ms < 0) {
    std::fprintf(stderr, "FAIL: recovery never observed (warm=%.1f cold=%.1f)\n",
                 ttr.warm_ms, ttr.cold_ms);
    pass = false;
  } else if (ttr.cold_ms < 5.0 * ttr.warm_ms) {
    std::fprintf(stderr, "FAIL: warm handoff only %.1fx faster than cold (need >= 5x)\n",
                 ttr.cold_ms / ttr.warm_ms);
    pass = false;
  }
  if (ttr.brownout_downgrades != 0) {
    std::fprintf(stderr, "FAIL: %zu strict downgrade(s) during brownout recovery\n",
                 ttr.brownout_downgrades);
    pass = false;
  }

  const MergeFidelity fidelity = run_merge_fidelity_once(smoke ? 400 : 2000);
  std::printf("\nfleet-merge fidelity (N=4, %zu pooled samples, %zu replicas reporting):\n",
              fidelity.samples, fidelity.replicas_reporting);
  std::printf("  merged count %llu, worst percentile error %.3f ms "
              "(bucket-width bound %.3f ms)\n",
              static_cast<unsigned long long>(fidelity.merged_count),
              fidelity.worst_error_ms, fidelity.worst_bound_ms);
  if (!fidelity.pass) {
    std::fprintf(stderr,
                 "FAIL: fleet-merged percentiles drift past one bucket width "
                 "of the pooled ground truth (or a replica went missing)\n");
    pass = false;
  }

  std::printf("\nfleet-scale: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
