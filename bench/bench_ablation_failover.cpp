// Ablation 7: what SCMP-driven failover buys.
//
// A 400 kB download loses its path mid-transfer. We compare completion time
// with the full failover stack (keep-alive probes + SCMP revocation + live
// QUIC migration) against a client without keep-alive probes (silent
// receiver: recovery only via much later timeouts), and against the
// no-failure baseline.
#include <cstdio>

#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace pan;

namespace {

constexpr std::size_t kBytes = 400'000;

struct Run {
  double completion_ms = -1;
  bool over_scion = false;
  std::uint64_t reroutes = 0;
};

Run run_once(bool kill_link, Duration keep_alive) {
  browser::WorldConfig world_config;
  world_config.seed = 21;
  auto world = browser::make_remote_world(world_config);
  world->site("www.far.example")->add_blob("/dataset.bin", kBytes);
  auto& topo = world->topology();

  dns::Resolver resolver(world->sim(), world->zone(), {});
  proxy::ProxyConfig proxy_config;
  proxy_config.quic.keep_alive = keep_alive;
  proxy_config.request_timeout = seconds(60);
  proxy::SkipProxy proxy(world->sim(), topo.host(world->client),
                         topo.scion_stack(world->client), topo.daemon_for(world->client),
                         resolver, proxy_config);

  http::HttpRequest request;
  request.target = "http://www.far.example/dataset.bin";
  bool done = false;
  Run run;
  const TimePoint t0 = world->sim().now();
  proxy.fetch(request, {}, [&](proxy::ProxyResult r) {
    run.completion_ms = (world->sim().now() - t0).millis();
    run.over_scion = r.transport == proxy::TransportUsed::kScion;
    done = true;
  });

  if (kill_link) {
    world->sim().run_until(world->sim().now() + milliseconds(150));
    const auto paths =
        topo.daemon_for(world->client).query_now(topo.as_by_name("server-as"));
    const scion::IsdAsn c1 = topo.as_by_name("core-1");
    for (const auto& hop : paths.front().hops()) {
      if (hop.isd_as != c1) continue;
      auto& network = topo.network();
      for (net::NodeId node = 0; node < network.node_count(); ++node) {
        if (network.node_name(node) == "br-core-1") {
          network.set_link_up(node, scion::BorderRouter::to_net_if(hop.egress), false);
        }
      }
    }
  }
  world->sim().run_until_condition([&] { return done; }, world->sim().now() + seconds(120));
  run.reroutes = proxy.stats().scmp_reroutes;
  if (!done) run.completion_ms = -1;
  return run;
}

}  // namespace

int main() {
  std::printf("Ablation — failover: 400 kB download, path dies at t=150 ms\n\n");
  std::printf("%-44s %14s %8s %9s\n", "configuration", "completion ms", "scion", "reroutes");

  const Run baseline = run_once(/*kill_link=*/false, milliseconds(250));
  std::printf("%-44s %14.1f %8s %9llu\n", "no failure (baseline)", baseline.completion_ms,
              baseline.over_scion ? "yes" : "no",
              static_cast<unsigned long long>(baseline.reroutes));

  const Run fast = run_once(/*kill_link=*/true, milliseconds(250));
  std::printf("%-44s %14.1f %8s %9llu\n", "failure + keep-alive probes (SCMP failover)",
              fast.completion_ms, fast.over_scion ? "yes" : "no",
              static_cast<unsigned long long>(fast.reroutes));

  const Run silent = run_once(/*kill_link=*/true, Duration::zero());
  std::printf("%-44s %14.1f %8s %9llu\n", "failure, no probes (silent receiver)",
              silent.completion_ms < 0 ? -1.0 : silent.completion_ms,
              silent.over_scion ? "yes" : "no",
              static_cast<unsigned long long>(silent.reroutes));

  std::printf(
      "\nWith probes the client detects the dead path within one keep-alive interval,\n"
      "the SCMP report revokes the interface, and the live QUIC connection migrates.\n"
      "Without probes the receive-only client is silent: no packets, no SCMP, no\n"
      "migration — recovery waits for coarse timeouts (or never happens).\n");
  return 0;
}
