// Reproduces Figure 6: Page Load Time for an AS-local page (same ISD, a
// nearby leaf AS) over SCION vs IPv4/6, single- and multi-origin.
//
// Expected shape (paper): with similar paths the extension + proxy add only
// a small overhead compared to the baseline.
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace pan;

namespace {
constexpr int kTrials = 30;
constexpr int kResources = 6;
constexpr std::size_t kResourceBytes = 30'000;
}  // namespace

int main() {
  browser::WorldConfig config;
  config.seed = 6;
  config.link_jitter = 0.08;
  auto world = browser::make_remote_world(config);
  auto& www = *world->site("www.near.example");
  auto& far = *world->site("www.far.example");

  {
    std::vector<std::string> urls;
    for (int i = 0; i < kResources; ++i) {
      const std::string path = "/s" + std::to_string(i) + ".bin";
      www.add_blob(path, kResourceBytes);
      urls.push_back(path);
    }
    www.add_text("/single", browser::render_document(urls));
  }
  {
    // Multi-origin near page: half the resources come from the distant CDN,
    // mirroring the paper's "one or multiple origins" variation.
    std::vector<std::string> urls;
    for (int i = 0; i < kResources; ++i) {
      const std::string path = "/m" + std::to_string(i) + ".bin";
      if (i % 2 == 0) {
        www.add_blob(path, kResourceBytes);
        urls.push_back(path);
      } else {
        far.add_blob(path, kResourceBytes);
        urls.push_back("http://www.far.example" + path);
      }
    }
    www.add_text("/multi", browser::render_document(urls));
  }

  std::vector<bench::Series> series;
  series.push_back({"single origin, SCION", bench::run_trials(kTrials, [&] {
                      browser::ClientSession session(*world);
                      return session.load("http://www.near.example/single").plt.millis();
                    })});
  series.push_back({"single origin, IPv4/6", bench::run_trials(kTrials, [&] {
                      browser::DirectSession session(*world);
                      return session.load("http://www.near.example/single").plt.millis();
                    })});
  series.push_back({"multiple origins, SCION", bench::run_trials(kTrials, [&] {
                      browser::ClientSession session(*world);
                      return session.load("http://www.near.example/multi").plt.millis();
                    })});
  series.push_back({"multiple origins, IPv4/6", bench::run_trials(kTrials, [&] {
                      browser::DirectSession session(*world);
                      return session.load("http://www.near.example/multi").plt.millis();
                    })});

  bench::print_box_table(
      "Figure 6 — Page Load Time (ms), AS-local page over SCION vs IPv4/6 (" +
          std::to_string(kTrials) + " trials)",
      series);

  std::printf("\nPaper's qualitative result: when the SCION and BGP paths are equivalent, the\n"
              "extension + proxy add only a small overhead over the plain-IP baseline.\n");
  return 0;
}
