// Ablation 1 (DESIGN.md): proxy indirection vs. tight browser integration.
//
// The paper attributes its ~100 ms local overhead to the extension + HTTP
// proxy hop and predicts that "with tighter SCION integration in the browser
// ... the overhead [will] disappear". We sweep the browser<->proxy IPC cost
// from zero (native in-browser SCION stack) upward and compare against the
// extension-disabled baseline.
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace pan;

namespace {
constexpr int kTrials = 20;
constexpr int kResources = 8;
}  // namespace

int main() {
  browser::WorldConfig config;
  config.seed = 11;
  config.link_jitter = 0.1;
  auto world = browser::make_local_world(config);
  auto& scion_fs = *world->site("scion-fs.local");
  auto& tcpip_fs = *world->site("tcpip-fs.local");
  std::vector<std::string> urls;
  for (int i = 0; i < kResources; ++i) {
    const std::string path = "/r" + std::to_string(i) + ".bin";
    scion_fs.add_blob(path, 25'000);
    tcpip_fs.add_blob(path, 25'000);
    urls.push_back(path);
  }
  scion_fs.add_text("/", browser::render_document(urls));
  tcpip_fs.add_text("/", browser::render_document(urls));

  std::vector<bench::Series> series;
  for (const auto& [label, ipc_us] :
       std::vector<std::pair<std::string, std::int64_t>>{{"native integration (0 us)", 0},
                                                         {"lean proxy (100 us)", 100},
                                                         {"prototype proxy (400 us)", 400},
                                                         {"heavy proxy (1000 us)", 1000},
                                                         {"pathological (5000 us)", 5000}}) {
    proxy::ProxyConfig proxy_config;
    proxy_config.ipc_overhead = microseconds(ipc_us);
    if (ipc_us == 0) proxy_config.processing_overhead = Duration::zero();
    series.push_back({label, bench::run_trials(kTrials, [&] {
                        browser::ClientSession session(*world, proxy_config);
                        return session.load("http://scion-fs.local/").plt.millis();
                      })});
  }
  series.push_back({"BGP/IP-only baseline", bench::run_trials(kTrials, [&] {
                      browser::DirectSession session(*world);
                      return session.load("http://tcpip-fs.local/").plt.millis();
                    })});

  bench::print_box_table(
      "Ablation — proxy indirection cost vs tight integration (local SCION page, ms)",
      series);
  std::printf("\nAt zero IPC cost the SCION load matches the baseline: the paper's predicted\n"
              "disappearance of the proxying overhead under native browser integration.\n");
  return 0;
}
