// Ablation 2 (DESIGN.md): transport handshake cost — QUIC-lite's 1-RTT setup
// vs TCP-lite and TCP-lite + an extra TLS-style round trip, measured as
// time-to-first-response for a small object over the same 30 ms SCION path
// (and the legacy path for TCP variants).
#include "bench_util.hpp"
#include "core/scenarios.hpp"
#include "http/endpoints.hpp"

using namespace pan;

namespace {
constexpr int kTrials = 20;

double fetch_once_scion(browser::World& world, const transport::TransportConfig& config) {
  auto& topo = world.topology();
  const auto server = topo.host_by_name("far-rp1");  // reverse proxy endpoint
  const auto paths = topo.daemon_for(world.client).query_now(topo.as_of(server));
  http::ScionHttpConnection conn(topo.scion_stack(world.client),
                                 scion::ScionEndpoint{topo.scion_addr(server), 80},
                                 paths.front().dataplane(), config);
  http::HttpRequest req;
  req.target = "/tiny.bin";
  req.headers.set("Host", "www.far.example");
  const TimePoint t0 = world.sim().now();
  double elapsed_ms = -1;
  conn.fetch(req, [&](Result<http::HttpResponse> r) {
    if (r.ok() && r.value().ok()) elapsed_ms = (world.sim().now() - t0).millis();
  });
  world.sim().run_until_condition([&] { return elapsed_ms >= 0; },
                                  world.sim().now() + seconds(30));
  return elapsed_ms;
}

double fetch_once_legacy(browser::World& world, const transport::TransportConfig& config) {
  auto& topo = world.topology();
  const auto server = topo.host_by_name("far-www");
  http::LegacyHttpConnection conn(topo.host(world.client),
                                  net::Endpoint{topo.ip(server), 80}, config);
  http::HttpRequest req;
  req.target = "/tiny.bin";
  req.headers.set("Host", "www.far.example");
  const TimePoint t0 = world.sim().now();
  double elapsed_ms = -1;
  conn.fetch(req, [&](Result<http::HttpResponse> r) {
    if (r.ok() && r.value().ok()) elapsed_ms = (world.sim().now() - t0).millis();
  });
  world.sim().run_until_condition([&] { return elapsed_ms >= 0; },
                                  world.sim().now() + seconds(30));
  return elapsed_ms;
}

}  // namespace

int main() {
  browser::WorldConfig config;
  config.seed = 12;
  config.link_jitter = 0.05;
  auto world = browser::make_remote_world(config);
  world->site("www.far.example")->add_blob("/tiny.bin", 2'000);

  std::vector<bench::Series> series;
  series.push_back({"QUIC-lite / SCION (1 RTT)", bench::run_trials(kTrials, [&] {
                      return fetch_once_scion(*world, http::default_quic_config());
                    })});
  {
    transport::TransportConfig tls_like = http::default_quic_config();
    tls_like.extra_handshake_rtts = 1;
    series.push_back({"QUIC-lite+1RTT / SCION", bench::run_trials(kTrials, [&] {
                        return fetch_once_scion(*world, tls_like);
                      })});
  }
  series.push_back({"TCP-lite / BGP-IP (1 RTT)", bench::run_trials(kTrials, [&] {
                      return fetch_once_legacy(*world, http::default_tcp_config());
                    })});
  {
    transport::TransportConfig tls_like = http::default_tcp_config();
    tls_like.extra_handshake_rtts = 1;  // TLS 1.3 over TCP
    series.push_back({"TCP-lite+TLS / BGP-IP", bench::run_trials(kTrials, [&] {
                        return fetch_once_legacy(*world, tls_like);
                      })});
  }

  bench::print_box_table(
      "Ablation — handshake RTTs: time to first response, 2 kB object (ms)", series);
  std::printf("\nEach extra handshake round trip adds one path RTT (~60 ms SCION, ~168 ms BGP\n"
              "here) before the request can leave — QUIC's 1-RTT setup is the win the paper\n"
              "builds on by carrying all SCION web traffic over QUIC.\n");
  return 0;
}
