// Reproduces Figure 5: Page Load Time for pages hosted in a *distant*
// location (different ISD), single-origin vs multi-origin, loaded over
// SCION (extension + SKIP proxy + reverse proxies) vs plain IPv4/6.
//
// Expected shape (paper): for the single-origin page SCION improves PLT
// significantly — path awareness picks a lower-latency path than the BGP
// route. Multi-origin dilutes but preserves the win.
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace pan;

namespace {
constexpr int kTrials = 30;
constexpr int kResources = 6;
constexpr std::size_t kResourceBytes = 30'000;
}  // namespace

int main() {
  browser::WorldConfig config;
  config.seed = 5;
  config.link_jitter = 0.08;
  // Cross-hop tracing: the SKIP proxy and the far ISD's reverse proxies feed
  // one collector, so each trial's trace spans both hops under one trace id.
  obs::TraceCollector collector;
  config.reverse_proxy.collector = &collector;
  auto world = browser::make_remote_world(config);
  auto& www = *world->site("www.far.example");
  auto& cdn = *world->site("static.far.example");

  // Single-origin page: everything on www.far.example.
  {
    std::vector<std::string> urls;
    for (int i = 0; i < kResources; ++i) {
      const std::string path = "/s" + std::to_string(i) + ".bin";
      www.add_blob(path, kResourceBytes);
      urls.push_back(path);
    }
    www.add_text("/single", browser::render_document(urls));
  }
  // Multi-origin page: resources split between www and the static host.
  {
    std::vector<std::string> urls;
    for (int i = 0; i < kResources; ++i) {
      const std::string path = "/m" + std::to_string(i) + ".bin";
      if (i % 2 == 0) {
        www.add_blob(path, kResourceBytes);
        urls.push_back(path);
      } else {
        cdn.add_blob(path, kResourceBytes);
        urls.push_back("http://static.far.example" + path);
      }
    }
    www.add_text("/multi", browser::render_document(urls));
  }

  // Shared registry: per-phase spans from every proxied trial land in
  // proxy.phase.* histograms for the breakdown table below.
  obs::MetricsRegistry registry;
  proxy::ProxyConfig proxy_config;
  proxy_config.metrics = &registry;
  proxy_config.collector = &collector;

  std::vector<bench::Series> series;
  series.push_back({"single origin, SCION", bench::run_trials(kTrials, [&] {
                      browser::ClientSession session(*world, proxy_config);
                      return session.load("http://www.far.example/single").plt.millis();
                    })});
  series.push_back({"single origin, IPv4/6", bench::run_trials(kTrials, [&] {
                      browser::DirectSession session(*world);
                      return session.load("http://www.far.example/single").plt.millis();
                    })});
  series.push_back({"multiple origins, SCION", bench::run_trials(kTrials, [&] {
                      browser::ClientSession session(*world, proxy_config);
                      return session.load("http://www.far.example/multi").plt.millis();
                    })});
  series.push_back({"multiple origins, IPv4/6", bench::run_trials(kTrials, [&] {
                      browser::DirectSession session(*world);
                      return session.load("http://www.far.example/multi").plt.millis();
                    })});

  bench::print_box_table(
      "Figure 5 — Page Load Time (ms), remote pages over SCION vs IPv4/6 (" +
          std::to_string(kTrials) + " trials)",
      series);

  bench::print_phase_table(
      "Per-request phase latency, SCION trials (from the proxy's metrics registry;\n"
      "fetch dominates here — the distant origin's RTT — while ipc stays constant)",
      registry);

  std::printf("\nPaper's qualitative result: the distant page loads significantly faster over\n"
              "SCION because path awareness picks the low-latency route (here ~30 ms one-way)\n"
              "instead of the BGP route (~84 ms one-way).\n");
  bench::dump_chrome_trace(collector, "fig5-remote-plt");
  return 0;
}
