// Ablation 9: QoS via Colibri-lite reservations (Table 1's quality row,
// paper cites Colibri).
//
// A constant-bit-rate flow (a voice/video channel) crosses a 20 Mbps core
// link while a best-effort flood of varying intensity shares it. We compare
// the flow's delivery rate and added queueing delay with and without a
// bandwidth reservation.
#include <cstdio>

#include "bench_util.hpp"
#include "core/scenarios.hpp"
#include "scion/colibri.hpp"

using namespace pan;
using namespace pan::scion;

namespace {

struct FlowResult {
  double delivery_rate = 0;  // fraction of probes delivered
  double mean_extra_delay_ms = 0;
};

FlowResult run_flow(double flood_mbps, bool reserved) {
  browser::WorldConfig config;
  config.seed = 23;
  config.link_jitter = 0;
  config.core_bandwidth_bps = 20e6;
  auto world = browser::make_remote_world(config);
  auto& topo = world->topology();
  auto& sim = world->sim();
  const auto server = topo.host_by_name("far-www");
  const auto paths = topo.daemon_for(world->client).query_now(topo.as_by_name("server-as"));
  const Path& best = paths.front();

  ReservationId reservation = 0;
  if (reserved) {
    const auto id = topo.reservations().reserve(best, 6e6, sim.now(), seconds(300));
    if (!id.ok()) {
      std::printf("reservation failed: %s\n", id.error().c_str());
      return {};
    }
    reservation = id.value();
  }

  int received = 0;
  double delay_sum_ms = 0;
  const double base_delay_ms = best.meta().latency.millis();
  auto probe_sink = topo.scion_stack(server).bind(
      9001, [&](const ScionEndpoint&, const DataplanePath&, net::PacketView payload) {
        // The payload carries the send time.
        ByteReader r(payload.span());
        const TimePoint sent{static_cast<std::int64_t>(r.u64())};
        delay_sum_ms += (sim.now() - sent).millis() - base_delay_ms;
        ++received;
      });
  auto flood_sink = topo.scion_stack(server).bind(
      9003, [](const ScionEndpoint&, const DataplanePath&, net::PacketView) {});
  auto client = topo.scion_stack(world->client).bind(0, nullptr);

  // 1000-byte CBR probe every 2 ms (~5 Mbps on the wire) for one second,
  // interleaved with the flood.
  constexpr int kProbes = 500;
  const int flood_per_tick =
      static_cast<int>(flood_mbps * 1e6 * 0.002 / 8.0 / 1050.0 + 0.5);
  for (int i = 0; i < kProbes; ++i) {
    sim.schedule_after(milliseconds(2 * i), [&, i] {
      for (int f = 0; f <= flood_per_tick; ++f) {
        if (f == flood_per_tick / 2 || flood_per_tick == 0) {
          ByteWriter w;
          w.u64(static_cast<std::uint64_t>(sim.now().nanos()));
          Bytes payload = std::move(w).take();
          payload.resize(1000);
          client->send_to(ScionEndpoint{topo.scion_addr(server), 9001}, best.dataplane(),
                          std::move(payload), reservation);
          if (flood_per_tick == 0) break;
        }
        if (flood_per_tick > 0) {
          client->send_to(ScionEndpoint{topo.scion_addr(server), 9003}, best.dataplane(),
                          Bytes(1000, 0x03));
        }
      }
      (void)i;
    });
  }
  sim.run();
  FlowResult out;
  out.delivery_rate = static_cast<double>(received) / kProbes;
  out.mean_extra_delay_ms = received > 0 ? delay_sum_ms / received : -1;
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation — QoS: 5 Mbps CBR flow over a 20 Mbps core link under best-effort\n"
              "flood (Colibri-lite reservation vs plain best effort)\n\n");
  std::printf("%12s | %-28s | %-28s\n", "flood Mbps", "best effort", "with 6 Mbps reservation");
  std::printf("%12s | %13s %14s | %13s %14s\n", "", "delivered", "extra delay", "delivered",
              "extra delay");
  for (const double flood : {0.0, 10.0, 30.0, 100.0}) {
    const FlowResult be = run_flow(flood, /*reserved=*/false);
    const FlowResult rsv = run_flow(flood, /*reserved=*/true);
    std::printf("%12.0f | %12.1f%% %11.2f ms | %12.1f%% %11.2f ms\n", flood,
                be.delivery_rate * 100, be.mean_extra_delay_ms, rsv.delivery_rate * 100,
                rsv.mean_extra_delay_ms);
  }
  std::printf("\nAdmission control plus per-AS policing keeps the reserved flow at 100%%\n"
              "delivery regardless of the flood; the unreserved flow starves once the\n"
              "offered load exceeds the link (queue tail drops). Extra delay for reserved\n"
              "traffic stays bounded by the best-effort queue cap it is allowed to bypass.\n");
  return 0;
}
