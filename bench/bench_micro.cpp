// Micro-benchmarks (google-benchmark) for the hot paths: crypto primitives,
// hop-field MACs, segment verification, SCION header codec, PPL parsing and
// evaluation, sequence matching, and legacy route computation.
#include <benchmark/benchmark.h>

#include "core/layer_model.hpp"
#include "crypto/signature.hpp"
#include "net/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "ppl/parser.hpp"
#include "scion/border_router.hpp"
#include "scion/header.hpp"
#include "scion/segment.hpp"
#include "support/alloc_probe.hpp"
#include "util/stats.hpp"

using namespace pan;

namespace {

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HopFieldMac(benchmark::State& state) {
  const scion::ForwardingKey key(16, 0x42);
  scion::HopField hf;
  hf.isd_as = scion::IsdAsn{1, 0x110};
  hf.in_if = 3;
  hf.out_if = 7;
  hf.expiry_s = 3600;
  for (auto _ : state) {
    scion::seal_hop_field(hf, 1000, key);
    benchmark::DoNotOptimize(hf.mac);
  }
}
BENCHMARK(BM_HopFieldMac);

void BM_HopFieldMacPrecomputed(benchmark::State& state) {
  const scion::ForwardingKey key(16, 0x42);
  const crypto::HmacKey mac_key(key);
  scion::HopField hf;
  hf.isd_as = scion::IsdAsn{1, 0x110};
  hf.in_if = 3;
  hf.out_if = 7;
  hf.expiry_s = 3600;
  for (auto _ : state) {
    scion::seal_hop_field(hf, 1000, mac_key);
    benchmark::DoNotOptimize(hf.mac);
  }
}
BENCHMARK(BM_HopFieldMacPrecomputed);

void BM_LamportSign(benchmark::State& state) {
  Rng rng(1);
  const auto kp = crypto::generate_keypair(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sign(kp.private_key, "beacon entry"));
  }
}
BENCHMARK(BM_LamportSign);

void BM_LamportVerify(benchmark::State& state) {
  Rng rng(1);
  const auto kp = crypto::generate_keypair(rng);
  const auto sig = crypto::sign(kp.private_key, "beacon entry");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(kp.public_key, "beacon entry", sig));
  }
}
BENCHMARK(BM_LamportVerify);

scion::DataplanePath make_path(std::size_t hops) {
  scion::DataplaneSegment seg;
  seg.origin_ts = 1000;
  for (std::size_t i = 0; i < hops; ++i) {
    scion::HopField hf;
    hf.isd_as = scion::IsdAsn{1, 0x100 + i};
    hf.in_if = static_cast<scion::IfaceId>(i);
    hf.out_if = static_cast<scion::IfaceId>(i + 1);
    seg.hops.push_back(hf);
  }
  scion::DataplanePath path;
  path.segments.push_back(std::move(seg));
  return path;
}

void BM_ScionHeaderSerialize(benchmark::State& state) {
  scion::ScionHeader header;
  header.path = make_path(static_cast<std::size_t>(state.range(0)));
  const Bytes payload(1200, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scion::serialize_scion_packet(header, payload));
  }
}
BENCHMARK(BM_ScionHeaderSerialize)->Arg(3)->Arg(8);

void BM_ScionHeaderParse(benchmark::State& state) {
  scion::ScionHeader header;
  header.path = make_path(static_cast<std::size_t>(state.range(0)));
  const Bytes wire = scion::serialize_scion_packet(header, Bytes(1200, 0x11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scion::parse_scion_packet(wire));
  }
}
BENCHMARK(BM_ScionHeaderParse)->Arg(3)->Arg(8);

void BM_ScionHeaderViewParse(benchmark::State& state) {
  scion::ScionHeader header;
  header.path = make_path(static_cast<std::size_t>(state.range(0)));
  const Bytes wire = scion::serialize_scion_packet(header, Bytes(1200, 0x11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scion::ScionHeaderView::parse(wire));
  }
}
BENCHMARK(BM_ScionHeaderViewParse)->Arg(3)->Arg(8);

/// A MAC-sealed transit packet: `hops`-hop single segment, cursor on the
/// middle AS, 1200-byte payload — the steady-state border-router workload.
struct ForwardFixture {
  scion::ForwardingKey key = scion::ForwardingKey(16, 0x42);
  scion::IsdAsn local;
  Bytes wire;

  explicit ForwardFixture(std::size_t hops) {
    constexpr std::uint32_t kTs = 1'000'000;
    scion::ScionHeader header;
    scion::DataplaneSegment seg;
    seg.origin_ts = kTs;
    for (std::size_t i = 0; i < hops; ++i) {
      scion::HopField hf;
      hf.isd_as = scion::IsdAsn{1, static_cast<scion::Asn>(0x100 + i)};
      hf.in_if = i == 0 ? scion::kNoIface : static_cast<scion::IfaceId>(i);
      hf.out_if = i + 1 == hops ? scion::kNoIface : static_cast<scion::IfaceId>(i + 1);
      hf.expiry_s = 24 * 3600;
      scion::seal_hop_field(hf, kTs, key);
      seg.hops.push_back(hf);
    }
    header.src = scion::ScionAddr{seg.hops.front().isd_as, net::IpAddr{1}};
    header.dst = scion::ScionAddr{seg.hops.back().isd_as, net::IpAddr{2}};
    header.path.segments.push_back(std::move(seg));
    header.cur_seg = 0;
    header.cur_hop = static_cast<std::uint8_t>(hops / 2);
    local = header.path.segments[0].hops[hops / 2].isd_as;
    wire = scion::serialize_scion_packet(header, Bytes(1200, 0x11));
  }
};

/// Per-hop forwarding work of the legacy pipeline: full eager reparse of
/// every segment and hop field, then hop check and in-place cursor patch.
void BM_ForwardHopLegacy(benchmark::State& state) {
  ForwardFixture fx(static_cast<std::size_t>(state.range(0)));
  scion::BorderRouterConfig config;
  Bytes packet = fx.wire;
  const std::uint64_t allocs_before = testsupport::allocation_count();
  for (auto _ : state) {
    const auto parsed = scion::parse_scion_packet(packet);
    const scion::ScionHeader& header = parsed.value().header;
    const scion::DataplaneSegment& seg = header.path.segments[header.cur_seg];
    const scion::HopField& hf = seg.hop_at(header.cur_hop);
    bool ok = hf.isd_as == fx.local && scion::verify_hop_field(hf, seg.origin_ts, fx.key);
    benchmark::DoNotOptimize(ok);
    scion::patch_cursor(packet, header.cur_seg, header.cur_hop);  // cursor stays put
  }
  const std::uint64_t allocs = testsupport::allocation_count() - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_forward"] =
      benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ForwardHopLegacy)->Arg(3)->Arg(8);

/// Per-hop forwarding work of the zero-copy pipeline: decide_hop over the
/// lazy view (decodes exactly one hop field) and in-place cursor patch.
void BM_ForwardHopZeroCopy(benchmark::State& state) {
  ForwardFixture fx(static_cast<std::size_t>(state.range(0)));
  scion::BorderRouterConfig config;
  const crypto::HmacKey mac_key(fx.key);  // router steady state: precomputed once
  net::PacketView packet{Bytes(fx.wire)};
  (void)packet.mutable_span();  // unique storage: patch_cursor patches in place
  const std::uint8_t cur_seg = 0;
  const std::uint8_t cur_hop = static_cast<std::uint8_t>(state.range(0) / 2);
  const std::uint64_t allocs_before = testsupport::allocation_count();
  for (auto _ : state) {
    const scion::HopDecision d = scion::decide_hop(packet.span(), fx.local, mac_key, config);
    benchmark::DoNotOptimize(d);
    scion::patch_cursor(packet, cur_seg, cur_hop);  // cursor stays put
  }
  const std::uint64_t allocs = testsupport::allocation_count() - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_forward"] =
      benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ForwardHopZeroCopy)->Arg(3)->Arg(8);

// ------------------------------------------------------------- telemetry --

/// Histogram record on the steady-state path: instrument already registered,
/// reference cached. The log-linear bucket search plus extremes update.
void BM_HistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("bench.latency");
  Duration value = milliseconds(3);
  const std::uint64_t allocs_before = testsupport::allocation_count();
  for (auto _ : state) {
    hist.record(value);
    value = Duration{(value.nanos() * 16'807) % 1'000'000'000};  // vary buckets
    benchmark::DoNotOptimize(value);
  }
  const std::uint64_t allocs = testsupport::allocation_count() - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_record"] =
      benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

/// Tagged record: the bucket work plus the exemplar-slot offer (bounded
/// array scan, no allocation).
void BM_HistogramRecordExemplar(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("bench.latency");
  Duration value = milliseconds(3);
  std::uint64_t trace_id = 1;
  const std::uint64_t allocs_before = testsupport::allocation_count();
  for (auto _ : state) {
    hist.record(value, trace_id++, TimePoint{} + value);
    value = Duration{(value.nanos() * 16'807) % 1'000'000'000};
    benchmark::DoNotOptimize(value);
  }
  const std::uint64_t allocs = testsupport::allocation_count() - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_record"] =
      benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_HistogramRecordExemplar);

/// Fleet-merge cost: one count-wise bucket sum of two fully populated
/// default-layout histograms (what a /skip/fleet/metrics scrape does once
/// per replica per histogram name).
void BM_HistogramMerge(benchmark::State& state) {
  Rng rng(7);
  obs::Histogram source;
  for (int i = 0; i < 10'000; ++i) {
    source.record(microseconds(rng.next_in(10, 10'000'000)),
                  static_cast<std::uint64_t>(i + 1), TimePoint{});
  }
  obs::Histogram target;
  for (auto _ : state) {
    const bool ok = target.merge(source);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramMerge);

/// The instrumented border-router hop: decide_hop plus the per-router
/// forward-latency record. The telemetry must keep the hop path at zero
/// allocations — this is the counter --bench-smoke asserts on.
void BM_ForwardHopZeroCopyInstrumented(benchmark::State& state) {
  ForwardFixture fx(static_cast<std::size_t>(state.range(0)));
  obs::MetricsRegistry registry;
  scion::BorderRouterConfig config;
  config.forward_latency = &registry.histogram("router.bench.forward_latency");
  const crypto::HmacKey mac_key(fx.key);
  net::PacketView packet{Bytes(fx.wire)};
  (void)packet.mutable_span();
  const std::uint8_t cur_seg = 0;
  const std::uint8_t cur_hop = static_cast<std::uint8_t>(state.range(0) / 2);
  Duration hop_latency = microseconds(180);
  const std::uint64_t allocs_before = testsupport::allocation_count();
  for (auto _ : state) {
    const scion::HopDecision d = scion::decide_hop(packet.span(), fx.local, mac_key, config);
    benchmark::DoNotOptimize(d);
    scion::patch_cursor(packet, cur_seg, cur_hop);
    config.forward_latency->record(hop_latency);
    hop_latency = Duration{(hop_latency.nanos() * 16'807) % 50'000'000};
  }
  const std::uint64_t allocs = testsupport::allocation_count() - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_forward"] =
      benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ForwardHopZeroCopyInstrumented)->Arg(3)->Arg(8);

/// Time-series capture: one interval tick over a registry with range(0)
/// counters (the per-tick cost the lazy observe() pays per crossed boundary).
void BM_TimeSeriesTick(benchmark::State& state) {
  obs::MetricsRegistry registry;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<obs::Counter*> counters;
  counters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    counters.push_back(&registry.counter("bench.c" + std::to_string(i)));
  }
  obs::TimeSeriesConfig config;
  config.interval = milliseconds(100);
  obs::TimeSeriesStore store(registry, config, TimePoint{});
  TimePoint now;
  for (auto _ : state) {
    for (obs::Counter* c : counters) c->inc();
    now = now + milliseconds(100);
    store.observe(now);  // exactly one tick per iteration
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeSeriesTick)->Arg(16)->Arg(128);

void BM_LamportVerifyMemoized(benchmark::State& state) {
  Rng rng(1);
  const auto kp = crypto::generate_keypair(rng);
  const auto sig = crypto::sign(kp.private_key, "beacon entry");
  crypto::PreimageCache cache;
  const std::string_view msg = "beacon entry";
  const auto span = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  (void)crypto::verify(kp.public_key, span, sig, &cache);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(kp.public_key, span, sig, &cache));
  }
}
BENCHMARK(BM_LamportVerifyMemoized);

void BM_PplParse(benchmark::State& state) {
  static constexpr std::string_view kPolicy = R"(
    policy "bench" {
      acl { deny 3-*; deny 4-ff00:0:9; allow *; }
      sequence "1-* * 2-*";
      require mtu >= 1400;
      require latency <= 80ms;
      order latency asc, co2 asc;
    }
  )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppl::parse_policy(kPolicy));
  }
}
BENCHMARK(BM_PplParse);

void BM_PplApply(benchmark::State& state) {
  Rng rng(7);
  const auto paths =
      browser::sample_candidate_paths(rng, static_cast<std::size_t>(state.range(0)));
  const auto policy = ppl::parse_policy(
      "policy { acl { deny 3-*; allow *; } require mtu >= 1280; order latency asc; }");
  for (auto _ : state) {
    auto copy = paths;
    benchmark::DoNotOptimize(policy.value().apply(std::move(copy)));
  }
}
BENCHMARK(BM_PplApply)->Arg(10)->Arg(100);

void BM_SequenceMatch(benchmark::State& state) {
  Rng rng(9);
  const auto paths = browser::sample_candidate_paths(rng, 50);
  const auto seq = ppl::Sequence::parse("1-* * 2-* 3-*?");
  for (auto _ : state) {
    std::size_t matched = 0;
    for (const auto& p : paths) {
      matched += seq.value().matches(p) ? 1 : 0;
    }
    benchmark::DoNotOptimize(matched);
  }
}
BENCHMARK(BM_SequenceMatch);

void BM_Dijkstra(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  net::Adjacency adj(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (int e = 0; e < 4; ++e) {
      const auto j = static_cast<std::uint32_t>(rng.next_below(n));
      if (j != i) adj[i].push_back(net::GraphEdge{j, 1 + rng.next_double() * 9, static_cast<std::uint32_t>(e)});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::dijkstra(adj, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(64)->Arg(512);

void BM_BoxStats(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.next_normal(100, 15));
  for (auto _ : state) {
    auto copy = samples;
    benchmark::DoNotOptimize(box_stats(std::move(copy)));
  }
}
BENCHMARK(BM_BoxStats);

}  // namespace

BENCHMARK_MAIN();
