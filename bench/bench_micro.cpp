// Micro-benchmarks (google-benchmark) for the hot paths: crypto primitives,
// hop-field MACs, segment verification, SCION header codec, PPL parsing and
// evaluation, sequence matching, and legacy route computation.
#include <benchmark/benchmark.h>

#include "core/layer_model.hpp"
#include "crypto/signature.hpp"
#include "net/graph.hpp"
#include "ppl/parser.hpp"
#include "scion/header.hpp"
#include "scion/segment.hpp"
#include "util/stats.hpp"

using namespace pan;

namespace {

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HopFieldMac(benchmark::State& state) {
  const scion::ForwardingKey key(16, 0x42);
  scion::HopField hf;
  hf.isd_as = scion::IsdAsn{1, 0x110};
  hf.in_if = 3;
  hf.out_if = 7;
  hf.expiry_s = 3600;
  for (auto _ : state) {
    scion::seal_hop_field(hf, 1000, key);
    benchmark::DoNotOptimize(hf.mac);
  }
}
BENCHMARK(BM_HopFieldMac);

void BM_LamportSign(benchmark::State& state) {
  Rng rng(1);
  const auto kp = crypto::generate_keypair(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sign(kp.private_key, "beacon entry"));
  }
}
BENCHMARK(BM_LamportSign);

void BM_LamportVerify(benchmark::State& state) {
  Rng rng(1);
  const auto kp = crypto::generate_keypair(rng);
  const auto sig = crypto::sign(kp.private_key, "beacon entry");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(kp.public_key, "beacon entry", sig));
  }
}
BENCHMARK(BM_LamportVerify);

scion::DataplanePath make_path(std::size_t hops) {
  scion::DataplaneSegment seg;
  seg.origin_ts = 1000;
  for (std::size_t i = 0; i < hops; ++i) {
    scion::HopField hf;
    hf.isd_as = scion::IsdAsn{1, 0x100 + i};
    hf.in_if = static_cast<scion::IfaceId>(i);
    hf.out_if = static_cast<scion::IfaceId>(i + 1);
    seg.hops.push_back(hf);
  }
  scion::DataplanePath path;
  path.segments.push_back(std::move(seg));
  return path;
}

void BM_ScionHeaderSerialize(benchmark::State& state) {
  scion::ScionHeader header;
  header.path = make_path(static_cast<std::size_t>(state.range(0)));
  const Bytes payload(1200, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scion::serialize_scion_packet(header, payload));
  }
}
BENCHMARK(BM_ScionHeaderSerialize)->Arg(3)->Arg(8);

void BM_ScionHeaderParse(benchmark::State& state) {
  scion::ScionHeader header;
  header.path = make_path(static_cast<std::size_t>(state.range(0)));
  const Bytes wire = scion::serialize_scion_packet(header, Bytes(1200, 0x11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scion::parse_scion_packet(wire));
  }
}
BENCHMARK(BM_ScionHeaderParse)->Arg(3)->Arg(8);

void BM_PplParse(benchmark::State& state) {
  static constexpr std::string_view kPolicy = R"(
    policy "bench" {
      acl { deny 3-*; deny 4-ff00:0:9; allow *; }
      sequence "1-* * 2-*";
      require mtu >= 1400;
      require latency <= 80ms;
      order latency asc, co2 asc;
    }
  )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppl::parse_policy(kPolicy));
  }
}
BENCHMARK(BM_PplParse);

void BM_PplApply(benchmark::State& state) {
  Rng rng(7);
  const auto paths =
      browser::sample_candidate_paths(rng, static_cast<std::size_t>(state.range(0)));
  const auto policy = ppl::parse_policy(
      "policy { acl { deny 3-*; allow *; } require mtu >= 1280; order latency asc; }");
  for (auto _ : state) {
    auto copy = paths;
    benchmark::DoNotOptimize(policy.value().apply(std::move(copy)));
  }
}
BENCHMARK(BM_PplApply)->Arg(10)->Arg(100);

void BM_SequenceMatch(benchmark::State& state) {
  Rng rng(9);
  const auto paths = browser::sample_candidate_paths(rng, 50);
  const auto seq = ppl::Sequence::parse("1-* * 2-* 3-*?");
  for (auto _ : state) {
    std::size_t matched = 0;
    for (const auto& p : paths) {
      matched += seq.value().matches(p) ? 1 : 0;
    }
    benchmark::DoNotOptimize(matched);
  }
}
BENCHMARK(BM_SequenceMatch);

void BM_Dijkstra(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  net::Adjacency adj(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (int e = 0; e < 4; ++e) {
      const auto j = static_cast<std::uint32_t>(rng.next_below(n));
      if (j != i) adj[i].push_back(net::GraphEdge{j, 1 + rng.next_double() * 9, static_cast<std::uint32_t>(e)});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::dijkstra(adj, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(64)->Arg(512);

void BM_BoxStats(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.next_normal(100, 15));
  for (auto _ : state) {
    auto copy = samples;
    benchmark::DoNotOptimize(box_stats(std::move(copy)));
  }
}
BENCHMARK(BM_BoxStats);

}  // namespace

BENCHMARK_MAIN();
