// Reproduces Figure 3 (and the Figure 2 setup): Page Load Time box plots in
// the local world for the paper's four experiments:
//   - SCION-only:     all resources on the SCION file server
//   - mixed SCION-IP: resources split across the SCION and TCP/IP servers
//   - strict-SCION:   strict mode; only one resource is SCION-reachable,
//                     the rest are blocked (never fetched)
//   - BGP/IP-only:    extension disabled, plain HTTP over TCP/IP
//
// Expected shape (paper): SCION-only and mixed pay an extension+proxy
// overhead (~100 ms there) over BGP/IP-only; strict-SCION is fastest since
// blocked resources cost nothing.
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace pan;

namespace {

constexpr int kTrials = 30;
constexpr int kResources = 8;
constexpr std::size_t kResourceBytes = 25'000;

// The paper's local experiments run on one laptop; we model the localhost
// proxy hop with the default IPC overhead and give links mild jitter so the
// box plots have spread, as in any real measurement.
browser::WorldConfig world_config() {
  browser::WorldConfig config;
  config.seed = 2022;
  config.link_jitter = 0.15;
  config.dns_latency = milliseconds(1);
  return config;
}

}  // namespace

int main() {
  auto world = browser::make_local_world(world_config());
  auto& scion_fs = *world->site("scion-fs.local");
  auto& tcpip_fs = *world->site("tcpip-fs.local");

  // SCION-only page.
  {
    std::vector<std::string> urls;
    for (int i = 0; i < kResources; ++i) {
      const std::string path = "/s" + std::to_string(i) + ".bin";
      scion_fs.add_blob(path, kResourceBytes);
      urls.push_back(path);
    }
    scion_fs.add_text("/scion-only", browser::render_document(urls));
  }
  // Mixed page: one resource on the SCION FS, the rest on the TCP/IP FS —
  // the same split the strict-SCION experiment uses.
  {
    std::vector<std::string> urls;
    scion_fs.add_blob("/m0.bin", kResourceBytes);
    urls.push_back("/m0.bin");
    for (int i = 1; i < kResources; ++i) {
      const std::string path = "/m" + std::to_string(i) + ".bin";
      tcpip_fs.add_blob(path, kResourceBytes);
      urls.push_back("http://tcpip-fs.local" + path);
    }
    scion_fs.add_text("/mixed", browser::render_document(urls));
  }
  // Baseline page on the TCP/IP FS.
  {
    std::vector<std::string> urls;
    for (int i = 0; i < kResources; ++i) {
      const std::string path = "/b" + std::to_string(i) + ".bin";
      tcpip_fs.add_blob(path, kResourceBytes);
      urls.push_back(path);
    }
    tcpip_fs.add_text("/", browser::render_document(urls));
  }

  // One registry shared across all proxied trials: per-request phase spans
  // accumulate into proxy.phase.* histograms for the breakdown table below.
  obs::MetricsRegistry registry;
  proxy::ProxyConfig proxy_config;
  proxy_config.metrics = &registry;
  // Single-hop traces (no reverse proxy in the local world): dumped when
  // PAN_TRACE_DUMP is set, for about:tracing / trace-lint inspection.
  obs::TraceCollector collector;
  proxy_config.collector = &collector;

  std::vector<bench::Series> series;
  series.push_back({"SCION-only", bench::run_trials(kTrials, [&] {
                      browser::ClientSession session(*world, proxy_config);
                      return session.load("http://scion-fs.local/scion-only").plt.millis();
                    })});
  series.push_back({"mixed SCION-IP", bench::run_trials(kTrials, [&] {
                      browser::ClientSession session(*world, proxy_config);
                      return session.load("http://scion-fs.local/mixed").plt.millis();
                    })});
  series.push_back({"strict-SCION", bench::run_trials(kTrials, [&] {
                      browser::ClientSession session(*world, proxy_config);
                      session.extension().set_mode(browser::OperationMode::kStrict);
                      return session.load("http://scion-fs.local/mixed").plt.millis();
                    })});
  series.push_back({"BGP/IP-only", bench::run_trials(kTrials, [&] {
                      browser::DirectSession session(*world);
                      return session.load("http://tcpip-fs.local/").plt.millis();
                    })});

  bench::print_box_table(
      "Figure 3 — Page Load Time (ms), local setup (" + std::to_string(kTrials) +
          " trials, " + std::to_string(kResources) + " x " +
          std::to_string(kResourceBytes / 1000) + " kB resources)",
      series);

  bench::print_phase_table(
      "Per-request phase latency across all proxied trials (from the proxy's\n"
      "metrics registry; the ipc rows are the paper's ~100 ms overhead source)",
      registry);

  std::printf("\nPaper's qualitative result: SCION-only and mixed pay a proxying overhead over\n"
              "BGP/IP-only; strict-SCION is fastest because blocked resources are never fetched.\n");
  bench::dump_chrome_trace(collector, "fig3-local-plt");
  return 0;
}
