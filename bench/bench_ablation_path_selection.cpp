// Ablation 3 (DESIGN.md): path-selection strategy — what each PPL ordering
// costs and buys. One policy per run steers the SKIP proxy; we report the
// page load time plus the latency / CO2 / transit-cost of the path actually
// used (from the proxy's per-path usage statistics).
#include <cstdio>

#include "bench_util.hpp"
#include "core/scenarios.hpp"
#include "ppl/parser.hpp"

using namespace pan;

namespace {
constexpr int kTrials = 15;

struct Strategy {
  std::string label;
  std::string policy_text;  // empty = daemon default (latency-first)
};

}  // namespace

int main() {
  browser::WorldConfig config;
  config.seed = 13;
  config.link_jitter = 0.05;
  auto world = browser::make_remote_world(config);
  auto& www = *world->site("www.far.example");
  std::vector<std::string> urls;
  for (int i = 0; i < 5; ++i) {
    const std::string path = "/r" + std::to_string(i) + ".bin";
    www.add_blob(path, 30'000);
    urls.push_back(path);
  }
  www.add_text("/", browser::render_document(urls));

  const std::vector<Strategy> strategies = {
      {"latency-first (default)", ""},
      {"lowest CO2", "policy { order co2 asc; }"},
      {"lowest transit cost", "policy { order cost asc, latency asc; }"},
      {"fewest hops", "policy { order hops asc, latency asc; }"},
      {"avoid 2-ff00:0:220", "policy { acl { deny 2-ff00:0:220; allow *; } }"},
  };

  std::printf("Ablation — path selection strategies, distant page (%d trials each)\n\n",
              kTrials);
  std::printf("%-26s %10s %12s %10s %10s  %s\n", "strategy", "PLT ms", "latency ms",
              "gCO2/GB", "cost/GB", "path used");

  for (const Strategy& strategy : strategies) {
    std::vector<double> plts;
    std::string path_desc;
    double latency_ms = 0;
    double co2 = 0;
    double cost = 0;
    for (int t = 0; t < kTrials; ++t) {
      browser::ClientSession session(*world);
      if (!strategy.policy_text.empty()) {
        session.extension().set_policies(
            ppl::PolicySet{{ppl::parse_policy(strategy.policy_text).value()}});
      }
      const auto result = session.load("http://www.far.example/");
      if (!result.ok) continue;
      plts.push_back(result.plt.millis());
      // Record the (single) used path's metadata.
      auto& topo = world->topology();
      const auto paths =
          topo.daemon_for(world->client).query_now(topo.as_by_name("server-as"));
      for (const auto& [fp, usage] : session.proxy().selector().usage()) {
        for (const auto& p : paths) {
          if (p.fingerprint() == fp) {
            path_desc = p.to_string();
            latency_ms = p.meta().latency.millis();
            co2 = p.meta().co2_g_per_gb;
            cost = p.meta().cost_per_gb;
          }
        }
      }
    }
    const BoxStats stats = box_stats(plts);
    std::printf("%-26s %10.2f %12.1f %10.1f %10.1f  %s\n", strategy.label.c_str(),
                stats.median, latency_ms, co2, cost, path_desc.c_str());
  }

  std::printf("\nThe orderings trade PLT for the optimized metric: CO2/cost-first picks greener\n"
              "or cheaper but slower routes; ACL exclusion forces the direct 80 ms core link.\n");
  return 0;
}
