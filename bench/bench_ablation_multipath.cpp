// Ablation 6: native inter-domain multipath (paper, Section 1).
//
// Section A — path aggregation. In a bandwidth-bound regime (20 Mbps core
// links) a single SCION path caps throughput; striping HTTP exchanges across
// disjoint paths aggregates it. We download a batch of objects through one
// connection on the best path vs a MultipathScionConnection over the
// disjoint path pair, for each scheduling policy, and report completion time
// plus the per-channel split.
//
// Section B — intent-aware vs intent-blind access scheduling. A multi-access
// client (wired + LTE-class access into different first-hop ASes) loads
// documents (latency-critical) concurrently with bulk objects. Intent-aware
// scheduling pins documents to the fast access and stripes only the bulk;
// the intent-blind ablation stripes everything, putting a share of the
// documents on the slow access. Hard assertion: intent-aware mean document
// latency must beat intent-blind.
//
// Section C — mid-load access failure. The primary access link dies while a
// batch of strict documents is mid-flight. The multi-access proxy must
// finish 100% of them within their deadline on the surviving access with
// zero strict downgrades (hard assertions); the single-access baseline
// demonstrably cannot.
#include <cstdio>

#include "bench_util.hpp"
#include "core/scenarios.hpp"
#include "http/multipath.hpp"
#include "net/multi_access.hpp"
#include "proxy/skip_proxy.hpp"

using namespace pan;

namespace {

constexpr int kObjects = 24;
constexpr std::size_t kObjectBytes = 250'000;

double run_single(browser::World& world) {
  auto& topo = world.topology();
  const auto rp = topo.host_by_name("far-rp1");
  const auto paths = topo.daemon_for(world.client).query_now(topo.as_of(rp));
  http::ScionHttpConnection conn(topo.scion_stack(world.client),
                                 scion::ScionEndpoint{topo.scion_addr(rp), 80},
                                 paths.front().dataplane());
  int done = 0;
  const TimePoint t0 = world.sim().now();
  for (int i = 0; i < kObjects; ++i) {
    http::HttpRequest req;
    req.target = "/obj" + std::to_string(i) + ".bin";
    req.headers.set("Host", "www.far.example");
    conn.fetch(req, [&](Result<http::HttpResponse> r) {
      if (r.ok() && r.value().ok()) ++done;
    });
  }
  world.sim().run_until_condition([&] { return done == kObjects; },
                                  world.sim().now() + seconds(300));
  const double elapsed = (world.sim().now() - t0).millis();
  conn.close();
  world.sim().run_for(seconds(1));
  return done == kObjects ? elapsed : -1;
}

double run_multipath(browser::World& world, http::MultipathConfig::Schedule schedule,
                     std::string* split) {
  auto& topo = world.topology();
  const auto rp = topo.host_by_name("far-rp1");
  auto paths = topo.daemon_for(world.client).query_now(topo.as_of(rp));
  // Keep the two disjoint 3-link paths (drop the 4-link detours).
  std::vector<scion::Path> disjoint;
  for (const auto& p : paths) {
    if (p.link_count() == 3) disjoint.push_back(p);
  }
  http::MultipathConfig config;
  config.schedule = schedule;
  http::MultipathScionConnection conn(topo.scion_stack(world.client),
                                      scion::ScionEndpoint{topo.scion_addr(rp), 80},
                                      disjoint, config);
  int done = 0;
  const TimePoint t0 = world.sim().now();
  for (int i = 0; i < kObjects; ++i) {
    http::HttpRequest req;
    req.target = "/obj" + std::to_string(i) + ".bin";
    req.headers.set("Host", "www.far.example");
    conn.fetch(req, [&](Result<http::HttpResponse> r) {
      if (r.ok() && r.value().ok()) ++done;
    });
  }
  world.sim().run_until_condition([&] { return done == kObjects; },
                                  world.sim().now() + seconds(300));
  const double elapsed = (world.sim().now() - t0).millis();
  if (split != nullptr) {
    split->clear();
    for (const auto& stats : conn.channel_stats()) {
      if (!split->empty()) *split += " / ";
      *split += std::to_string(stats.requests) + " reqs";
    }
  }
  conn.close();
  world.sim().run_for(seconds(1));
  return done == kObjects ? elapsed : -1;
}

std::unique_ptr<browser::World> make_world() {
  browser::WorldConfig config;
  config.seed = 77;
  config.link_jitter = 0.03;
  config.core_bandwidth_bps = 20e6;   // the bottleneck
  config.child_bandwidth_bps = 1e9;   // shared segments stay wide
  auto world = browser::make_remote_world(config);
  auto& site = *world->site("www.far.example");
  for (int i = 0; i < kObjects; ++i) {
    site.add_blob("/obj" + std::to_string(i) + ".bin", kObjectBytes);
  }
  return world;
}

// ----------------------------------------------------------- Section B/C --

/// A multi-access client bundle: SKIP proxy on the wired browser host plus
/// the LTE attachment registered as a second access. `single_access` skips
/// the registration for the baseline arm.
struct AccessClient {
  std::unique_ptr<browser::World> world;
  std::unique_ptr<dns::Resolver> resolver;
  std::unique_ptr<proxy::SkipProxy> proxy;

  AccessClient(bool multi, bool intent_aware, std::size_t blobs, std::size_t blob_bytes) {
    browser::WorldConfig config;
    config.seed = 99;
    config.link_jitter = 0.02;
    config.multi_access = true;  // the LTE host exists even for the baseline
    world = browser::make_remote_world(config);
    auto& site = *world->site("www.far.example");
    site.add_blob("/doc.html", 16'000);
    for (std::size_t i = 0; i < blobs; ++i) {
      site.add_blob("/obj" + std::to_string(i) + ".bin", blob_bytes);
    }
    auto& topo = world->topology();
    resolver = std::make_unique<dns::Resolver>(world->sim(), world->zone(),
                                               dns::ResolverConfig{});
    proxy::ProxyConfig proxy_config;
    proxy_config.intent_aware = intent_aware;
    proxy_config.access.probe_interval = milliseconds(20);
    proxy_config.access.probe_timeout = milliseconds(50);
    proxy_config.access.down_after_misses = 2;
    proxy = std::make_unique<proxy::SkipProxy>(
        world->sim(), topo.host(world->client), topo.scion_stack(world->client),
        topo.daemon_for(world->client), *resolver, proxy_config);
    if (multi) {
      proxy->add_access("lte", topo.host(*world->client_lte),
                        topo.scion_stack(*world->client_lte),
                        topo.daemon_for(*world->client_lte));
    }
    world->sim().run_for(seconds(1));  // probe warm-up
  }

  void fetch(const std::string& path, const std::string& intent, bool strict,
             TimePoint deadline, std::function<void(proxy::ProxyResult)> on_result) {
    http::HttpRequest request;
    request.target = "http://www.far.example" + path;
    request.headers.set(std::string(net::kIntentHeader), intent);
    proxy::ProxyRequestOptions options;
    options.strict = strict;
    options.deadline = deadline;
    proxy->fetch(std::move(request), options, std::move(on_result));
  }
};

struct IntentRunStats {
  double doc_mean_ms = 0;
  double doc_max_ms = 0;
  std::size_t docs_on_primary = 0;
  std::size_t docs_total = 0;
};

/// Measures document latency against a continuous bulk backdrop: a window
/// of bulk transfers is kept in flight (each completion re-issues one) so
/// the striping wheel keeps turning, and documents are fetched one after
/// another through the churn. Intent-aware pins every document to the fast
/// wired access; the intent-blind ablation sends all traffic round the
/// striping wheel, so a share of the documents pays the LTE access's extra
/// 15 ms each way. The bulk window is sized to keep both accesses busy
/// without saturating either — the ablation isolates the placement effect,
/// not self-induced bufferbloat.
IntentRunStats run_intent_arm(bool intent_aware) {
  constexpr int kDocs = 12;
  constexpr int kBulkWindow = 4;
  AccessClient client(/*multi=*/true, intent_aware, kBulkWindow, 60'000);
  sim::Simulator& sim = client.world->sim();
  IntentRunStats stats;
  std::vector<double> doc_ms;

  bool bulk_running = true;
  int bulk_inflight = 0;
  std::function<void(int)> issue_bulk = [&](int slot) {
    if (!bulk_running) return;
    ++bulk_inflight;
    client.fetch("/obj" + std::to_string(slot) + ".bin", "bulk", false,
                 sim.now() + seconds(30), [&, slot](proxy::ProxyResult) {
                   --bulk_inflight;
                   issue_bulk(slot);  // keep the window full while docs run
                 });
  };
  for (int i = 0; i < kBulkWindow; ++i) issue_bulk(i);
  sim.run_for(milliseconds(100));  // let the striping wheel reach steady state

  for (int i = 0; i < kDocs; ++i) {
    bool done = false;
    const TimePoint begun = sim.now();
    client.fetch("/doc.html", "latency-critical", false, sim.now() + seconds(30),
                 [&](proxy::ProxyResult result) {
                   done = true;
                   if (result.response.ok()) {
                     doc_ms.push_back((sim.now() - begun).millis());
                     ++stats.docs_total;
                     if (result.access == "primary") ++stats.docs_on_primary;
                   }
                 });
    sim.run_until_condition([&] { return done; }, sim.now() + seconds(60));
  }
  bulk_running = false;
  sim.run_until_condition([&] { return bulk_inflight == 0; }, sim.now() + seconds(60));

  for (const double ms : doc_ms) {
    stats.doc_mean_ms += ms;
    stats.doc_max_ms = std::max(stats.doc_max_ms, ms);
  }
  if (!doc_ms.empty()) stats.doc_mean_ms /= static_cast<double>(doc_ms.size());
  return stats;
}

struct FailoverRunStats {
  std::size_t docs = 0;
  std::size_t within_deadline = 0;
  std::size_t gateway_timeouts = 0;  // 504s — the hang-to-deadline outcome
  std::uint64_t strict_unavailable = 0;
  std::uint64_t failovers = 0;
};

/// Launches a batch of strict documents, kills the primary access 5 ms in,
/// and counts how many complete within their original deadline.
FailoverRunStats run_failover_arm(bool multi) {
  constexpr int kDocs = 8;
  AccessClient client(multi, /*intent_aware=*/true, 0, 0);
  sim::Simulator& sim = client.world->sim();
  FailoverRunStats stats;
  stats.docs = kDocs;
  client.world->site("www.far.example")->add_blob("/page.html", 100'000);
  int outstanding = 0;
  const TimePoint deadline = sim.now() + seconds(2);
  for (int i = 0; i < kDocs; ++i) {
    ++outstanding;
    client.fetch("/page.html", "latency-critical", /*strict=*/true, deadline,
                 [&](proxy::ProxyResult result) {
                   --outstanding;
                   if (result.response.ok() && sim.now() <= deadline) {
                     ++stats.within_deadline;
                   }
                   if (result.response.status == 504) ++stats.gateway_timeouts;
                 });
  }
  // Cut the primary access mid-flight (the verb the chaos plans use).
  sim.schedule_after(milliseconds(5), [&] {
    net::Network& net = client.world->topology().network();
    net.set_link_up(net.find_node("browser"), 0, false);
  });
  sim.run_until_condition([&] { return outstanding == 0; }, sim.now() + seconds(30));
  const proxy::ProxyStats proxy_stats = client.proxy->stats();
  stats.strict_unavailable = proxy_stats.strict_unavailable;
  stats.failovers = proxy_stats.access_failovers;
  return stats;
}

}  // namespace

int main() {
  std::printf("Ablation — multipath aggregation: %d x %zu kB over 20 Mbps core links\n\n",
              kObjects, kObjectBytes / 1000);
  std::printf("%-34s %12s  %s\n", "configuration", "total ms", "request split");

  {
    auto world = make_world();
    std::printf("%-34s %12.1f  %s\n", "single path (best latency)", run_single(*world), "-");
  }
  for (const auto schedule : {http::MultipathConfig::Schedule::kRoundRobin,
                              http::MultipathConfig::Schedule::kLeastOutstanding,
                              http::MultipathConfig::Schedule::kWeightedLatency}) {
    auto world = make_world();
    std::string split;
    const double elapsed = run_multipath(*world, schedule, &split);
    std::printf("%-34s %12.1f  %s\n",
                ("multipath, " + std::string(to_string(schedule))).c_str(), elapsed,
                split.c_str());
  }

  std::printf("\nAggregating the disjoint path pair cuts the bandwidth-bound completion time;\n"
              "the gain is sub-2x because the second path has ~3x the RTT (84 ms vs 30 ms)\n"
              "and ramps its window slower. The weighted-latency scheduler shifts load onto\n"
              "the fast path (18/6 split) and wins — path metadata steering the transport.\n");

  int failures = 0;

  std::printf("\nSection B — intent-aware vs intent-blind access scheduling\n");
  std::printf("(wired 200us + LTE 15ms accesses; 12 documents against a 4-deep bulk window)\n\n");
  std::printf("%-34s %14s %14s %18s\n", "configuration", "doc mean ms", "doc max ms",
              "docs on primary");
  const IntentRunStats aware = run_intent_arm(/*intent_aware=*/true);
  const IntentRunStats blind = run_intent_arm(/*intent_aware=*/false);
  std::printf("%-34s %14.1f %14.1f %11zu / %zu\n", "intent-aware", aware.doc_mean_ms,
              aware.doc_max_ms, aware.docs_on_primary, aware.docs_total);
  std::printf("%-34s %14.1f %14.1f %11zu / %zu\n", "intent-blind (ablation)",
              blind.doc_mean_ms, blind.doc_max_ms, blind.docs_on_primary, blind.docs_total);
  if (aware.docs_total != 12 || blind.docs_total != 12) {
    std::printf("FAIL: not every document completed (%zu aware, %zu blind)\n",
                aware.docs_total, blind.docs_total);
    ++failures;
  }
  if (aware.docs_on_primary != aware.docs_total) {
    std::printf("FAIL: intent-aware let %zu documents off the fast access\n",
                aware.docs_total - aware.docs_on_primary);
    ++failures;
  }
  if (aware.doc_mean_ms >= blind.doc_mean_ms) {
    std::printf("FAIL: intent-aware doc latency (%.1f ms) must beat intent-blind (%.1f ms)\n",
                aware.doc_mean_ms, blind.doc_mean_ms);
    ++failures;
  }

  std::printf("\nSection C — mid-load primary access failure (8 strict documents, 2 s deadline)\n\n");
  std::printf("%-34s %16s %8s %18s %10s\n", "configuration", "within deadline", "504s",
              "strict downgrades", "failovers");
  const FailoverRunStats multi = run_failover_arm(/*multi=*/true);
  const FailoverRunStats single = run_failover_arm(/*multi=*/false);
  std::printf("%-34s %11zu / %zu %8zu %18llu %10llu\n", "multi-access (wired + lte)",
              multi.within_deadline, multi.docs, multi.gateway_timeouts,
              static_cast<unsigned long long>(multi.strict_unavailable),
              static_cast<unsigned long long>(multi.failovers));
  std::printf("%-34s %11zu / %zu %8zu %18llu %10llu\n", "single access (baseline)",
              single.within_deadline, single.docs, single.gateway_timeouts,
              static_cast<unsigned long long>(single.strict_unavailable),
              static_cast<unsigned long long>(single.failovers));
  if (multi.within_deadline != multi.docs) {
    std::printf("FAIL: multi-access must land every document within its deadline (%zu/%zu)\n",
                multi.within_deadline, multi.docs);
    ++failures;
  }
  if (multi.gateway_timeouts != 0 || multi.strict_unavailable != 0) {
    std::printf("FAIL: multi-access saw %zu x 504 and %llu strict downgrades (want zero)\n",
                multi.gateway_timeouts,
                static_cast<unsigned long long>(multi.strict_unavailable));
    ++failures;
  }
  if (multi.failovers == 0) {
    std::printf("FAIL: the cut must have forced mid-flight failovers (saw none)\n");
    ++failures;
  }
  if (single.within_deadline * 2 >= single.docs &&
      single.gateway_timeouts == 0 && single.strict_unavailable == 0) {
    std::printf("FAIL: the single-access baseline should visibly suffer the cut\n");
    ++failures;
  }

  if (failures > 0) {
    std::printf("\n%d hard assertion(s) failed\n", failures);
    return 1;
  }
  std::printf("\nIntent-aware scheduling keeps every document on the fast access while bulk\n"
              "stripes across both; when the primary dies mid-load, in-flight documents\n"
              "migrate to the surviving access inside their original deadline with strict\n"
              "mode intact — the single-access baseline just times out.\n");
  return 0;
}
