// Ablation 6: native inter-domain multipath (paper, Section 1).
//
// In a bandwidth-bound regime (20 Mbps core links) a single SCION path caps
// throughput; striping HTTP exchanges across disjoint paths aggregates it.
// We download a batch of objects through one connection on the best path vs
// a MultipathScionConnection over the disjoint path pair, for each
// scheduling policy, and report completion time plus the per-channel split.
#include <cstdio>

#include "bench_util.hpp"
#include "core/scenarios.hpp"
#include "http/multipath.hpp"

using namespace pan;

namespace {

constexpr int kObjects = 24;
constexpr std::size_t kObjectBytes = 250'000;

double run_single(browser::World& world) {
  auto& topo = world.topology();
  const auto rp = topo.host_by_name("far-rp1");
  const auto paths = topo.daemon_for(world.client).query_now(topo.as_of(rp));
  http::ScionHttpConnection conn(topo.scion_stack(world.client),
                                 scion::ScionEndpoint{topo.scion_addr(rp), 80},
                                 paths.front().dataplane());
  int done = 0;
  const TimePoint t0 = world.sim().now();
  for (int i = 0; i < kObjects; ++i) {
    http::HttpRequest req;
    req.target = "/obj" + std::to_string(i) + ".bin";
    req.headers.set("Host", "www.far.example");
    conn.fetch(req, [&](Result<http::HttpResponse> r) {
      if (r.ok() && r.value().ok()) ++done;
    });
  }
  world.sim().run_until_condition([&] { return done == kObjects; },
                                  world.sim().now() + seconds(300));
  const double elapsed = (world.sim().now() - t0).millis();
  conn.close();
  world.sim().run_for(seconds(1));
  return done == kObjects ? elapsed : -1;
}

double run_multipath(browser::World& world, http::MultipathConfig::Schedule schedule,
                     std::string* split) {
  auto& topo = world.topology();
  const auto rp = topo.host_by_name("far-rp1");
  auto paths = topo.daemon_for(world.client).query_now(topo.as_of(rp));
  // Keep the two disjoint 3-link paths (drop the 4-link detours).
  std::vector<scion::Path> disjoint;
  for (const auto& p : paths) {
    if (p.link_count() == 3) disjoint.push_back(p);
  }
  http::MultipathConfig config;
  config.schedule = schedule;
  http::MultipathScionConnection conn(topo.scion_stack(world.client),
                                      scion::ScionEndpoint{topo.scion_addr(rp), 80},
                                      disjoint, config);
  int done = 0;
  const TimePoint t0 = world.sim().now();
  for (int i = 0; i < kObjects; ++i) {
    http::HttpRequest req;
    req.target = "/obj" + std::to_string(i) + ".bin";
    req.headers.set("Host", "www.far.example");
    conn.fetch(req, [&](Result<http::HttpResponse> r) {
      if (r.ok() && r.value().ok()) ++done;
    });
  }
  world.sim().run_until_condition([&] { return done == kObjects; },
                                  world.sim().now() + seconds(300));
  const double elapsed = (world.sim().now() - t0).millis();
  if (split != nullptr) {
    split->clear();
    for (const auto& stats : conn.channel_stats()) {
      if (!split->empty()) *split += " / ";
      *split += std::to_string(stats.requests) + " reqs";
    }
  }
  conn.close();
  world.sim().run_for(seconds(1));
  return done == kObjects ? elapsed : -1;
}

std::unique_ptr<browser::World> make_world() {
  browser::WorldConfig config;
  config.seed = 77;
  config.link_jitter = 0.03;
  config.core_bandwidth_bps = 20e6;   // the bottleneck
  config.child_bandwidth_bps = 1e9;   // shared segments stay wide
  auto world = browser::make_remote_world(config);
  auto& site = *world->site("www.far.example");
  for (int i = 0; i < kObjects; ++i) {
    site.add_blob("/obj" + std::to_string(i) + ".bin", kObjectBytes);
  }
  return world;
}

}  // namespace

int main() {
  std::printf("Ablation — multipath aggregation: %d x %zu kB over 20 Mbps core links\n\n",
              kObjects, kObjectBytes / 1000);
  std::printf("%-34s %12s  %s\n", "configuration", "total ms", "request split");

  {
    auto world = make_world();
    std::printf("%-34s %12.1f  %s\n", "single path (best latency)", run_single(*world), "-");
  }
  for (const auto schedule : {http::MultipathConfig::Schedule::kRoundRobin,
                              http::MultipathConfig::Schedule::kLeastOutstanding,
                              http::MultipathConfig::Schedule::kWeightedLatency}) {
    auto world = make_world();
    std::string split;
    const double elapsed = run_multipath(*world, schedule, &split);
    std::printf("%-34s %12.1f  %s\n",
                ("multipath, " + std::string(to_string(schedule))).c_str(), elapsed,
                split.c_str());
  }

  std::printf("\nAggregating the disjoint path pair cuts the bandwidth-bound completion time;\n"
              "the gain is sub-2x because the second path has ~3x the RTT (84 ms vs 30 ms)\n"
              "and ramps its window slower. The weighted-latency scheduler shifts load onto\n"
              "the fast path (18/6 split) and wins — path metadata steering the transport.\n");
  return 0;
}
