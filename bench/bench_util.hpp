// Shared helpers for the figure-reproduction benches: trial runners and
// paper-style box-plot tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace pan::bench {

/// Env-gated Chrome trace dump: when PAN_TRACE_DUMP names a directory, the
/// collector's retained traces are written there as <name>.json (Chrome
/// trace_event format — loadable in about:tracing / Perfetto, lintable by
/// scripts/trace_lint.py). No-op when the variable is unset; benches stay
/// silent-by-default so CI output is stable.
inline void dump_chrome_trace(const obs::TraceCollector& collector, const std::string& name) {
  const char* dir = std::getenv("PAN_TRACE_DUMP");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "trace dump: cannot open %s\n", path.c_str());
    return;
  }
  const std::string json = collector.chrome_trace_json();
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::fprintf(stderr, "trace dump: wrote %s (%zu traces)\n", path.c_str(),
               collector.traces().size());
}

/// Companion to dump_chrome_trace for the metrics plane: when PAN_TRACE_DUMP
/// names a directory, writes the registry as <name>.metrics.json (the
/// /skip/metrics JSON shape, exemplar trace ids included) and <name>.prom
/// (Prometheus text exposition). scripts/trace_lint.py --metrics checks that
/// every exemplar trace id in the JSON resolves in the Chrome trace dumps
/// next to it; --prom lints the exposition grammar. No-op when unset.
inline void dump_metrics(const obs::MetricsRegistry& registry, const std::string& name) {
  const char* dir = std::getenv("PAN_TRACE_DUMP");
  if (dir == nullptr || *dir == '\0') return;
  const auto write_file = [&](const std::string& path, const std::string& body) {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "metrics dump: cannot open %s\n", path.c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "metrics dump: wrote %s\n", path.c_str());
  };
  write_file(std::string(dir) + "/" + name + ".metrics.json", registry.to_json());
  write_file(std::string(dir) + "/" + name + ".prom",
             registry.to_prom({}, {{"instance", name}}));
}

struct Series {
  std::string label;
  std::vector<double> samples_ms;
};

inline void print_box_table(const std::string& title, const std::vector<Series>& series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-28s %5s %8s %8s %8s %8s %8s %8s\n", "experiment", "n", "min", "q1", "median",
              "q3", "max", "mean");
  double axis_min = 1e300;
  double axis_max = -1e300;
  std::vector<BoxStats> stats;
  for (const Series& s : series) {
    const BoxStats box = box_stats(s.samples_ms);
    stats.push_back(box);
    std::printf("%-28s %5zu %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", s.label.c_str(), box.count,
                box.min, box.q1, box.median, box.q3, box.max, box.mean);
    axis_min = std::min(axis_min, box.min);
    axis_max = std::max(axis_max, box.max);
  }
  if (axis_max <= axis_min) axis_max = axis_min + 1;
  // Pad the axis slightly so whiskers do not touch the frame.
  const double pad = (axis_max - axis_min) * 0.05;
  axis_min -= pad;
  axis_max += pad;
  std::printf("\n  box plot, axis %.2f .. %.2f ms\n", axis_min, axis_max);
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::printf("  %-26s |%s|\n", series[i].label.c_str(),
                ascii_box_row(stats[i], axis_min, axis_max, 60).c_str());
  }
}

/// Prints a per-phase latency percentile table from the request-trace
/// histograms a shared metrics registry accumulated across trials (the
/// proxy flushes each request's spans as `proxy.phase.<name>`).
inline void print_phase_table(const std::string& title, const obs::MetricsRegistry& registry,
                              const std::vector<std::string>& phases = {
                                  "ipc", "detect", "select", "handshake", "fetch",
                                  "fallback"}) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-12s %8s %9s %9s %9s %9s\n", "phase", "n", "p50", "p95", "p99", "mean");
  for (const std::string& phase : phases) {
    const obs::Histogram* hist = registry.find_histogram("proxy.phase." + phase);
    if (hist == nullptr || hist->count() == 0) continue;
    const obs::HistogramSnapshot snap = hist->snapshot();
    std::printf("%-12s %8llu %8.3f %8.3f %8.3f %8.3f  (ms)\n", phase.c_str(),
                static_cast<unsigned long long>(snap.count), snap.p50.millis(),
                snap.p95.millis(), snap.p99.millis(), snap.mean().millis());
  }
  // Time requests spent parked in a connection pool before dispatch
  // (recorded registry-wide by every http::OriginPool).
  if (const obs::Histogram* queue = registry.find_histogram("pool.queue_wait");
      queue != nullptr && queue->count() > 0) {
    const obs::HistogramSnapshot snap = queue->snapshot();
    std::printf("%-12s %8llu %8.3f %8.3f %8.3f %8.3f  (ms)\n", "queue_wait",
                static_cast<unsigned long long>(snap.count), snap.p50.millis(),
                snap.p95.millis(), snap.p99.millis(), snap.mean().millis());
  }
  if (const obs::Histogram* total = registry.find_histogram("proxy.request_total");
      total != nullptr && total->count() > 0) {
    const obs::HistogramSnapshot snap = total->snapshot();
    std::printf("%-12s %8llu %8.3f %8.3f %8.3f %8.3f  (ms)\n", "total",
                static_cast<unsigned long long>(snap.count), snap.p50.millis(),
                snap.p95.millis(), snap.p99.millis(), snap.mean().millis());
  }
}

/// Runs `trial` n times collecting milliseconds.
inline std::vector<double> run_trials(std::size_t n, const std::function<double()>& trial) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(trial());
  return out;
}

}  // namespace pan::bench
