// Ablation: what the resilience layer buys under injected faults.
//
// A page (document + 6 x 60 kB subresources) loads while a scripted fault
// hits the world at t=150 ms. For each fault class we compare the full
// resilience stack (alternate-path retry + attempt timeouts + quarantine +
// circuit breaker) against a proxy with all of it disabled
// (max_scion_retries=0, attempt_timeout=0, breaker_threshold=0).
//
// Two measures per run:
//   - PLT: time until the page settles (resources done/failed), and how the
//     resources split across SCION / legacy IP / failed.
//   - recovery: after the page, a 1-per-100 ms probe fetch hammers the
//     origin; time-to-recovery is from fault onset until the first probe
//     that completes over SCION again.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/page.hpp"
#include "core/scenarios.hpp"
#include "obs/slo.hpp"

using namespace pan;

namespace {

constexpr int kSubresources = 6;
constexpr std::size_t kBlobBytes = 60'000;
constexpr Duration kFaultOnset = milliseconds(150);

struct Scenario {
  const char* name;
  const char* slug;  // file-name-safe, for PAN_TRACE_DUMP output
  const char* plan;
};

const Scenario kScenarios[] = {
    {"no fault (baseline)", "baseline", ""},
    {"link-down core-1<->core-2b, 2 s", "link-down",
     "at=150ms dur=2s link-down core-1 core-2b"},
    {"link-degrade 30% loss, 2 s", "link-degrade",
     "at=150ms dur=2s link-degrade core-1 core-2b loss=0.3 latency-factor=2"},
    {"dns-brownout (servfail), 2 s", "dns-brownout",
     "at=150ms dur=2s dns-brownout www.far.example mode=servfail"},
    {"origin-reset, 2 s", "origin-reset", "at=150ms dur=2s origin-reset www.far.example"},
    {"origin-slow-loris, 2 s", "origin-slow-loris",
     "at=150ms dur=2s origin-slow-loris www.far.example"},
};

struct Run {
  double plt_ms = -1;
  std::size_t over_scion = 0;
  std::size_t over_ip = 0;
  std::size_t failed = 0;
  double recovery_ms = -1;
  bool slo_fired = false;  // any objective fired at any evaluation point
};

Run run_once(const Scenario& scenario, bool resilient) {
  browser::WorldConfig world_config;
  world_config.seed = 33;
  // One collector shared by the SKIP proxy and the reverse proxies, so a
  // remote page load assembles a cross-hop trace (client + revproxy spans
  // under one trace id) — dumped per scenario when PAN_TRACE_DUMP is set.
  obs::CollectorConfig collector_config;
  // The recovery loop below can keep hundreds of probe traces; retain enough
  // that the page-load traces referenced by metric exemplars survive the
  // ring, so scripts/trace_lint.py --metrics can resolve every exemplar id.
  collector_config.max_traces = 2048;
  obs::TraceCollector collector(collector_config);
  world_config.reverse_proxy.collector = &collector;
  auto world = browser::make_remote_world(world_config);

  std::vector<std::string> resources;
  for (int i = 0; i < kSubresources; ++i) {
    const std::string path = "/asset" + std::to_string(i) + ".bin";
    world->site("www.far.example")->add_blob(path, kBlobBytes);
    resources.push_back(path);
  }
  world->site("www.far.example")->add_text("/", browser::render_document(resources));
  world->site("www.far.example")->add_text("/probe", "up");

  proxy::ProxyConfig config;
  config.collector = &collector;
  if (!resilient) {
    config.max_scion_retries = 0;
    config.attempt_timeout = Duration::zero();
    config.breaker_threshold = 0;
    config.quarantine_ttl = Duration::zero();
  }
  browser::ClientSession session(*world, config);
  if (*scenario.plan != '\0' && !world->schedule_chaos(scenario.plan).ok()) {
    std::fprintf(stderr, "bad plan: %s\n", scenario.plan);
    return {};
  }

  Run run;
  obs::SloMonitor& slo = session.proxy().slo();
  slo.evaluate(world->sim().now());  // baseline counter sample at t=0
  const TimePoint t0 = world->sim().now();
  const browser::PageLoadResult page = session.load("http://www.far.example/");
  run.plt_ms = (world->sim().now() - t0).millis();
  run.over_scion = page.over_scion;
  run.over_ip = page.over_ip;
  run.failed = page.failed;
  slo.evaluate(world->sim().now());
  run.slo_fired = slo.any_firing();

  // Time-to-recovery: probe until a fetch completes over SCION again.
  const TimePoint fault_at = t0 + kFaultOnset;
  const TimePoint probe_deadline = fault_at + seconds(30);
  while (world->sim().now() < probe_deadline) {
    http::HttpRequest request;
    request.target = "http://www.far.example/probe";
    bool done = false;
    proxy::ProxyResult result;
    session.proxy().fetch(request, {}, [&](proxy::ProxyResult r) {
      result = std::move(r);
      done = true;
    });
    world->sim().run_until_condition([&] { return done; },
                                     world->sim().now() + seconds(10));
    if (done && result.response.status == 200 &&
        result.transport == proxy::TransportUsed::kScion) {
      run.recovery_ms = (world->sim().now() - fault_at).millis();
      break;
    }
    world->sim().run_until(world->sim().now() + milliseconds(100));
  }
  slo.evaluate(world->sim().now());
  run.slo_fired = run.slo_fired || slo.any_firing();
  const std::string dump_name =
      std::string("chaos-") + scenario.slug + (resilient ? "-on" : "-off");
  bench::dump_chrome_trace(collector, dump_name);
  bench::dump_metrics(session.proxy().metrics(), dump_name);
  return run;
}

// ----------------------------------------------------------- surge section --
//
// Overload ablation: a `surge` fault floods the SKIP proxy with probe-class
// traffic at ~4x the origin's service capacity while a stream of
// document-class fetches (one every 100 ms, 2 s deadline each) measures what
// a real page's critical path would see. Shedding on = admission control +
// priority queues + deadline shedding + AIMD; shedding off = the same proxy
// with the overload layer ablated (FIFO, admit everything).

constexpr int kSurgeDocs = 40;
constexpr Duration kDocDeadline = seconds(2);

struct SurgeRun {
  int docs_ok = 0;         // 200 within deadline
  int docs_timed_out = 0;  // hung to 504
  int docs_rejected = 0;   // 429/503 (only possible with shedding on)
  std::vector<double> doc_latency_ms;
  browser::SurgeLoad::Stats surge;
  bool slo_fired = false;        // any objective fired while the surge ran
  bool slo_quiet_after = false;  // all objectives clear once traffic drains
};

SurgeRun run_surge_once(bool shedding) {
  browser::WorldConfig world_config;
  world_config.seed = 77;
  auto world = browser::make_local_world(world_config);
  // IP-only origin thinking 150 ms/request behind 6 proxy connections:
  // service capacity 40 req/s against a 160 req/s surge.
  world->site("tcpip-fs.local")->set_think_time(milliseconds(150));
  world->site("tcpip-fs.local")->add_text("/doc", "document");

  proxy::ProxyConfig config;
  config.overload.enabled = shedding;
  config.overload.max_in_flight = 48;
  browser::ClientSession session(*world, config);
  browser::SurgeLoad surge(*world, session.proxy());
  surge.set_target_path("/doc");
  if (!world->schedule_chaos("at=0ms dur=4s surge tcpip-fs.local rate=160 conc=96").ok()) {
    std::fprintf(stderr, "bad surge plan\n");
    return {};
  }

  SurgeRun run;
  sim::Simulator& sim = world->sim();
  for (int i = 0; i < kSurgeDocs; ++i) {
    sim.schedule_after(milliseconds(500 + 100 * i), [&run, &session, &sim] {
      http::HttpRequest request;
      request.target = "http://tcpip-fs.local/doc";
      request.headers.set(std::string(proxy::kPriorityHeader), "document");
      proxy::ProxyRequestOptions options;
      options.deadline = sim.now() + kDocDeadline;
      const TimePoint start = sim.now();
      session.proxy().fetch(std::move(request), options,
                            [&run, &sim, start](proxy::ProxyResult result) {
                              const int status = result.response.status;
                              if (status == 200) {
                                ++run.docs_ok;
                                run.doc_latency_ms.push_back((sim.now() - start).millis());
                              } else if (status == 504) {
                                ++run.docs_timed_out;
                              } else {
                                ++run.docs_rejected;
                              }
                            });
    });
  }
  // The simulator has no background ticks, so SLO evaluation is explicit:
  // sample every 500 ms (the /skip/health cadence a prober would drive) and
  // remember whether any burn-rate alert fired while the surge was hot.
  obs::SloMonitor& slo = session.proxy().slo();
  slo.evaluate(sim.now());  // baseline counter sample
  const TimePoint end = sim.now() + seconds(30);
  while (sim.now() < end) {
    sim.run_until(sim.now() + milliseconds(500));
    slo.evaluate(sim.now());
    run.slo_fired = run.slo_fired || slo.any_firing();
  }
  run.slo_quiet_after = !slo.any_firing();
  run.surge = surge.stats();
  return run;
}

void print_surge_run(const char* label, const SurgeRun& run) {
  const BoxStats box = box_stats(run.doc_latency_ms);
  std::printf("  %-9s %6.1f%% %8d %8d %9.1f %9.1f %9llu %9llu %9llu\n", label,
              100.0 * run.docs_ok / kSurgeDocs, run.docs_timed_out, run.docs_rejected,
              box.median, box.max,
              static_cast<unsigned long long>(run.surge.completed),
              static_cast<unsigned long long>(run.surge.rejected),
              static_cast<unsigned long long>(run.surge.timed_out));
}

void print_run(const char* label, const Run& run) {
  char recovery[32];
  if (run.recovery_ms < 0) {
    std::snprintf(recovery, sizeof recovery, "%12s", "never");
  } else {
    std::snprintf(recovery, sizeof recovery, "%12.1f", run.recovery_ms);
  }
  std::printf("  %-14s %10.1f %6zu %4zu %6zu %s\n", label, run.plt_ms,
              run.over_scion, run.over_ip, run.failed, recovery);
}

}  // namespace

int main() {
  std::printf(
      "Ablation — chaos: page load (1 doc + %d x %zu kB) with a fault at t=150 ms.\n"
      "resilience on  = retries + attempt timeout + quarantine + breaker (defaults)\n"
      "resilience off = max_scion_retries=0, attempt_timeout=0, breaker_threshold=0\n"
      "recovery       = fault onset -> first probe fetch completing over SCION\n\n",
      kSubresources, kBlobBytes / 1000);
  std::printf("  %-14s %10s %6s %4s %6s %12s\n", "resilience", "plt ms", "scion",
              "ip", "failed", "recovery ms");

  bool baseline_slo_quiet = true;
  for (const Scenario& scenario : kScenarios) {
    std::printf("%s\n", scenario.name);
    const Run on = run_once(scenario, /*resilient=*/true);
    if (&scenario == &kScenarios[0]) baseline_slo_quiet = !on.slo_fired;
    print_run("on", on);
    print_run("off", run_once(scenario, /*resilient=*/false));
  }

  std::printf(
      "\nAblation — overload: 4 s probe-class surge at 160 req/s (cap 96\n"
      "in-flight) against a 40 req/s origin, with %d document-class fetches\n"
      "(one per 100 ms, %lld ms deadline) riding through the same proxy.\n"
      "shedding on  = admission control + priority queues + deadline shed + AIMD\n"
      "shedding off = overload layer ablated (FIFO, admit everything)\n\n",
      kSurgeDocs, static_cast<long long>(kDocDeadline.millis()));
  std::printf("  %-9s %7s %8s %8s %9s %9s %9s %9s %9s\n", "shedding", "docs ok",
              "doc 504", "doc rej", "doc p50", "doc max", "surge ok", "surge rej",
              "surge 504");
  const SurgeRun surge_on = run_surge_once(/*shedding=*/true);
  const SurgeRun surge_off = run_surge_once(/*shedding=*/false);
  print_surge_run("on", surge_on);
  print_surge_run("off", surge_off);

  std::printf(
      "\nWith shedding on, surge traffic beyond the probe-class admission\n"
      "share bounces instantly with 429/503 + Retry-After, queued surge\n"
      "waiters that cannot make their deadline are shed, and document-class\n"
      "requests jump the connection queues — so the page's critical path\n"
      "stays within its deadline. With the layer ablated the FIFO queue\n"
      "grows without bound and documents hang behind stale surge traffic\n"
      "until the 504 deadline timer fires.\n");

  std::printf(
      "\nLink faults are absorbed below the retry layer (keep-alive probes +\n"
      "SCMP revocation + live migration), so both configurations ride them\n"
      "out; a DNS brownout that starts after first resolution hides behind\n"
      "the resolver cache. The retry layer earns its keep on origin\n"
      "misbehaviour: slow-loris attempts are cut by the attempt timer and\n"
      "retried over SCION instead of dribbling for the full response (or\n"
      "leaking onto legacy IP), and hard origin resets trip the per-origin\n"
      "circuit breaker, trading a slower half-open re-probe for fast-failing\n"
      "requests while the origin is sick.\n");

  // SLO burn-rate verdicts, asserted so CI fails loudly if the monitor ever
  // goes quiet under overload or noisy at rest (bench exits nonzero).
  std::printf("\nSLO burn-rate checks (multi-window, evaluated every 500 ms):\n");
  int failed_checks = 0;
  const auto check = [&failed_checks](const char* what, bool ok) {
    std::printf("  [%s] %s\n", ok ? " ok " : "FAIL", what);
    if (!ok) ++failed_checks;
  };
  check("baseline page load: every objective stays quiet", baseline_slo_quiet);
  check("surge, shedding off: a burn-rate alert fires", surge_off.slo_fired);
  check("surge, shedding off: alerts clear once the surge drains",
        surge_off.slo_quiet_after);
  check("surge, shedding on: alerts clear once the surge drains",
        surge_on.slo_quiet_after);
  return failed_checks == 0 ? 0 : 1;
}
