// Ablation 5 (DESIGN.md): control-plane scale — how beaconing cost, segment
// counts, and end-to-end path diversity grow with topology size and with
// the beacons-per-origin budget (k).
#include <chrono>
#include <cstdio>
#include <memory>

#include "scion/topology.hpp"

using namespace pan;
using namespace pan::scion;

namespace {

/// Builds an ISD pair: `cores` core ASes per ISD in a ring with chords,
/// each with two leaf children; cross-ISD links between matching cores.
struct BuiltWorld {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<Topology> topo;
  IsdAsn src;
  IsdAsn dst;
};

BuiltWorld build(std::size_t cores, std::size_t beacons_per_origin, bool sign) {
  BuiltWorld world;
  world.sim = std::make_unique<sim::Simulator>();
  TopologyConfig config;
  config.seed = 1;
  config.beacons_per_origin = beacons_per_origin;
  config.sign_beacons = sign;
  config.verify_beacons = sign;
  world.topo = std::make_unique<Topology>(*world.sim, config);
  Topology& topo = *world.topo;

  for (Isd isd : {Isd{1}, Isd{2}}) {
    for (std::size_t c = 0; c < cores; ++c) {
      AsSpec core;
      core.name = "c" + std::to_string(isd) + "_" + std::to_string(c);
      core.ia = IsdAsn{isd, 0x100 + c};
      core.core = true;
      topo.add_as(core);
      for (int leaf = 0; leaf < 2; ++leaf) {
        AsSpec spec;
        spec.name = core.name + "_l" + std::to_string(leaf);
        spec.ia = IsdAsn{isd, 0x1000 + c * 4 + static_cast<std::size_t>(leaf)};
        topo.add_as(spec);
      }
    }
  }
  const auto link = [&](const std::string& a, const std::string& b, LinkType type,
                        std::int64_t ms) {
    AsLinkSpec spec;
    spec.a = a;
    spec.b = b;
    spec.type = type;
    spec.params.latency = milliseconds(ms);
    topo.add_link(spec);
  };
  for (Isd isd : {Isd{1}, Isd{2}}) {
    const std::string prefix = "c" + std::to_string(isd) + "_";
    for (std::size_t c = 0; c < cores; ++c) {
      link(prefix + std::to_string(c), prefix + std::to_string((c + 1) % cores),
           LinkType::kCore, 5 + static_cast<std::int64_t>(c % 7));
      if (cores > 4 && c + 2 < cores) {  // chords for diversity
        link(prefix + std::to_string(c), prefix + std::to_string(c + 2), LinkType::kCore,
             9 + static_cast<std::int64_t>(c % 5));
      }
      for (int leaf = 0; leaf < 2; ++leaf) {
        link(prefix + std::to_string(c), prefix + std::to_string(c) + "_l" +
                                             std::to_string(leaf),
             LinkType::kParentChild, 2);
      }
    }
  }
  for (std::size_t c = 0; c < cores; c += 2) {  // inter-ISD links
    link("c1_" + std::to_string(c), "c2_" + std::to_string(c), LinkType::kCore, 40);
  }
  world.src = topo.as_by_name("c1_0_l0");
  world.dst = topo.as_by_name("c2_" + std::to_string((cores / 2) * 2 % cores) + "_l1");
  return world;
}

}  // namespace

int main() {
  std::printf("Ablation — beaconing scale (wall-clock is host time, not simulated time)\n\n");
  std::printf("%6s %4s %6s %9s %9s %8s %9s %10s\n", "cores", "k", "ASes", "core-seg",
              "down-seg", "paths", "best ms", "build ms");

  for (const std::size_t cores : {2u, 4u, 8u, 12u}) {
    for (const std::size_t k : {2u, 8u}) {
      const auto t0 = std::chrono::steady_clock::now();
      BuiltWorld world = build(cores, k, /*sign=*/cores <= 4);
      world.topo->finalize();
      const auto t1 = std::chrono::steady_clock::now();
      Daemon& daemon = world.topo->daemon(world.src);
      const auto paths = daemon.query_now(world.dst);
      const double build_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      std::printf("%6zu %4zu %6zu %9zu %9zu %8zu %9.1f %10.1f%s\n", cores, k,
                  world.topo->as_count(), world.topo->path_infra().core_segment_count(),
                  world.topo->path_infra().down_segment_count(), paths.size(),
                  paths.empty() ? 0.0 : paths.front().meta().latency.millis(), build_ms,
                  cores <= 4 ? "  (signed+verified)" : "  (unsigned)");
    }
  }

  std::printf("\nSegment counts grow with k and topology size; path diversity (the paper's\n"
              "\"dozens to over a hundred\" choices) comes from combining them. Lamport\n"
              "signing dominates build time, so large sweeps run unsigned.\n");
  return 0;
}
