// Ablation 8: repeat visits — browser cache (ETag revalidation) and 0-RTT
// resumption. Cold loads pay full transfers and handshakes; warm loads
// revalidate with 304s over the existing/resumed QUIC connection, so the
// remaining cost is dominated by round trips — which is exactly where
// SCION's lower-latency path keeps paying off.
#include "bench_util.hpp"
#include "core/scenarios.hpp"

using namespace pan;

namespace {
constexpr int kTrials = 15;
constexpr int kResources = 8;
constexpr std::size_t kResourceBytes = 60'000;
}  // namespace

int main() {
  browser::WorldConfig config;
  config.seed = 31;
  config.link_jitter = 0.05;
  auto world = browser::make_remote_world(config);
  auto& www = *world->site("www.far.example");
  std::vector<std::string> urls;
  for (int i = 0; i < kResources; ++i) {
    const std::string path = "/asset" + std::to_string(i) + ".bin";
    www.add_blob(path, kResourceBytes);
    urls.push_back(path);
  }
  www.add_text("/", browser::render_document(urls));

  browser::BrowserConfig cached;
  cached.enable_cache = true;

  std::vector<bench::Series> series;
  series.push_back({"cold load (no cache)", bench::run_trials(kTrials, [&] {
                      browser::ClientSession session(*world);
                      return session.load("http://www.far.example/").plt.millis();
                    })});
  series.push_back({"warm load (cache + live conn)", bench::run_trials(kTrials, [&] {
                      browser::ClientSession session(*world, {}, cached);
                      session.load("http://www.far.example/");  // prime
                      return session.load("http://www.far.example/").plt.millis();
                    })});
  series.push_back({"warm, IPv4/6 baseline", bench::run_trials(kTrials, [&] {
                      browser::DirectSession session(*world, cached);
                      session.load("http://www.far.example/");
                      return session.load("http://www.far.example/").plt.millis();
                    })});

  bench::print_box_table(
      "Ablation — repeat visits: ETag revalidation + connection reuse (ms, " +
          std::to_string(kResources) + " x " + std::to_string(kResourceBytes / 1000) +
          " kB)",
      series);
  std::printf("\nWarm loads shrink to revalidation round trips; the SCION path's RTT\n"
              "advantage over the BGP route therefore persists even for fully cached pages.\n");
  return 0;
}
